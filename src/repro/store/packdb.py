"""Zero-copy packed columnar database format.

``repro store pack-db`` snapshots a :class:`SequenceDatabase` into a
directory of raw per-column ``.npy`` files plus a JSON header::

    <db>/header.json          format version, name, alphabet, counts,
                              content digest, pinned source key
    <db>/residues.npy         uint8 — normalized residue letters, all
                              sequences concatenated
    <db>/offsets.npy          int64, n+1 — residue extents per sequence
    <db>/ids.npy              uint8 — identifiers, concatenated
    <db>/id_offsets.npy       int64, n+1
    <db>/descriptions.npy     uint8 — description lines, concatenated
    <db>/desc_offsets.npy     int64, n+1

Raw ``.npy`` (not ``.npz``) because zip members cannot be memory-
mapped: :class:`PackedDatabase` opens the byte columns with
``np.load(..., mmap_mode="r")``, so N replica processes scanning the
same snapshot share read-only page-cache pages instead of each
materializing a private heap of Sequence objects.  Subjects are
decoded lazily per scan (text via one ``bytes`` copy, codes via a
vectorized 256-entry table lookup) and not retained.

Digest compatibility is the load-bearing property: the header pins the
*source key* — the generator config's ``dataclasses.astuple`` JSON
round-tripped at pack time — and
:func:`repro.runtime.keys.database_cache_key` resolves a
:class:`PackedDatabaseRef` to that key.  A packed snapshot of config C
therefore hashes identically to C itself, and every search-shard /
trace cache entry is shared byte-for-byte between the two paths.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import astuple, dataclass, is_dataclass
from pathlib import Path

import numpy as np

from repro.bio.alphabet import DNA, PROTEIN, Alphabet
from repro.bio.database import DatabaseStats, SequenceDatabase
from repro.bio.sequence import Sequence

FORMAT_VERSION = 1
HEADER_NAME = "header.json"
_TEXT_COLUMNS = ("residues", "ids", "descriptions")
_OFFSET_COLUMNS = ("offsets", "id_offsets", "desc_offsets")
_ALPHABETS = {PROTEIN.name: PROTEIN, DNA.name: DNA}

#: Process-local open-database memo (mmap handles are shareable).
_OPEN_MEMO: dict[str, "PackedDatabase"] = {}
_OPEN_MEMO_CAP = 8
#: Process-local header source-key memo (one tiny JSON read per path).
_SOURCE_KEY_MEMO: dict[str, object] = {}
#: Per-alphabet byte→code lookup tables.
_LUT_MEMO: dict[str, np.ndarray] = {}


class PackedDatabaseError(ValueError):
    """A packed database directory is missing, malformed, or corrupt."""


@dataclass(frozen=True)
class PackedDatabaseRef:
    """A picklable pointer to a packed database directory.

    This is what flows through serve configs and task payloads in
    place of a generator config; workers resolve it lazily with
    :func:`open_packed` (an mmap open, not a materialization).
    """

    path: str


def _codes_lut(alphabet: Alphabet) -> np.ndarray:
    """Byte-value → residue-code table for one alphabet.

    Packed text is normalized (upper-case, validated at original
    encode time), so every byte is either an alphabet symbol or an
    unknown letter that encodes to the wildcard — exactly
    ``Alphabet.code_of``'s fallback, applied here as the table
    default.
    """
    lut = _LUT_MEMO.get(alphabet.name)
    if lut is None:
        lut = np.full(256, alphabet.wildcard_code, dtype=np.int64)
        for symbol in alphabet.symbols:
            lut[ord(symbol)] = alphabet.code_of(symbol)
        _LUT_MEMO[alphabet.name] = lut
    return lut


def _concat_text(texts: list[str]) -> tuple[np.ndarray, np.ndarray]:
    offsets = np.zeros(len(texts) + 1, dtype=np.int64)
    np.cumsum([len(text) for text in texts], out=offsets[1:])
    blob = "".join(texts).encode("ascii")
    data = np.frombuffer(blob, dtype=np.uint8).copy()
    return data, offsets


def _content_digest(columns: dict[str, np.ndarray]) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(columns):
        array = np.ascontiguousarray(columns[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def _jsonable_source_key(source_config: object) -> object:
    if not is_dataclass(source_config):
        raise TypeError(
            "source_config must be a database-config dataclass, got "
            f"{type(source_config).__name__}"
        )
    # JSON round-trips ints, floats (shortest-repr), and strings
    # exactly, so the tuple read back at serve time reprs identically
    # to the live config's astuple — the digest-compatibility anchor.
    return json.loads(json.dumps(astuple(source_config)))


def _as_tuple(value: object) -> object:
    if isinstance(value, list):
        return tuple(_as_tuple(item) for item in value)
    return value


def pack_database(
    database: SequenceDatabase,
    out_dir: str | Path,
    source_config: object | None = None,
    overwrite: bool = False,
) -> Path:
    """Write one packed snapshot of ``database`` to ``out_dir``.

    ``source_config`` (the generator config the database came from)
    pins the snapshot's cache identity; without it the snapshot gets a
    content-derived key and will not share cache entries with the
    generator path.  The directory is assembled in a same-parent
    temporary and renamed into place, so a crashed pack never leaves a
    half-written database behind.
    """
    out = Path(out_dir)
    if (out / HEADER_NAME).exists():
        if not overwrite:
            raise FileExistsError(f"packed database exists: {out}")
        shutil.rmtree(out)
    residues, offsets = _concat_text(
        [sequence.text for sequence in database]
    )
    ids, id_offsets = _concat_text(
        [sequence.identifier for sequence in database]
    )
    descriptions, desc_offsets = _concat_text(
        [sequence.description for sequence in database]
    )
    columns = {
        "residues": residues,
        "offsets": offsets,
        "ids": ids,
        "id_offsets": id_offsets,
        "descriptions": descriptions,
        "desc_offsets": desc_offsets,
    }
    digest = _content_digest(columns)
    header = {
        "format_version": FORMAT_VERSION,
        "name": database.name,
        "alphabet": database.alphabet.name,
        "sequence_count": len(database),
        "residue_count": int(offsets[-1]),
        "content_digest": digest,
        "source_key": (
            None if source_config is None
            else _jsonable_source_key(source_config)
        ),
    }
    temporary = out.parent / f".{out.name}.{os.getpid()}.tmp"
    if temporary.exists():
        shutil.rmtree(temporary)
    temporary.mkdir(parents=True)
    try:
        for name, column in columns.items():
            np.save(temporary / f"{name}.npy", column)
        (temporary / HEADER_NAME).write_text(
            json.dumps(header, indent=2, sort_keys=True) + "\n"
        )
        os.replace(temporary, out)
    finally:
        if temporary.exists():
            shutil.rmtree(temporary, ignore_errors=True)
    return out


def _read_header(path: str | Path) -> dict:
    header_path = Path(path) / HEADER_NAME
    try:
        header = json.loads(header_path.read_text())
    except OSError as error:
        raise PackedDatabaseError(
            f"not a packed database (no readable {HEADER_NAME}): {path} "
            f"({error})"
        ) from error
    except ValueError as error:
        raise PackedDatabaseError(
            f"corrupt packed-database header: {header_path} ({error})"
        ) from error
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise PackedDatabaseError(
            f"unsupported packed-database format {version!r} at {path} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return header


def verify_packed(path: str | Path) -> dict:
    """Full content check: recompute the column digest vs the header.

    O(bytes) — used by ``repro store pack-db --verify`` and tests, not
    on the open path.  Raises :class:`PackedDatabaseError` on any
    mismatch.
    """
    header = _read_header(path)
    columns = {}
    for name in _TEXT_COLUMNS + _OFFSET_COLUMNS:
        try:
            columns[name] = np.load(Path(path) / f"{name}.npy")
        except (OSError, ValueError) as error:
            raise PackedDatabaseError(
                f"missing or unreadable column {name!r} at {path} "
                f"({error})"
            ) from error
    digest = _content_digest(columns)
    if digest != header.get("content_digest"):
        raise PackedDatabaseError(
            f"content digest mismatch at {path}: header says "
            f"{header.get('content_digest')}, columns hash to {digest}"
        )
    return header


class PackedDatabase:
    """Read-only, mmap-backed :class:`SequenceDatabase` equivalent.

    Mirrors the SequenceDatabase API the scan/shard paths use —
    iteration, ``len``, ``shard_bounds``/``shard``/``slice``,
    ``stats``, ``residue_count``, id lookup — over shared column
    arrays.  ``shard``/``slice`` return O(1) windowed views onto the
    same arrays; subjects materialize lazily during iteration and are
    not retained.
    """

    def __init__(
        self,
        name: str,
        alphabet: Alphabet,
        columns: dict[str, np.ndarray],
        start: int = 0,
        stop: int | None = None,
    ) -> None:
        self.name = name
        self.alphabet = alphabet
        self._columns = columns
        self._residues = columns["residues"]
        self._offsets = columns["offsets"]
        self._start = start
        self._stop = (
            len(self._offsets) - 1 if stop is None else stop
        )
        self._lut = _codes_lut(alphabet)
        self._index_by_id: dict[str, int] | None = None

    @classmethod
    def open(cls, path: str | Path) -> "PackedDatabase":
        """Map one packed directory (small columns load, bytes mmap)."""
        header = _read_header(path)
        root = Path(path)
        columns: dict[str, np.ndarray] = {}
        try:
            for name in _OFFSET_COLUMNS:
                columns[name] = np.load(root / f"{name}.npy")
            for name in _TEXT_COLUMNS:
                columns[name] = np.load(
                    root / f"{name}.npy", mmap_mode="r"
                )
        except (OSError, ValueError) as error:
            raise PackedDatabaseError(
                f"missing or unreadable column at {path} ({error})"
            ) from error
        alphabet = _ALPHABETS.get(header["alphabet"])
        if alphabet is None:
            raise PackedDatabaseError(
                f"unknown alphabet {header['alphabet']!r} at {path}"
            )
        expected = int(header["sequence_count"])
        if len(columns["offsets"]) != expected + 1:
            raise PackedDatabaseError(
                f"offsets column disagrees with header at {path}: "
                f"{len(columns['offsets'])} extents for {expected} "
                "sequences"
            )
        return cls(header["name"], alphabet, columns)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._stop - self._start

    def __iter__(self):
        for index in range(self._start, self._stop):
            yield self._materialize(index)

    def __getitem__(self, position: int) -> Sequence:
        length = len(self)
        if position < 0:
            position += length
        if not 0 <= position < length:
            raise IndexError("sequence index out of range")
        return self._materialize(self._start + position)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._id_index()

    def get(self, identifier: str) -> Sequence | None:
        """Sequence by identifier, or None."""
        index = self._id_index().get(identifier)
        return None if index is None else self._materialize(index)

    def add(self, sequence: Sequence) -> None:
        raise TypeError(
            "packed databases are read-only snapshots; re-pack to change"
        )

    # -- materialization ----------------------------------------------------

    def _decode(self, column: str, offsets: str, index: int) -> str:
        extents = self._columns[offsets]
        begin, end = int(extents[index]), int(extents[index + 1])
        return bytes(self._columns[column][begin:end]).decode("ascii")

    def _materialize(self, index: int) -> Sequence:
        begin = int(self._offsets[index])
        end = int(self._offsets[index + 1])
        chunk = self._residues[begin:end]
        text = bytes(chunk).decode("ascii")
        codes = tuple(self._lut[chunk].tolist())
        return Sequence.from_encoded(
            identifier=self._decode("ids", "id_offsets", index),
            text=text,
            codes=codes,
            description=self._decode(
                "descriptions", "desc_offsets", index
            ),
            alphabet=self.alphabet,
        )

    def _id_index(self) -> dict[str, int]:
        if self._index_by_id is None:
            self._index_by_id = {
                self._decode("ids", "id_offsets", index): index
                for index in range(self._start, self._stop)
            }
        return self._index_by_id

    # -- windows (sharding) -------------------------------------------------

    def _window(self, start: int, stop: int, name: str) -> "PackedDatabase":
        view = PackedDatabase(
            name, self.alphabet, self._columns,
            start=self._start + start, stop=self._start + stop,
        )
        return view

    def slice(self, count: int, name: str | None = None) -> "PackedDatabase":
        """First ``count`` sequences as a windowed view (O(1))."""
        count = min(count, len(self))
        return self._window(
            0, count, name or f"{self.name}[:{count}]"
        )

    def shard_bounds(self, shard_count: int) -> list[tuple[int, int]]:
        """Deterministic [start, stop) bounds for each shard."""
        if shard_count < 1:
            raise ValueError("shard_count must be positive")
        total = len(self)
        return [
            (index * total // shard_count,
             (index + 1) * total // shard_count)
            for index in range(shard_count)
        ]

    def shard(
        self, shard_index: int, shard_count: int, name: str | None = None
    ) -> "PackedDatabase":
        """One deterministic shard as a windowed view (O(1))."""
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard_index {shard_index} outside 0..{shard_count - 1}"
            )
        start, stop = self.shard_bounds(shard_count)[shard_index]
        return self._window(
            start, stop,
            name or f"{self.name}[shard {shard_index}/{shard_count}]",
        )

    # -- statistics ---------------------------------------------------------

    @property
    def residue_count(self) -> int:
        """Total residues in this view (O(1) via the offsets column)."""
        return int(
            self._offsets[self._stop] - self._offsets[self._start]
        )

    def stats(self) -> DatabaseStats:
        """Aggregate statistics, vectorized over the offsets column."""
        lengths = np.diff(self._offsets[self._start:self._stop + 1])
        if len(lengths) == 0:
            return DatabaseStats(
                sequence_count=0, residue_count=0, shortest=0, longest=0
            )
        return DatabaseStats(
            sequence_count=len(lengths),
            residue_count=int(lengths.sum()),
            shortest=int(lengths.min()),
            longest=int(lengths.max()),
        )


def open_packed(path: str | Path) -> PackedDatabase:
    """Open (memoized per process) one packed database directory."""
    resolved = str(Path(path).resolve())
    database = _OPEN_MEMO.get(resolved)
    if database is None:
        database = PackedDatabase.open(resolved)
        if len(_OPEN_MEMO) >= _OPEN_MEMO_CAP:
            _OPEN_MEMO.clear()
        _OPEN_MEMO[resolved] = database
    return database


def packed_source_key(ref: PackedDatabaseRef) -> object:
    """The cache-key material a packed snapshot stands for.

    The header's pinned source key (the generator config's astuple),
    tuple-ified so it reprs identically to the live config's — or a
    content-derived key for packs with no recorded source.
    """
    resolved = str(Path(ref.path).resolve())
    key = _SOURCE_KEY_MEMO.get(resolved)
    if key is None:
        header = _read_header(resolved)
        raw = header.get("source_key")
        if raw is None:
            key = ("packed", header["content_digest"])
        else:
            key = _as_tuple(raw)
        _SOURCE_KEY_MEMO[resolved] = key
    return key


def reset_packed_memos() -> None:
    """Drop per-process open/source-key memos (tests repack paths)."""
    _OPEN_MEMO.clear()
    _SOURCE_KEY_MEMO.clear()
