"""Persistent stores: content-addressed objects, compiled artifacts,
and the packed (mmap-able) columnar database format.

Three layers (see docs/storage.md):

* :mod:`repro.store.base` — the on-disk discipline every store shares:
  ``objects/<aa>/<digest><suffix>`` fan-out, atomic writes, counting,
  clearing, and bounded oldest-first eviction.
* :mod:`repro.store.artifacts` — the compiled-artifact store: BLAST
  neighbor tables and per-query lookup tables (word indexes) keyed by
  content digest + code-version salt, so warm processes skip compile
  work entirely.
* :mod:`repro.store.packdb` — ``repro store pack-db`` output: a
  columnar on-disk :class:`~repro.bio.database.SequenceDatabase`
  snapshot whose residue/id/description columns are opened with
  ``np.load(..., mmap_mode="r")``, so N replica processes share the
  page cache instead of materializing N private heaps.
"""

from repro.store.artifacts import ArtifactStore, artifact_key
from repro.store.base import ContentStore, StoreStats
from repro.store.packdb import (
    PackedDatabase,
    PackedDatabaseError,
    PackedDatabaseRef,
    open_packed,
    pack_database,
)

__all__ = [
    "ArtifactStore",
    "ContentStore",
    "PackedDatabase",
    "PackedDatabaseError",
    "PackedDatabaseRef",
    "StoreStats",
    "artifact_key",
    "open_packed",
    "pack_database",
]
