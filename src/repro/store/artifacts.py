"""Persistent compiled-artifact store.

The serving hot path compiles two kinds of structure before it can
scan a single residue: the BLAST *neighbor table* (every word within
threshold of every query word — ~0.6 s to expand in full) and the
per-query *lookup table* (the query's word index / profile).  Both are
pure functions of their inputs and the source tree, so they are
content-addressed here the same way the runtime caches results:

    objects/<aa>/<digest>.artifact.npz

``<digest>`` is :func:`artifact_key` — a blake2b over the artifact
kind, its defining material, the cache schema version, and
:func:`repro.runtime.keys.code_salt` — so any source change invalidates
every artifact, exactly like result-cache entries.  Payloads are
``.npz`` bundles of integer arrays with an embedded content checksum:
a corrupt or truncated object loads as a miss (and is deleted), never
as wrong data — callers rebuild and overwrite.

A process-local handle cache sits in front of disk: decoded artifacts
are memoized by digest, so a warm process pays one dict probe.  The
memos are module-owned globals written only from this module, which
keeps them fork-safe under the pool executor (each worker warms its
own copy from the shared files).
"""

from __future__ import annotations

import hashlib
import zipfile
from pathlib import Path

import numpy as np

from repro.store.base import ContentStore

ARTIFACT_SUFFIX = ".artifact.npz"
_CHECKSUM_FIELD = "__checksum__"

#: Process-local decoded-artifact handles, keyed by digest.
_HANDLES: dict[str, object] = {}
_HANDLE_CAP = 128
#: Hit/miss telemetry for ``repro store stats`` and tests.
_COUNTS = {"handle_hits": 0, "disk_hits": 0, "misses": 0, "corrupt": 0}


def artifact_key(kind: str, material: object) -> str:
    """Content digest for one compiled artifact.

    Mixes in ``CACHE_SCHEMA_VERSION`` and :func:`code_salt` so that
    artifacts are exactly as durable as result-cache entries: a source
    change invalidates both, and a stale artifact can never be read
    back under new code.
    """
    from repro.runtime.keys import CACHE_SCHEMA_VERSION, code_salt

    material = ("artifact", CACHE_SCHEMA_VERSION, code_salt(), kind, material)
    return hashlib.blake2b(
        repr(material).encode(), digest_size=16
    ).hexdigest()


def _checksum(arrays: dict[str, np.ndarray]) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.digest()


class ArtifactStore(ContentStore):
    """Content-addressed store for compiled search artifacts."""

    def artifact_path(self, digest: str) -> Path:
        """Where an artifact with this digest lives (may not exist)."""
        return self._path(digest, ARTIFACT_SUFFIX)

    def store_arrays(
        self, digest: str, arrays: dict[str, np.ndarray]
    ) -> Path:
        """Persist one artifact bundle (no-op when it already exists)."""
        path = self.artifact_path(digest)
        if not path.exists():
            payload = {
                name: np.ascontiguousarray(array)
                for name, array in arrays.items()
            }
            payload[_CHECKSUM_FIELD] = np.frombuffer(
                _checksum(arrays), dtype=np.uint8
            )
            self._write_atomic(
                path, lambda temp: np.savez(temp, **payload)
            )
        return path

    def load_arrays(self, digest: str) -> dict[str, np.ndarray] | None:
        """Load one artifact bundle, or ``None`` on miss/corruption.

        A bundle whose embedded checksum disagrees with its content
        (truncated write, bit rot, tampering) is deleted and reported
        as a miss — the caller rebuilds, it never crashes or computes
        on bad data.
        """
        path = self.artifact_path(digest)
        try:
            with np.load(path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            _COUNTS["misses"] += 1
            return None
        recorded = arrays.pop(_CHECKSUM_FIELD, None)
        if (
            recorded is None
            or recorded.tobytes() != _checksum(arrays)
        ):
            _COUNTS["corrupt"] += 1
            path.unlink(missing_ok=True)
            return None
        return arrays

    def stats(self) -> dict:
        """On-disk totals plus this process's handle-cache telemetry."""
        counts, entries, total = self.measure((ARTIFACT_SUFFIX,))
        return {
            "artifacts": counts[ARTIFACT_SUFFIX],
            "entries": entries,
            "total_bytes": total,
            **handle_cache_stats(),
        }

    def clean(self) -> dict:
        """Delete every artifact; returns what was removed."""
        stats = self.stats()
        self.clear_objects()
        _HANDLES.clear()
        return stats


def handle_cache_stats() -> dict:
    """This process's artifact handle-cache counters."""
    probes = (
        _COUNTS["handle_hits"] + _COUNTS["disk_hits"] + _COUNTS["misses"]
        + _COUNTS["corrupt"]
    )
    return {
        **_COUNTS,
        "handles": len(_HANDLES),
        "hit_rate": (
            (_COUNTS["handle_hits"] + _COUNTS["disk_hits"]) / probes
            if probes else 0.0
        ),
    }


def reset_handle_cache() -> None:
    """Drop decoded handles and zero the counters (tests)."""
    _HANDLES.clear()
    for name in _COUNTS:
        _COUNTS[name] = 0


def _remember(digest: str, handle: object) -> None:
    if len(_HANDLES) >= _HANDLE_CAP:
        _HANDLES.clear()
    _HANDLES[digest] = handle


# -- neighbor tables --------------------------------------------------------


def neighbor_table_key(
    matrix_name: str, threshold: int, word_size: int
) -> str:
    return artifact_key(
        "neighbor-table", (matrix_name, int(threshold), int(word_size))
    )


def _encode_table(table: dict[int, tuple[int, ...]]) -> dict:
    words = np.fromiter(sorted(table), dtype=np.int64, count=len(table))
    counts = np.fromiter(
        (len(table[int(word)]) for word in words),
        dtype=np.int64, count=len(words),
    )
    offsets = np.zeros(len(words) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    neighbors = np.fromiter(
        (
            neighbor
            for word in words
            for neighbor in table[int(word)]
        ),
        dtype=np.int64, count=int(offsets[-1]),
    )
    return {"words": words, "offsets": offsets, "neighbors": neighbors}


def _decode_table(arrays: dict) -> dict[int, tuple[int, ...]]:
    words = arrays["words"]
    offsets = arrays["offsets"]
    neighbors = arrays["neighbors"].tolist()
    return {
        int(word): tuple(neighbors[offsets[index]:offsets[index + 1]])
        for index, word in enumerate(words.tolist())
    }


def ensure_neighbor_table(
    store: ArtifactStore,
    matrix=None,
    threshold: int | None = None,
    word_size: int | None = None,
) -> int:
    """Install the full neighbor table, store-first.

    On a store hit the decoded table is installed into the wordfinder
    memo directly — no branch-and-bound expansion at all.  On a miss
    the table is expanded once (:func:`precompute_neighborhoods`) and
    persisted for every later process.  Returns the entry count either
    way.
    """
    from repro.align.blast.wordfinder import (
        DEFAULT_THRESHOLD,
        DEFAULT_WORD_SIZE,
        export_neighbor_table,
        install_neighbor_table,
        precompute_neighborhoods,
    )
    from repro.bio.matrices import BLOSUM62

    matrix = BLOSUM62 if matrix is None else matrix
    threshold = DEFAULT_THRESHOLD if threshold is None else threshold
    word_size = DEFAULT_WORD_SIZE if word_size is None else word_size
    digest = neighbor_table_key(matrix.name, threshold, word_size)
    table = _HANDLES.get(digest)
    if table is not None:
        _COUNTS["handle_hits"] += 1
        install_neighbor_table(matrix.name, threshold, word_size, table)
        return sum(len(neighbors) for neighbors in table.values())
    arrays = store.load_arrays(digest)
    if arrays is not None:
        _COUNTS["disk_hits"] += 1
        table = _decode_table(arrays)
        install_neighbor_table(matrix.name, threshold, word_size, table)
        _remember(digest, table)
        return sum(len(neighbors) for neighbors in table.values())
    entries = precompute_neighborhoods(
        matrix=matrix, threshold=threshold, word_size=word_size
    )
    table = export_neighbor_table(matrix.name, threshold, word_size)
    if table is not None:
        store.store_arrays(digest, _encode_table(table))
        _remember(digest, table)
    return entries


# -- per-query lookup tables (word indexes) ---------------------------------


def lookup_key(
    matrix_name: str,
    threshold: int,
    word_size: int,
    mask_query: bool,
    query_text: str,
) -> str:
    return artifact_key(
        "query-lookup",
        (
            matrix_name, int(threshold), int(word_size),
            bool(mask_query), query_text,
        ),
    )


def _encode_lookup(lookup) -> dict:
    occupied = np.fromiter(
        lookup.occupied, dtype=np.int64, count=len(lookup.occupied)
    )
    counts = np.fromiter(
        (len(lookup._cells[int(index)]) for index in occupied),
        dtype=np.int64, count=len(occupied),
    )
    offsets = np.zeros(len(occupied) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    positions = np.fromiter(
        (
            position
            for index in occupied
            for position in lookup._cells[int(index)]
        ),
        dtype=np.int64, count=int(offsets[-1]),
    )
    meta = np.array(
        [lookup.word_size, lookup.threshold, lookup.entry_count],
        dtype=np.int64,
    )
    return {
        "occupied": occupied, "offsets": offsets,
        "positions": positions, "meta": meta,
    }


def _decode_lookup(arrays: dict):
    from repro.align.blast.wordfinder import LookupTable

    word_size, threshold, entry_count = (
        int(value) for value in arrays["meta"]
    )
    occupied = arrays["occupied"]
    offsets = arrays["offsets"]
    positions = arrays["positions"].tolist()
    cells: list[list[int] | None] = [None] * (20 ** word_size)
    for index, cell in enumerate(occupied.tolist()):
        cells[cell] = positions[offsets[index]:offsets[index + 1]]
    return LookupTable.from_cells(
        word_size=word_size,
        threshold=threshold,
        cells=cells,
        occupied=tuple(occupied.tolist()),
        entry_count=entry_count,
    )


def cached_blast_engine(store: ArtifactStore, params, query):
    """A BLAST engine whose query lookup table is store-resident.

    On a hit the engine skips lookup compilation (and query masking)
    entirely; on a miss it compiles as usual and persists the table
    for every later process.  The produced engine scans byte-identically
    either way — the lookup codec round-trips cells exactly.
    """
    from repro.align.batch import blast_options
    from repro.align.blast.engine import BlastEngine

    options = blast_options(params)
    digest = lookup_key(
        options.matrix.name, options.threshold, options.word_size,
        options.mask_query, query.text,
    )
    lookup = _HANDLES.get(digest)
    if lookup is not None:
        _COUNTS["handle_hits"] += 1
        return BlastEngine(query, options, lookup=lookup)
    arrays = store.load_arrays(digest)
    if arrays is not None:
        _COUNTS["disk_hits"] += 1
        lookup = _decode_lookup(arrays)
        _remember(digest, lookup)
        return BlastEngine(query, options, lookup=lookup)
    engine = BlastEngine(query, options)
    store.store_arrays(digest, _encode_lookup(engine.lookup))
    _remember(digest, engine.lookup)
    return engine


def prewarm(
    store: ArtifactStore,
    threshold: int | None = None,
    word_size: int | None = None,
) -> dict:
    """Populate the store with the compile-heavy shared artifacts.

    ``repro store prewarm`` runs this once per deployment; replica
    processes then start with every neighbor-table expansion already
    on disk.  Per-query lookup tables accrete organically as queries
    arrive (each is persisted on first compile).
    """
    entries = ensure_neighbor_table(
        store, threshold=threshold, word_size=word_size
    )
    return {"neighbor_entries": entries, **store.stats()}
