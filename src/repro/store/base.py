"""Content-addressed object store primitives.

Both persistent stores in the repo — the runtime *result* cache
(:mod:`repro.runtime.cache`) and the compiled-*artifact* store
(:mod:`repro.store.artifacts`) — share one on-disk discipline,
factored here:

* objects live under ``<root>/objects/<aa>/<digest><suffix>`` where
  ``<aa>`` is the first two hex characters of the digest (fan-out so
  directories stay small);
* writes go through a same-directory temporary file plus
  :func:`os.replace`, so concurrent producers of one entry are safe —
  identical content, last write wins, readers never observe a torn
  file;
* maintenance (counting, clearing, bounded eviction) touches only the
  ``objects/`` tree, so a store root can host sidecar state (sweep
  manifests, flow-graph pickles) without the cleaner removing it.

Eviction policy is shared by every subclass: :meth:`ContentStore.evict`
removes oldest-modified objects first until the tree fits the byte
budget.  Reads treat a missing object as a cache miss, so evicting
under concurrent readers is always safe — the entry is simply rebuilt.
"""

from __future__ import annotations

import os
import shutil
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator


@dataclass(frozen=True)
class StoreStats:
    """Entry/byte totals for one object tree."""

    entries: int
    total_bytes: int


class ContentStore:
    """A directory of digest-addressed objects with atomic writes."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str, suffix: str) -> Path:
        return self.objects / digest[:2] / f"{digest}{suffix}"

    def _write_atomic(
        self, path: Path, writer: Callable[[Path], None]
    ) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Keep the real suffix: np.savez appends ".npz" to paths without
        # it.  The temp name carries pid AND thread id — concurrent
        # producers in one process (serve loop + pool threads) must not
        # share a temp or one replaces the other's half-written file.
        temporary = path.with_name(
            f".{path.stem}.{os.getpid()}.{threading.get_ident()}"
            f".tmp{path.suffix}"
        )
        try:
            writer(temporary)
            os.replace(temporary, path)
        finally:
            temporary.unlink(missing_ok=True)

    # -- maintenance --------------------------------------------------------

    def object_files(self) -> Iterator[Path]:
        """Every stored object (skips directories and in-flight temps)."""
        for path in self.objects.rglob("*"):
            if path.is_file() and not path.name.startswith("."):
                yield path

    def measure(
        self, suffixes: tuple[str, ...] = ()
    ) -> tuple[dict[str, int], int, int]:
        """Per-suffix counts plus ``(entries, total_bytes)`` overall."""
        counts = {suffix: 0 for suffix in suffixes}
        entries = total = 0
        for path in self.object_files():
            try:
                total += path.stat().st_size
            except OSError:
                continue  # concurrently evicted
            entries += 1
            for suffix in suffixes:
                if path.name.endswith(suffix):
                    counts[suffix] += 1
                    break
        return counts, entries, total

    def store_stats(self) -> StoreStats:
        """Entry and byte totals for the object tree."""
        _, entries, total = self.measure()
        return StoreStats(entries=entries, total_bytes=total)

    def clear_objects(self) -> StoreStats:
        """Delete every object; returns what was removed."""
        stats = self.store_stats()
        shutil.rmtree(self.objects, ignore_errors=True)
        self.objects.mkdir(parents=True, exist_ok=True)
        return stats

    def evict(self, max_bytes: int) -> StoreStats:
        """Shrink the object tree to ``max_bytes``, oldest-modified first.

        The shared eviction policy for every store: objects are ranked
        by modification time (ties broken by path for determinism) and
        removed until the remainder fits the budget.  Concurrent
        readers see evicted entries as ordinary misses and rebuild.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        ranked: list[tuple[float, str, int, Path]] = []
        total = 0
        for path in self.object_files():
            try:
                status = path.stat()
            except OSError:
                continue
            ranked.append(
                (status.st_mtime, str(path), status.st_size, path)
            )
            total += status.st_size
        removed = freed = 0
        ranked.sort()
        for _, _, size, path in ranked:
            if total - freed <= max_bytes:
                break
            path.unlink(missing_ok=True)
            removed += 1
            freed += size
        return StoreStats(entries=removed, total_bytes=freed)
