"""Command-line entry point: run paper experiments, export traces.

Usage::

    python -m repro list                  # available experiment ids
    python -m repro fig5                  # run one experiment, print report
    python -m repro fig5 --jobs 4         # fan simulations out over 4 workers
    python -m repro table3 fig1 fig2      # run several, in order
    python -m repro trace blast out.npz   # export one workload's trace
    python -m repro cache stats           # persistent result cache usage
    python -m repro cache clean           # drop every cached artifact
    python -m repro store pack-db db/     # zero-copy packed DB snapshot
    python -m repro store prewarm         # persist BLAST neighbor table
    python -m repro store stats           # artifact store usage/hit rate
    python -m repro bench                 # hot-path throughput benchmark
    python -m repro bench --quick --check # fast CI smoke + regression gate
    python -m repro serve --port 7717     # alignment-search service (TCP)
    python -m repro loadgen --requests 50 # benchmark a service (loopback)
    python -m repro cluster up            # replicated serving (router + N)
    python -m repro cluster restart       # zero-downtime rolling restart
    python -m repro lint-trace blast      # static trace invariant check
    python -m repro lint-trace --all -j 4 # lint every workload, in parallel
    python -m repro lint-code             # repo-specific AST lint (REP00x)
    python -m repro lint-flow             # whole-repo call-graph lint (FL00x)
    python -m repro sweep run SPEC        # run/resume a declarative sweep
    python -m repro sweep status SPEC     # manifest progress (no simulation)
    python -m repro sweep report SPEC     # render text/JSON/HTML report

Experiment-run options:

    --jobs/-j N        worker processes (default 1: serial in-process)
    --cache-dir PATH   persistent result cache (default: $REPRO_CACHE_DIR;
                       unset means an ephemeral per-run cache)
    --report PATH      write a JSON run report (per-task wall time, cache
                       hit/miss counts, retries)
    --task-timeout S   per-task timeout in seconds (default: none)
    --retries N        per-task retry budget before falling back to
                       in-process execution (default 2)
    --strict           lint every trace before caching or simulating it
                       (see docs/verify.md)

Scale with the ``REPRO_SCALE`` environment variable (see README).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.analysis.context import ExperimentContext
from repro.analysis.experiments import EXPERIMENTS, run_experiment


def _export_trace(arguments: list[str]) -> int:
    from repro.isa.serialize import save_trace
    from repro.kernels.registry import WORKLOAD_NAMES
    from repro.workloads.suite import WorkloadSuite

    if len(arguments) != 2:
        print("usage: python -m repro trace <workload> <out.npz>",
              file=sys.stderr)
        return 2
    name, path = arguments
    if name not in WORKLOAD_NAMES:
        print(f"unknown workload {name!r}; "
              f"available: {' '.join(WORKLOAD_NAMES)}", file=sys.stderr)
        return 2
    suite = WorkloadSuite()
    trace = suite.trace(name)
    save_trace(trace, path)
    mix = trace.mix()
    print(f"wrote {len(trace)} instructions of {name} to {path} "
          f"(ctrl {mix.control_fraction():.1%}, "
          f"loads {mix.load_fraction():.1%})")
    return 0


def _cache_command(arguments: list[str]) -> int:
    from repro.runtime.cache import ResultCache

    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect or clear the persistent result cache "
        "(and, with --store-dir, the compiled-artifact store beside "
        "it).",
    )
    parser.add_argument("action", choices=("stats", "clean"))
    parser.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR")
    )
    parser.add_argument(
        "--store-dir", default=os.environ.get("REPRO_STORE_DIR"),
        help="also report/clean the compiled-artifact store here",
    )
    try:
        options = parser.parse_args(arguments)
    except SystemExit as exit_:
        return int(exit_.code or 0)
    if not options.cache_dir:
        print("no cache directory: pass --cache-dir or set REPRO_CACHE_DIR",
              file=sys.stderr)
        return 2
    cache = ResultCache(options.cache_dir)
    if options.action == "stats":
        stats = cache.stats()
        print(f"cache {cache.root}: {stats.results} simulation results, "
              f"{stats.runs} kernel runs, {stats.traces} traces, "
              f"{stats.searches} search scans, "
              f"{stats.total_bytes / 1e6:.1f} MB")
        if options.store_dir:
            _print_store_stats(options.store_dir)
    else:
        removed = cache.clean()
        print(f"cache {cache.root}: removed {removed.entries} artifacts "
              f"({removed.total_bytes / 1e6:.1f} MB)")
        if options.store_dir:
            _clean_store(options.store_dir)
    return 0


def _print_store_stats(store_dir: str) -> None:
    from repro.store.artifacts import ArtifactStore

    store = ArtifactStore(store_dir)
    stats = store.stats()
    print(f"store {store.root}: {stats['artifacts']} compiled artifacts, "
          f"{stats['total_bytes'] / 1e6:.1f} MB; handle cache "
          f"{stats['handle_hits']} hits / {stats['disk_hits']} disk / "
          f"{stats['misses']} misses "
          f"(hit rate {stats['hit_rate']:.0%}), "
          f"{stats['corrupt']} corrupt entries dropped")


def _clean_store(store_dir: str) -> None:
    from repro.store.artifacts import ArtifactStore

    store = ArtifactStore(store_dir)
    removed = store.clean()
    print(f"store {store.root}: removed {removed['artifacts']} artifacts "
          f"({removed['total_bytes'] / 1e6:.1f} MB)")


def _store_command(arguments: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro store",
        description="Content-addressed compiled-artifact store and "
        "packed (mmap-able) database snapshots (see docs/storage.md).",
    )
    commands = parser.add_subparsers(dest="action", required=True)

    def with_store_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store-dir", default=os.environ.get("REPRO_STORE_DIR"),
            help="artifact store root (default: $REPRO_STORE_DIR)",
        )

    stats = commands.add_parser(
        "stats", help="artifact count, bytes, and handle-cache hit rate"
    )
    with_store_dir(stats)
    clean = commands.add_parser(
        "clean", help="drop every stored compiled artifact"
    )
    with_store_dir(clean)
    prewarm = commands.add_parser(
        "prewarm",
        help="compile + store the BLAST neighbor table so no serving "
        "process ever pays the expansion",
    )
    with_store_dir(prewarm)
    prewarm.add_argument("--threshold", type=int, default=None)
    prewarm.add_argument("--word-size", type=int, default=None)
    pack = commands.add_parser(
        "pack-db",
        help="snapshot a synthetic database into the zero-copy packed "
        "format replicas mmap (serve --db-path)",
    )
    pack.add_argument("out", help="output directory for the snapshot")
    pack.add_argument(
        "--db-sequences", type=int, default=None,
        help="synthetic database size in sequences (default: serve's)",
    )
    pack.add_argument(
        "--db-seed", type=int, default=None,
        help="synthetic database seed (default: serve's)",
    )
    pack.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing snapshot at OUT",
    )
    verify = commands.add_parser(
        "verify-db",
        help="recompute a snapshot's content digest against its header",
    )
    verify.add_argument("path", help="packed database directory")
    try:
        options = parser.parse_args(arguments)
    except SystemExit as exit_:
        return int(exit_.code or 0)

    if options.action == "pack-db":
        import dataclasses

        from repro.bio.synthetic import generate_database
        from repro.serve.server import DEFAULT_DATABASE
        from repro.store.packdb import pack_database

        overrides = {}
        if options.db_sequences is not None:
            overrides["sequence_count"] = options.db_sequences
        if options.db_seed is not None:
            overrides["seed"] = options.db_seed
        config = dataclasses.replace(DEFAULT_DATABASE, **overrides)
        database = generate_database(config)
        try:
            out = pack_database(
                database, options.out,
                source_config=config, overwrite=options.overwrite,
            )
        except FileExistsError:
            print(f"{options.out} already holds a packed database; "
                  "pass --overwrite to replace it", file=sys.stderr)
            return 2
        stats = database.stats()
        print(f"packed {stats.sequence_count} sequences "
              f"({stats.residue_count} residues) into {out}")
        return 0
    if options.action == "verify-db":
        from repro.store.packdb import PackedDatabaseError, verify_packed

        try:
            header = verify_packed(options.path)
        except PackedDatabaseError as error:
            print(f"CORRUPT {error}", file=sys.stderr)
            return 1
        print(f"ok {options.path}: {header['sequence_count']} sequences, "
              f"digest {header['content_digest']}")
        return 0

    if not options.store_dir:
        print("no store directory: pass --store-dir or set REPRO_STORE_DIR",
              file=sys.stderr)
        return 2
    if options.action == "stats":
        _print_store_stats(options.store_dir)
    elif options.action == "clean":
        _clean_store(options.store_dir)
    else:
        from repro.store.artifacts import ArtifactStore, prewarm

        started = time.perf_counter()
        report = prewarm(
            ArtifactStore(options.store_dir),
            threshold=options.threshold,
            word_size=options.word_size,
        )
        print(f"store {options.store_dir}: neighbor table "
              f"({report['neighbor_entries']} entries) ready in "
              f"{time.perf_counter() - started:.2f}s; "
              f"{report['artifacts']} artifacts, "
              f"{report['total_bytes'] / 1e6:.1f} MB on disk")
    return 0


def _bench_command(arguments: list[str]) -> int:
    from repro.bench import (
        check_regression,
        format_report,
        run_bench,
        write_report,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Measure trace-generation, trace-load, and "
        "simulation throughput (best-of-N).",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller slice and fewer repetitions (CI smoke)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full JSON report (including the per-workload "
        "trace_generation breakdown) instead of the summary table",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="compare against a stored report; exit non-zero on a "
        "regression beyond --fail-threshold",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed BENCH_core.json with a "
        "tight threshold (exit non-zero on a >25%% throughput drop "
        "after normalizing for machine speed)",
    )
    parser.add_argument(
        "--fail-threshold", type=float, default=3.0,
        help="regression factor that fails the run (default 3.0)",
    )
    parser.add_argument(
        "--cluster", action="store_true",
        help="also benchmark a 3-replica cluster on a packed "
        "(mmap-shared) database vs materialize-per-replica: fleet "
        "cold start, per-replica RSS, response byte-identity",
    )
    parser.add_argument(
        "--cluster-only", action="store_true",
        help="run only the cluster benchmark (skips the core metrics)",
    )
    try:
        options = parser.parse_args(arguments)
    except SystemExit as exit_:
        return int(exit_.code or 0)

    if options.cluster_only:
        from repro.bench import bench_cluster, format_cluster

        cluster = bench_cluster()
        if options.json:
            print(json.dumps(cluster, indent=2, sort_keys=True))
        else:
            print(format_cluster(cluster))
        if options.out:
            write_report({"cluster": cluster}, options.out)
            print(f"wrote {options.out}")
        if options.check:
            from repro.bench import check_cluster_floors

            failures = check_cluster_floors({"cluster": cluster})
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            if failures:
                return 1
            print("cluster floors hold (cold start, RSS, byte-identity)")
        return 0

    report = run_bench(quick=options.quick)
    if options.cluster:
        from repro.bench import bench_cluster

        report["cluster"] = bench_cluster()
    if options.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    if options.out:
        write_report(report, options.out)
        print(f"wrote {options.out}")
    if options.check:
        from repro.bench import (
            COMMITTED_BASELINE,
            check_baseline,
            check_cluster_floors,
            check_lockstep_floor,
        )

        warnings: list[str] = []
        failures = check_baseline(report, warnings=warnings)
        failures += check_lockstep_floor(report)
        failures += check_cluster_floors(report)
        for warning in warnings:
            print(f"WARNING {warning}", file=sys.stderr)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"no regression beyond 25% vs {COMMITTED_BASELINE}; "
              "lockstep speedup floor holds")
    if options.baseline:
        with open(options.baseline, encoding="utf-8") as stream:
            baseline = json.load(stream)
        failures = check_regression(
            report, baseline, threshold=options.fail_threshold
        )
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"no regression beyond {options.fail_threshold:g}x "
              f"vs {options.baseline}")
    return 0


def _lint_trace_command(arguments: list[str]) -> int:
    import re

    from repro.kernels.registry import WORKLOAD_NAMES
    from repro.runtime.engine import ExperimentRuntime
    from repro.runtime.keys import trace_digest
    from repro.runtime.tasks import Task
    from repro.verify.tracelint import TRACE_RULES
    from repro.workloads.suite import WorkloadSuite

    parser = argparse.ArgumentParser(
        prog="python -m repro lint-trace",
        description="Statically verify trace/ISA invariants "
        "(TR001-TR011, see docs/verify.md) over workload traces or "
        ".npz archives, without running the simulator.",
    )
    parser.add_argument(
        "targets", nargs="*",
        help=f"workload names ({', '.join(WORKLOAD_NAMES)}) or .npz paths",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="lint every workload in the suite",
    )
    parser.add_argument("--jobs", "-j", type=int, default=1)
    parser.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR"),
        help="persistent cache: trace generation becomes cache-aware",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument(
        "--no-roundtrip", action="store_true",
        help="skip the TR009 serialize round-trip (faster)",
    )
    try:
        options = parser.parse_args(arguments)
    except SystemExit as exit_:
        return int(exit_.code or 0)

    targets = list(options.targets)
    if options.all:
        targets.extend(
            name for name in WORKLOAD_NAMES if name not in targets
        )
    if not targets:
        parser.print_usage(sys.stderr)
        print("no targets: name workloads, paths, or pass --all",
              file=sys.stderr)
        return 2
    names = [t for t in targets if t in WORKLOAD_NAMES]
    paths = [t for t in targets if t not in WORKLOAD_NAMES]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"unknown workload or missing file: {', '.join(missing)}; "
              f"workloads: {' '.join(WORKLOAD_NAMES)}", file=sys.stderr)
        return 2

    roundtrip = not options.no_roundtrip
    content_address = re.compile(r"^[0-9a-f]{16,64}$")
    runtime = ExperimentRuntime(
        jobs=options.jobs, cache_dir=options.cache_dir
    )
    try:
        suite = WorkloadSuite()
        if names:
            # Trace generation fans out over the pool and resolves from
            # the persistent cache when one is configured.
            runtime.run_workloads(suite, tuple(names))
        tasks = []
        for name in names:
            trace = suite.trace(name)
            digest = trace_digest(trace)
            if runtime.executor.inline:
                ref: object = trace
            else:
                ref = str(runtime.cache.store_trace(digest, trace))
            tasks.append(Task(
                kind="lint",
                payload=(ref, digest, roundtrip),
                label=f"lint:{name}",
            ))
        for path in paths:
            stem = os.path.basename(path).split(".")[0]
            expected = stem if content_address.match(stem) else None
            tasks.append(Task(
                kind="lint",
                payload=(str(path), expected, roundtrip),
                label=f"lint:{path}",
            ))
        outcomes = runtime.executor.run_many(tasks)
    finally:
        runtime.close()

    reports = [outcome.value for outcome in outcomes]
    failed = [report for report in reports if not report["ok"]]
    if options.as_json:
        print(json.dumps({
            "rules": TRACE_RULES,
            "traces": reports,
            "ok": not failed,
        }, indent=2))
    else:
        for report in reports:
            lines = [f"trace {report['trace']} "
                     f"({report['instructions']} instructions)"]
            for check in report["checks"]:
                status = "ok" if check["passed"] else "FAIL"
                lines.append(
                    f"  {check['rule']}  {check['title']:<28} {status}"
                )
                for violation in check["violations"]:
                    where = violation["index"]
                    anchor = "" if where is None else f" @ {where}"
                    count = violation["count"]
                    extra = "" if count <= 1 else f" ({count} instructions)"
                    lines.append(
                        f"         {violation['rule']}{anchor}: "
                        f"{violation['message']}{extra}"
                    )
            print("\n".join(lines))
        clean = len(reports) - len(failed)
        print(f"{clean}/{len(reports)} traces clean")
    return 1 if failed else 0


def _lint_code_command(arguments: list[str]) -> int:
    from pathlib import Path

    from repro.verify.repolint import RULES, lint_paths, write_manifest

    parser = argparse.ArgumentParser(
        prog="python -m repro lint-code",
        description="Repo-specific AST lint (REP001-REP005, see "
        "docs/verify.md) over src/repro.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories (default: all of src/repro)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument(
        "--update-manifest", action="store_true",
        help="re-pin the REP004 serialization manifest after a "
        "deliberate, version-bumped serialization change",
    )
    parser.add_argument(
        "--stale-suppressions", action="store_true",
        help="audit repolint/flowlint disable comments instead: flag "
        "any that no longer suppress a finding",
    )
    try:
        options = parser.parse_args(arguments)
    except SystemExit as exit_:
        return int(exit_.code or 0)

    if options.update_manifest:
        manifest = write_manifest()
        print(f"pinned serialization manifest: schema_version="
              f"{manifest['schema_version']} digest={manifest['digest']}")
        return 0

    if options.stale_suppressions:
        from repro.verify.flow import stale_suppressions

        stale = stale_suppressions()
        if options.as_json:
            print(json.dumps({
                "ok": not stale,
                "stale": [
                    {"path": v.path, "line": v.line, "message": v.message}
                    for v in stale
                ],
            }, indent=2))
        else:
            for violation in stale:
                print(violation)
            print(f"{len(stale)} stale suppression(s)"
                  if stale else "suppressions: all live")
        return 1 if stale else 0

    paths = [Path(p) for p in options.paths] or None
    violations = lint_paths(paths)
    if options.as_json:
        print(json.dumps({
            "rules": RULES,
            "ok": not violations,
            "violations": [
                {
                    "rule": v.rule,
                    "path": v.path,
                    "line": v.line,
                    "message": v.message,
                }
                for v in violations
            ],
        }, indent=2))
    else:
        for violation in violations:
            print(violation)
        print(f"{len(violations)} violation(s)"
              if violations else "repolint: clean")
    return 1 if violations else 0


def _lint_flow_command(arguments: list[str]) -> int:
    from repro.verify.flow import (
        FLOW_RULES,
        build_graph,
        graph_json,
        lint_flow,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro lint-flow",
        description="Whole-repo call-graph + dataflow lint "
        "(FL001-FL005, see docs/verify.md): interprocedural proofs of "
        "cache-key soundness, fork-shared-state safety, determinism "
        "of cached tasks, and event-loop blocking reachability over "
        "src/repro.",
    )
    parser.add_argument(
        "--rules", metavar="FL00x[,FL00y]",
        help="comma-separated rule subset (default: all)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="fan the per-module scan out over N pool workers",
    )
    parser.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR"),
        help="cache the linked graph pickle keyed by source digest "
        "(warm runs skip the whole-repo scan)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument(
        "--graph-json", metavar="PATH",
        help="dump the symbol table + call graph as JSON "
        "('-' for stdout)",
    )
    try:
        options = parser.parse_args(arguments)
    except SystemExit as exit_:
        return int(exit_.code or 0)

    rules = None
    if options.rules:
        rules = {
            rule.strip().upper() for rule in options.rules.split(",")
            if rule.strip()
        }
        unknown = rules - set(FLOW_RULES)
        if unknown:
            print(f"unknown flow rule(s): {', '.join(sorted(unknown))}; "
                  f"known: {' '.join(FLOW_RULES)}", file=sys.stderr)
            return 2

    runtime = None
    if options.jobs > 1:
        from repro.runtime.engine import ExperimentRuntime

        runtime = ExperimentRuntime(
            jobs=options.jobs, cache_dir=options.cache_dir
        )
    try:
        graph = build_graph(
            cache_dir=options.cache_dir, runtime=runtime
        )
    finally:
        if runtime is not None:
            runtime.close()

    # With --graph-json -, stdout *is* the graph document; the report
    # below moves to stderr so the stream stays machine-parseable.
    report_stream = sys.stdout
    if options.graph_json:
        dump = json.dumps(graph_json(graph), indent=2, sort_keys=True)
        if options.graph_json == "-":
            print(dump)
            report_stream = sys.stderr
        else:
            with open(options.graph_json, "w") as stream:
                stream.write(dump + "\n")

    violations = lint_flow(graph=graph, rules=rules)
    edge_count = sum(len(out) for out in graph.edges.values())
    source = "warm cache" if graph.from_cache else "cold scan"
    stats = (
        f"{graph.modules} modules, {len(graph.functions)} functions, "
        f"{edge_count} call edges ({source}, {graph.built_seconds:.2f}s)"
    )
    if options.as_json:
        print(json.dumps({
            "rules": FLOW_RULES,
            "ok": not violations,
            "graph": {
                "modules": graph.modules,
                "functions": len(graph.functions),
                "edges": edge_count,
                "from_cache": graph.from_cache,
                "built_seconds": graph.built_seconds,
                "digest": graph.digest,
            },
            "violations": [v.to_dict() for v in violations],
        }, indent=2), file=report_stream)
    else:
        for violation in violations:
            print(violation, file=report_stream)
        if violations:
            print(f"{len(violations)} violation(s)  [{stats}]", file=report_stream)
        else:
            print(f"flowlint: clean  [{stats}]", file=report_stream)
    return 1 if violations else 0


def _sweep_command(arguments: list[str]) -> int:
    from pathlib import Path

    from repro.runtime.engine import ExperimentRuntime
    from repro.sweep import (
        SweepSpecError,
        load_spec,
        render_report,
        report_data,
        run_sweep,
        sweep_status,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Declarative sweep campaigns: run/resume a spec "
        "grid, inspect its manifest, render its report "
        "(see docs/sweeps.md; committed specs in examples/sweeps/).",
    )
    parser.add_argument("action", choices=("run", "status", "report"))
    parser.add_argument("spec", help="sweep spec (.toml, .yaml/.yml, .json)")
    parser.add_argument("--jobs", "-j", type=int, default=1)
    parser.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR"),
        help="persistent result cache; the sweep manifest defaults to "
        "<cache-dir>/sweeps",
    )
    parser.add_argument(
        "--state-dir", default=None,
        help="where sweep manifests live (default: <cache-dir>/sweeps)",
    )
    parser.add_argument(
        "--max-points", type=int, default=None,
        help="execute at most N pending points this run (partial runs "
        "resume exactly where they stopped)",
    )
    parser.add_argument(
        "--lockstep", action=argparse.BooleanOptionalAction, default=True,
        help="execute points sharing a trace as lockstep multi-config "
        "batches (default on; results are byte-identical either way, "
        "and runs may freely mix engines across interrupt/resume)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "html"), default="text",
        help="report format (report action; default text)",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the report here instead of stdout (report action)",
    )
    parser.add_argument(
        "--summary-json", default=None,
        help="write the run summary (executed/resumed/remaining counts) "
        "as JSON here (run action)",
    )
    parser.add_argument("--task-timeout", type=float, default=None)
    parser.add_argument("--retries", type=int, default=2)
    try:
        options = parser.parse_args(arguments)
    except SystemExit as exit_:
        return int(exit_.code or 0)

    try:
        spec = load_spec(options.spec)
    except SweepSpecError as error:
        print(error, file=sys.stderr)
        return 2

    state_dir = options.state_dir
    if state_dir is None and options.cache_dir:
        state_dir = str(Path(options.cache_dir) / "sweeps")

    if options.action in {"status", "report"}:
        if state_dir is None:
            print("no sweep state: pass --state-dir or --cache-dir "
                  "(or set REPRO_CACHE_DIR)", file=sys.stderr)
            return 2
        if options.action == "status":
            status = sweep_status(spec, state_dir)
            print(f"sweep {status['sweep']} ({status['spec_digest']}): "
                  f"{status['recorded']}/{status['points']} points recorded"
                  + ("" if status["complete"]
                     else f", {status['missing']} missing"))
            return 0 if status["complete"] else 1
        rendered = render_report(report_data(spec, state_dir), options.format)
        if options.out:
            Path(options.out).write_text(rendered)
            print(f"wrote {options.out}")
        else:
            print(rendered, end="")
        return 0

    runtime = ExperimentRuntime(
        jobs=options.jobs,
        cache_dir=options.cache_dir,
        task_timeout=options.task_timeout,
        retries=options.retries,
    )
    try:
        run = run_sweep(
            spec, runtime,
            state_dir=state_dir,
            max_points=options.max_points,
            lockstep=options.lockstep,
        )
    finally:
        runtime.close()
    summary = run.summary()
    print(f"sweep {summary['sweep']} ({summary['spec_digest']}): "
          f"{summary['executed']} executed, {summary['resumed']} resumed"
          + (f", {summary['invalidated']} invalidated"
             if summary["invalidated"] else "")
          + (f", {summary['remaining']} remaining"
             if summary["remaining"] else " — complete"))
    if not runtime.persistent:
        print("note: ephemeral cache (no --cache-dir); this run cannot "
              "be resumed", file=sys.stderr)
    if options.summary_json:
        Path(options.summary_json).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
    return 0


def _run_experiments(arguments: list[str]) -> int:
    from repro.runtime.engine import ExperimentRuntime

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run paper experiments (see `python -m repro list`).",
    )
    parser.add_argument("experiments", nargs="+")
    parser.add_argument("--jobs", "-j", type=int, default=1)
    parser.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR")
    )
    parser.add_argument("--report", default=None)
    parser.add_argument("--task-timeout", type=float, default=None)
    parser.add_argument("--retries", type=int, default=2)
    parser.add_argument("--strict", action="store_true")
    try:
        options = parser.parse_args(arguments)
    except SystemExit as exit_:
        return int(exit_.code or 0)

    unknown = [
        name for name in options.experiments if name not in EXPERIMENTS
    ]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {' '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    runtime = ExperimentRuntime(
        jobs=options.jobs,
        cache_dir=options.cache_dir,
        task_timeout=options.task_timeout,
        retries=options.retries,
        strict=options.strict,
    )
    context = ExperimentContext(runtime=runtime)
    try:
        for identifier in options.experiments:
            before = runtime.metrics.counts()
            start = time.perf_counter()
            _, report = run_experiment(identifier, context)
            elapsed = time.perf_counter() - start
            after = runtime.metrics.counts()
            hits = after["cache_hits"] - before["cache_hits"]
            misses = after["cache_misses"] - before["cache_misses"]
            print(report)
            print(f"[{identifier} completed in {elapsed:.1f}s | "
                  f"cache: {hits} hits, {misses} misses]\n")
        if options.report:
            runtime.metrics.write_report(
                options.report,
                jobs=runtime.jobs,
                cache_dir=options.cache_dir,
            )
    finally:
        runtime.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if not arguments or arguments[0] in {"-h", "--help"}:
        print(__doc__)
        return 0
    if arguments[0] == "list":
        for identifier in EXPERIMENTS:
            print(identifier)
        return 0
    if arguments[0] == "trace":
        return _export_trace(arguments[1:])
    if arguments[0] == "cache":
        return _cache_command(arguments[1:])
    if arguments[0] == "store":
        return _store_command(arguments[1:])
    if arguments[0] == "bench":
        return _bench_command(arguments[1:])
    if arguments[0] == "serve":
        from repro.serve.server import main_serve

        return main_serve(arguments[1:])
    if arguments[0] == "loadgen":
        from repro.serve.loadgen import main_loadgen

        return main_loadgen(arguments[1:])
    if arguments[0] == "cluster":
        from repro.cluster.cli import main_cluster

        return main_cluster(arguments[1:])
    if arguments[0] == "lint-trace":
        return _lint_trace_command(arguments[1:])
    if arguments[0] == "lint-code":
        return _lint_code_command(arguments[1:])
    if arguments[0] == "lint-flow":
        return _lint_flow_command(arguments[1:])
    if arguments[0] == "sweep":
        return _sweep_command(arguments[1:])
    return _run_experiments(arguments)


if __name__ == "__main__":
    raise SystemExit(main())
