"""Command-line entry point: run paper experiments, export traces.

Usage::

    python -m repro list                 # available experiment ids
    python -m repro fig5                 # run one experiment, print report
    python -m repro table3 fig1 fig2     # run several, in order
    python -m repro trace blast out.npz  # export one workload's trace

Scale with the ``REPRO_SCALE`` environment variable (see README).
"""

from __future__ import annotations

import sys
import time

from repro.analysis.context import ExperimentContext
from repro.analysis.experiments import EXPERIMENTS, run_experiment


def _export_trace(arguments: list[str]) -> int:
    from repro.isa.serialize import save_trace
    from repro.kernels.registry import WORKLOAD_NAMES
    from repro.workloads.suite import WorkloadSuite

    if len(arguments) != 2:
        print("usage: python -m repro trace <workload> <out.npz>",
              file=sys.stderr)
        return 2
    name, path = arguments
    if name not in WORKLOAD_NAMES:
        print(f"unknown workload {name!r}; "
              f"available: {' '.join(WORKLOAD_NAMES)}", file=sys.stderr)
        return 2
    suite = WorkloadSuite()
    trace = suite.trace(name)
    save_trace(trace, path)
    mix = trace.mix()
    print(f"wrote {len(trace)} instructions of {name} to {path} "
          f"(ctrl {mix.control_fraction():.1%}, "
          f"loads {mix.load_fraction():.1%})")
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if not arguments or arguments[0] in {"-h", "--help"}:
        print(__doc__)
        return 0
    if arguments[0] == "list":
        for identifier in EXPERIMENTS:
            print(identifier)
        return 0
    if arguments[0] == "trace":
        return _export_trace(arguments[1:])

    unknown = [name for name in arguments if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {' '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    context = ExperimentContext()
    for identifier in arguments:
        start = time.time()
        _, report = run_experiment(identifier, context)
        elapsed = time.time() - start
        print(report)
        print(f"[{identifier} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
