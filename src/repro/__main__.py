"""Command-line entry point: run paper experiments, export traces.

Usage::

    python -m repro list                  # available experiment ids
    python -m repro fig5                  # run one experiment, print report
    python -m repro fig5 --jobs 4         # fan simulations out over 4 workers
    python -m repro table3 fig1 fig2      # run several, in order
    python -m repro trace blast out.npz   # export one workload's trace
    python -m repro cache stats           # persistent result cache usage
    python -m repro cache clean           # drop every cached artifact
    python -m repro bench                 # hot-path throughput benchmark
    python -m repro bench --quick         # fast CI smoke variant

Experiment-run options:

    --jobs/-j N        worker processes (default 1: serial in-process)
    --cache-dir PATH   persistent result cache (default: $REPRO_CACHE_DIR;
                       unset means an ephemeral per-run cache)
    --report PATH      write a JSON run report (per-task wall time, cache
                       hit/miss counts, retries)
    --task-timeout S   per-task timeout in seconds (default: none)
    --retries N        per-task retry budget before falling back to
                       in-process execution (default 2)

Scale with the ``REPRO_SCALE`` environment variable (see README).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.analysis.context import ExperimentContext
from repro.analysis.experiments import EXPERIMENTS, run_experiment


def _export_trace(arguments: list[str]) -> int:
    from repro.isa.serialize import save_trace
    from repro.kernels.registry import WORKLOAD_NAMES
    from repro.workloads.suite import WorkloadSuite

    if len(arguments) != 2:
        print("usage: python -m repro trace <workload> <out.npz>",
              file=sys.stderr)
        return 2
    name, path = arguments
    if name not in WORKLOAD_NAMES:
        print(f"unknown workload {name!r}; "
              f"available: {' '.join(WORKLOAD_NAMES)}", file=sys.stderr)
        return 2
    suite = WorkloadSuite()
    trace = suite.trace(name)
    save_trace(trace, path)
    mix = trace.mix()
    print(f"wrote {len(trace)} instructions of {name} to {path} "
          f"(ctrl {mix.control_fraction():.1%}, "
          f"loads {mix.load_fraction():.1%})")
    return 0


def _cache_command(arguments: list[str]) -> int:
    from repro.runtime.cache import ResultCache

    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect or clear the persistent result cache.",
    )
    parser.add_argument("action", choices=("stats", "clean"))
    parser.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR")
    )
    try:
        options = parser.parse_args(arguments)
    except SystemExit as exit_:
        return int(exit_.code or 0)
    if not options.cache_dir:
        print("no cache directory: pass --cache-dir or set REPRO_CACHE_DIR",
              file=sys.stderr)
        return 2
    cache = ResultCache(options.cache_dir)
    if options.action == "stats":
        stats = cache.stats()
        print(f"cache {cache.root}: {stats.results} simulation results, "
              f"{stats.runs} kernel runs, {stats.traces} traces, "
              f"{stats.total_bytes / 1e6:.1f} MB")
    else:
        removed = cache.clean()
        print(f"cache {cache.root}: removed {removed.entries} artifacts "
              f"({removed.total_bytes / 1e6:.1f} MB)")
    return 0


def _bench_command(arguments: list[str]) -> int:
    from repro.bench import (
        check_regression,
        format_report,
        run_bench,
        write_report,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Measure trace-generation, trace-load, and "
        "simulation throughput (best-of-N).",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller slice and fewer repetitions (CI smoke)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--baseline", default=None,
        help="compare against a stored report; exit non-zero on a "
        "regression beyond --fail-threshold",
    )
    parser.add_argument(
        "--fail-threshold", type=float, default=3.0,
        help="regression factor that fails the run (default 3.0)",
    )
    try:
        options = parser.parse_args(arguments)
    except SystemExit as exit_:
        return int(exit_.code or 0)

    report = run_bench(quick=options.quick)
    print(format_report(report))
    if options.out:
        write_report(report, options.out)
        print(f"wrote {options.out}")
    if options.baseline:
        with open(options.baseline, encoding="utf-8") as stream:
            baseline = json.load(stream)
        failures = check_regression(
            report, baseline, threshold=options.fail_threshold
        )
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"no regression beyond {options.fail_threshold:g}x "
              f"vs {options.baseline}")
    return 0


def _run_experiments(arguments: list[str]) -> int:
    from repro.runtime.engine import ExperimentRuntime

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run paper experiments (see `python -m repro list`).",
    )
    parser.add_argument("experiments", nargs="+")
    parser.add_argument("--jobs", "-j", type=int, default=1)
    parser.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR")
    )
    parser.add_argument("--report", default=None)
    parser.add_argument("--task-timeout", type=float, default=None)
    parser.add_argument("--retries", type=int, default=2)
    try:
        options = parser.parse_args(arguments)
    except SystemExit as exit_:
        return int(exit_.code or 0)

    unknown = [
        name for name in options.experiments if name not in EXPERIMENTS
    ]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {' '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    runtime = ExperimentRuntime(
        jobs=options.jobs,
        cache_dir=options.cache_dir,
        task_timeout=options.task_timeout,
        retries=options.retries,
    )
    context = ExperimentContext(runtime=runtime)
    try:
        for identifier in options.experiments:
            before = runtime.metrics.counts()
            start = time.perf_counter()
            _, report = run_experiment(identifier, context)
            elapsed = time.perf_counter() - start
            after = runtime.metrics.counts()
            hits = after["cache_hits"] - before["cache_hits"]
            misses = after["cache_misses"] - before["cache_misses"]
            print(report)
            print(f"[{identifier} completed in {elapsed:.1f}s | "
                  f"cache: {hits} hits, {misses} misses]\n")
        if options.report:
            runtime.metrics.write_report(
                options.report,
                jobs=runtime.jobs,
                cache_dir=options.cache_dir,
            )
    finally:
        runtime.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if not arguments or arguments[0] in {"-h", "--help"}:
        print(__doc__)
        return 0
    if arguments[0] == "list":
        for identifier in EXPERIMENTS:
            print(identifier)
        return 0
    if arguments[0] == "trace":
        return _export_trace(arguments[1:])
    if arguments[0] == "cache":
        return _cache_command(arguments[1:])
    if arguments[0] == "bench":
        return _bench_command(arguments[1:])
    return _run_experiments(arguments)


if __name__ == "__main__":
    raise SystemExit(main())
