"""Workload suite binding Table I applications to shared inputs."""

from repro.workloads.spec import TABLE1_WORKLOADS, WorkloadSpec, spec_of
from repro.workloads.suite import (
    DEFAULT_DATABASE,
    DEFAULT_TRACE_BUDGET,
    WorkloadSuite,
    scale_factor,
)

__all__ = [
    "TABLE1_WORKLOADS",
    "WorkloadSpec",
    "spec_of",
    "DEFAULT_DATABASE",
    "DEFAULT_TRACE_BUDGET",
    "WorkloadSuite",
    "scale_factor",
]
