"""The reproduction's standard workload suite.

Binds the five Table I kernels to a common synthetic database and the
paper's default query (Glutathione S-transferase stand-in, 222 aa), and
caches generated traces so the many experiment sweeps reuse them.

Scaling: the paper's traces are 7.7M-320M instructions, generated from
searches over SwissProt.  Pure-Python cycle simulation makes that
impractical, so each application is traced over the leading slice of
the shared database up to an instruction *budget* (default 300k,
multiplied by the ``REPRO_SCALE`` environment variable).  Table III
style size comparisons instead count instructions over one *common*
residue slice in count-only mode, exactly mirroring the paper's
"traces belong to the execution on the same sequences" methodology.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.bio.database import SequenceDatabase
from repro.bio.queries import default_query
from repro.bio.sequence import Sequence
from repro.bio.synthetic import SyntheticDatabaseConfig, generate_database
from repro.isa.trace import InstructionMix, Trace
from repro.kernels.base import KernelRun
from repro.kernels.registry import WORKLOAD_NAMES, create_kernel

#: Default per-application instruction budget for cycle-level traces.
DEFAULT_TRACE_BUDGET = 300_000
#: Default database shape (about 72k residues).
DEFAULT_DATABASE = SyntheticDatabaseConfig(
    sequence_count=200, family_count=8, family_size=4, seed=2006
)


def scale_factor() -> float:
    """Global experiment scale multiplier (``REPRO_SCALE`` env var)."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1"))
    except ValueError:
        return 1.0
    return max(value, 0.01)


@dataclass
class WorkloadSuite:
    """Shared query/database plus a trace cache for the five workloads."""

    database_config: SyntheticDatabaseConfig = DEFAULT_DATABASE
    trace_budget: int = DEFAULT_TRACE_BUDGET
    query: Sequence = field(default_factory=default_query)
    _database: SequenceDatabase | None = field(default=None, repr=False)
    _trace_cache: dict[tuple[str, int], KernelRun] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        self.trace_budget = max(1000, int(self.trace_budget * scale_factor()))

    @property
    def names(self) -> tuple[str, ...]:
        """Workload names in Table I order."""
        return WORKLOAD_NAMES

    @property
    def database(self) -> SequenceDatabase:
        """The shared synthetic database (built lazily)."""
        if self._database is None:
            self._database = generate_database(self.database_config)
        return self._database

    def cached_run(
        self, name: str, budget: int | None = None
    ) -> KernelRun | None:
        """In-process cached run for (name, budget), or None."""
        budget = self.trace_budget if budget is None else budget
        return self._trace_cache.get((name, budget))

    def install_run(
        self, name: str, run: KernelRun, budget: int | None = None
    ) -> None:
        """Install an externally produced run (e.g. from the runtime's
        parallel trace generation or its persistent cache)."""
        budget = self.trace_budget if budget is None else budget
        self._trace_cache[(name, budget)] = run

    def run(self, name: str, budget: int | None = None) -> KernelRun:
        """Traced run of one workload up to the instruction budget."""
        budget = self.trace_budget if budget is None else budget
        key = (name, budget)
        cached = self._trace_cache.get(key)
        if cached is None:
            kernel = create_kernel(name)
            cached = self._trace_cache[key] = kernel.run(
                self.query, self.database, record=True, limit=budget
            )
        return cached

    def trace(self, name: str, budget: int | None = None) -> Trace:
        """Trace of one workload (see :meth:`run`)."""
        trace = self.run(name, budget).trace
        assert trace is not None
        return trace

    def paired_traces(
        self, names: tuple[str, ...], budget: int | None = None
    ) -> dict[str, Trace]:
        """Traces over the *same database slice* for fair comparisons.

        The slice is chosen so the costliest workload stays within the
        budget; every other workload then traces the same sequences in
        full (Fig. 8's vmx128-vs-vmx256 speedups need equal work, not
        equal trace length).
        """
        budget = self.trace_budget if budget is None else budget
        slice_sizes = []
        for name in names:
            run = self.run(name, budget)
            slice_sizes.append(max(1, run.subjects_processed))
        subjects = max(1, min(slice_sizes))
        sliced = self.database.slice(subjects)
        traces = {}
        for name in names:
            kernel = create_kernel(name)
            run = kernel.run(self.query, sliced, record=True, limit=None)
            traces[name] = run.trace
        return traces

    def count_mix(self, name: str, residues: int) -> InstructionMix:
        """Count-only run over a common residue slice (Table III mode)."""
        subjects = 0
        total = 0
        for sequence in self.database:
            subjects += 1
            total += len(sequence)
            if total >= residues:
                break
        sliced = self.database.slice(max(subjects, 1))
        kernel = create_kernel(name)
        run = kernel.run(self.query, sliced, record=False, limit=None)
        return run.mix
