"""Table I workload descriptions."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of the paper's Table I."""

    name: str
    description: str
    input_parameters: str


#: The paper's Table I, verbatim descriptions.
TABLE1_WORKLOADS: tuple[WorkloadSpec, ...] = (
    WorkloadSpec(
        name="ssearch34",
        description=(
            "Best known scalar implementation of the SW algorithm; part of "
            "the SSEARCH program"
        ),
        input_parameters="-q -H -p -b 500 -d 0 -s BL62 -f 11 -g 1",
    ),
    WorkloadSpec(
        name="sw_vmx128",
        description=(
            "Data-parallel SSEARCH implementation using the Altivec SIMD "
            "extension (128-bit registers)"
        ),
        input_parameters="-q -H -p -b 500 -d 0 -s BL62 -f 11 -g 1",
    ),
    WorkloadSpec(
        name="sw_vmx256",
        description=(
            "Data-parallel SSEARCH implementation using a futuristic "
            "256-bit Altivec extension"
        ),
        input_parameters="-q -H -p -b 500 -d 0 -s BL62 -f 11 -g 1",
    ),
    WorkloadSpec(
        name="fasta34",
        description="FASTA program; heuristic strategies",
        input_parameters="-q -H -p -b 500 -d 0 -s BL62 -f 11 -g 1",
    ),
    WorkloadSpec(
        name="blast",
        description="NCBI BLAST program (blastp); heuristic strategies",
        input_parameters="blastp -d -G 10 -E 1 -b 0",
    ),
)


def spec_of(name: str) -> WorkloadSpec:
    """Look up a Table I row by workload name."""
    for spec in TABLE1_WORKLOADS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown workload {name!r}")
