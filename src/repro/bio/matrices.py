"""Amino-acid substitution matrices.

The paper's searches use the BLOSUM62 matrix (``-s BL62``).  BLOSUM50 and
PAM250 are included for completeness since the FASTA toolset ships with
them.  Matrices are stored row-major in the alphabet order of
:data:`repro.bio.alphabet.PROTEIN` and exposed through the
:class:`ScoringMatrix` wrapper, which provides fast integer-coded lookup
for the alignment kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bio.alphabet import PROTEIN, Alphabet

_BLOSUM62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1
-2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1
-1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1
 0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1
"""

_BLOSUM50_ROWS = """
 5 -2 -1 -2 -1 -1 -1  0 -2 -1 -2 -1 -1 -3 -1  1  0 -3 -2  0 -2 -1 -1
-2  7 -1 -2 -4  1  0 -3  0 -4 -3  3 -2 -3 -3 -1 -1 -3 -1 -3 -1  0 -1
-1 -1  7  2 -2  0  0  0  1 -3 -4  0 -2 -4 -2  1  0 -4 -2 -3  4  0 -1
-2 -2  2  8 -4  0  2 -1 -1 -4 -4 -1 -4 -5 -1  0 -1 -5 -3 -4  5  1 -1
-1 -4 -2 -4 13 -3 -3 -3 -3 -2 -2 -3 -2 -2 -4 -1 -1 -5 -3 -1 -3 -3 -2
-1  1  0  0 -3  7  2 -2  1 -3 -2  2  0 -4 -1  0 -1 -1 -1 -3  0  4 -1
-1  0  0  2 -3  2  6 -3  0 -4 -3  1 -2 -3 -1 -1 -1 -3 -2 -3  1  5 -1
 0 -3  0 -1 -3 -2 -3  8 -2 -4 -4 -2 -3 -4 -2  0 -2 -3 -3 -4 -1 -2 -2
-2  0  1 -1 -3  1  0 -2 10 -4 -3  0 -1 -1 -2 -1 -2 -3  2 -4  0  0 -1
-1 -4 -3 -4 -2 -3 -4 -4 -4  5  2 -3  2  0 -3 -3 -1 -3 -1  4 -4 -3 -1
-2 -3 -4 -4 -2 -2 -3 -4 -3  2  5 -3  3  1 -4 -3 -1 -2 -1  1 -4 -3 -1
-1  3  0 -1 -3  2  1 -2  0 -3 -3  6 -2 -4 -1  0 -1 -3 -2 -3  0  1 -1
-1 -2 -2 -4 -2  0 -2 -3 -1  2  3 -2  7  0 -3 -2 -1 -1  0  1 -3 -1 -1
-3 -3 -4 -5 -2 -4 -3 -4 -1  0  1 -4  0  8 -4 -3 -2  1  4 -1 -4 -4 -2
-1 -3 -2 -1 -4 -1 -1 -2 -2 -3 -4 -1 -3 -4 10 -1 -1 -4 -3 -3 -2 -1 -2
 1 -1  1  0 -1  0 -1  0 -1 -3 -3  0 -2 -3 -1  5  2 -4 -2 -2  0  0 -1
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  2  5 -3 -2  0  0 -1  0
-3 -3 -4 -5 -5 -1 -3 -3 -3 -3 -2 -3 -1  1 -4 -4 -3 15  2 -3 -5 -2 -3
-2 -1 -2 -3 -3 -1 -2 -3  2 -1 -1 -2  0  4 -3 -2 -2  2  8 -1 -3 -2 -1
 0 -3 -3 -4 -1 -3 -3 -4 -4  4  1 -3  1 -1 -3 -2  0 -3 -1  5 -4 -3 -1
-2 -1  4  5 -3  0  1 -1  0 -4 -4  0 -3 -4 -2  0  0 -5 -3 -4  5  2 -1
-1  0  0  1 -3  4  5 -2  0 -3 -3  1 -1 -4 -1  0 -1 -2 -2 -3  2  5 -1
-1 -1 -1 -1 -2 -1 -1 -2 -1 -1 -1 -1 -1 -2 -2 -1  0 -3 -1 -1 -1 -1 -1
"""

_PAM250_ROWS = """
 2 -2  0  0 -2  0  0  1 -1 -1 -2 -1 -1 -3  1  1  1 -6 -3  0  0  0  0
-2  6  0 -1 -4  1 -1 -3  2 -2 -3  3  0 -4  0  0 -1  2 -4 -2 -1  0 -1
 0  0  2  2 -4  1  1  0  2 -2 -3  1 -2 -3  0  1  0 -4 -2 -2  2  1  0
 0 -1  2  4 -5  2  3  1  1 -2 -4  0 -3 -6 -1  0  0 -7 -4 -2  3  3 -1
-2 -4 -4 -5 12 -5 -5 -3 -3 -2 -6 -5 -5 -4 -3  0 -2 -8  0 -2 -4 -5 -3
 0  1  1  2 -5  4  2 -1  3 -2 -2  1 -1 -5  0 -1 -1 -5 -4 -2  1  3 -1
 0 -1  1  3 -5  2  4  0  1 -2 -3  0 -2 -5 -1  0  0 -7 -4 -2  3  3 -1
 1 -3  0  1 -3 -1  0  5 -2 -3 -4 -2 -3 -5  0  1  0 -7 -5 -1  0  0 -1
-1  2  2  1 -3  3  1 -2  6 -2 -2  0 -2 -2  0 -1 -1 -3  0 -2  1  2 -1
-1 -2 -2 -2 -2 -2 -2 -3 -2  5  2 -2  2  1 -2 -1  0 -5 -1  4 -2 -2 -1
-2 -3 -3 -4 -6 -2 -3 -4 -2  2  6 -3  4  2 -3 -3 -2 -2 -1  2 -3 -3 -1
-1  3  1  0 -5  1  0 -2  0 -2 -3  5  0 -5 -1  0  0 -3 -4 -2  1  0 -1
-1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6  0 -2 -2 -1 -4 -2  2 -2 -2 -1
-3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9 -5 -3 -3  0  7 -1 -4 -5 -2
 1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6  1  0 -6 -5 -1 -1  0 -1
 1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2  1 -2 -3 -1  0  0  0
 1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3 -5 -3  0  0 -1  0
-6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17  0 -6 -5 -6 -4
-3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10 -2 -3 -4 -2
 0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4 -2 -2 -1
 0 -1  2  3 -4  1  3  0  1 -2 -3  1 -2 -4 -1  0  0 -5 -3 -2  3  2 -1
 0  0  1  3 -5  3  3  0  2 -2 -3  0 -2 -5  0  0 -1 -6 -4 -2  2  3 -1
 0 -1  0 -1 -3 -1 -1 -1 -1 -1 -1 -1 -1 -2 -1  0  0 -4 -2 -1 -1 -1 -1
"""


def _parse_rows(raw: str, size: int) -> tuple[tuple[int, ...], ...]:
    rows = []
    for line in raw.strip().splitlines():
        values = tuple(int(token) for token in line.split())
        if len(values) != size:
            raise ValueError(f"expected {size} columns, got {len(values)}")
        rows.append(values)
    if len(rows) != size:
        raise ValueError(f"expected {size} rows, got {len(rows)}")
    return tuple(rows)


@dataclass(frozen=True)
class ScoringMatrix:
    """A residue substitution matrix over an alphabet.

    Scores are indexed by integer residue codes:
    ``matrix.score(a_code, b_code)``.  The flattened row-major tuple is
    also exposed for kernels that index it directly (mirroring how the
    native tools access the matrix as a flat C array).
    """

    name: str
    alphabet: Alphabet
    rows: tuple[tuple[int, ...], ...]
    flat: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        size = self.alphabet.size
        if len(self.rows) != size or any(len(row) != size for row in self.rows):
            raise ValueError(f"matrix {self.name} is not {size}x{size}")
        flat = tuple(value for row in self.rows for value in row)
        object.__setattr__(self, "flat", flat)

    @property
    def size(self) -> int:
        """Matrix dimension (== alphabet size)."""
        return self.alphabet.size

    def score(self, a_code: int, b_code: int) -> int:
        """Substitution score for two integer residue codes."""
        return self.rows[a_code][b_code]

    def score_symbols(self, a: str, b: str) -> int:
        """Substitution score for two residue letters."""
        return self.score(self.alphabet.code_of(a), self.alphabet.code_of(b))

    def row(self, a_code: int) -> tuple[int, ...]:
        """Full scoring row for one residue (used to build query profiles)."""
        return self.rows[a_code]

    def max_score(self) -> int:
        """Largest score in the matrix (best possible per-residue match)."""
        return max(self.flat)

    def min_score(self) -> int:
        """Smallest score in the matrix."""
        return min(self.flat)

    def is_symmetric(self) -> bool:
        """True when score(a, b) == score(b, a) for all residue pairs."""
        size = self.size
        return all(
            self.rows[i][j] == self.rows[j][i]
            for i in range(size)
            for j in range(i + 1, size)
        )


BLOSUM62 = ScoringMatrix(
    name="BLOSUM62", alphabet=PROTEIN, rows=_parse_rows(_BLOSUM62_ROWS, PROTEIN.size)
)
BLOSUM50 = ScoringMatrix(
    name="BLOSUM50", alphabet=PROTEIN, rows=_parse_rows(_BLOSUM50_ROWS, PROTEIN.size)
)
PAM250 = ScoringMatrix(
    name="PAM250", alphabet=PROTEIN, rows=_parse_rows(_PAM250_ROWS, PROTEIN.size)
)

MATRICES: dict[str, ScoringMatrix] = {
    "BLOSUM62": BLOSUM62,
    "BL62": BLOSUM62,
    "BLOSUM50": BLOSUM50,
    "BL50": BLOSUM50,
    "PAM250": PAM250,
}


def get_matrix(name: str) -> ScoringMatrix:
    """Look up a matrix by name (accepts FASTA-style aliases like BL62)."""
    try:
        return MATRICES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; available: {sorted(set(MATRICES))}"
        ) from None
