"""Biology substrate: alphabets, sequences, matrices, databases."""

from repro.bio.alphabet import DNA, PROTEIN, Alphabet, AlphabetError
from repro.bio.database import DatabaseStats, SequenceDatabase
from repro.bio.fasta_io import (
    FastaFormatError,
    format_fasta,
    parse_fasta,
    parse_fasta_text,
    read_fasta,
    write_fasta,
)
from repro.bio.complexity import (
    MaskedRegion,
    find_low_complexity,
    mask_sequence,
    masked_fraction,
    window_entropy,
)
from repro.bio.packed import (
    PackedSequence,
    pack_dna,
    unpack_base,
    unpack_dna,
)
from repro.bio.matrices import BLOSUM50, BLOSUM62, PAM250, ScoringMatrix, get_matrix
from repro.bio.queries import (
    DEFAULT_QUERY_ACCESSION,
    TABLE2_QUERIES,
    QueryDescriptor,
    all_queries,
    default_query,
    make_query,
    query_by_accession,
)
from repro.bio.sequence import Sequence, as_sequence
from repro.bio.synthetic import (
    SWISSPROT_COMPOSITION,
    MutationModel,
    SyntheticDatabaseConfig,
    generate_database,
    homolog_of,
    random_dna,
    random_length,
    random_protein,
)

__all__ = [
    "DNA",
    "PROTEIN",
    "Alphabet",
    "AlphabetError",
    "DatabaseStats",
    "SequenceDatabase",
    "FastaFormatError",
    "format_fasta",
    "parse_fasta",
    "parse_fasta_text",
    "read_fasta",
    "write_fasta",
    "MaskedRegion",
    "find_low_complexity",
    "mask_sequence",
    "masked_fraction",
    "window_entropy",
    "PackedSequence",
    "pack_dna",
    "unpack_base",
    "unpack_dna",
    "BLOSUM50",
    "BLOSUM62",
    "PAM250",
    "ScoringMatrix",
    "get_matrix",
    "DEFAULT_QUERY_ACCESSION",
    "TABLE2_QUERIES",
    "QueryDescriptor",
    "all_queries",
    "default_query",
    "make_query",
    "query_by_accession",
    "Sequence",
    "as_sequence",
    "SWISSPROT_COMPOSITION",
    "MutationModel",
    "SyntheticDatabaseConfig",
    "generate_database",
    "homolog_of",
    "random_dna",
    "random_length",
    "random_protein",
]
