"""2-bit packed nucleotide sequences (NCBI ``.nsq`` style).

Paper listing 1 is BLAST's nucleotide word finder unpacking a
compressed database (``READDB_UNPACK_BASE_4(p)`` pulls one base out of
a byte holding four).  This module implements that storage format: DNA
is packed four bases per byte, most-significant base first, and the
unpack helpers mirror the macros in the listing.

Ambiguous bases (``N``) cannot be represented in 2 bits; like NCBI's
format, the packed stream stores them as ``A`` and callers that care
keep a side list of ambiguous positions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.alphabet import DNA
from repro.bio.sequence import Sequence

#: Bases per packed byte.
BASES_PER_BYTE = 4

#: 2-bit code per base (ambiguity packs as A, recorded separately).
_PACK_CODE = {"A": 0, "C": 1, "G": 2, "T": 3, "N": 0}
_UNPACK_BASE = "ACGT"


def pack_dna(text: str) -> tuple[bytes, tuple[int, ...]]:
    """Pack a DNA string into 2-bit bytes.

    Returns ``(packed, ambiguous_positions)``; the final byte is
    zero-padded when the length is not a multiple of four.
    """
    data = bytearray((len(text) + BASES_PER_BYTE - 1) // BASES_PER_BYTE)
    ambiguous = []
    for position, base in enumerate(text.upper()):
        try:
            code = _PACK_CODE[base]
        except KeyError:
            raise ValueError(f"cannot pack symbol {base!r}") from None
        if base == "N":
            ambiguous.append(position)
        byte_index, offset = divmod(position, BASES_PER_BYTE)
        data[byte_index] |= code << (6 - 2 * offset)
    return bytes(data), tuple(ambiguous)


def unpack_base(byte: int, slot: int) -> str:
    """READDB_UNPACK_BASE_{4-slot}: extract one base from a packed byte.

    ``slot`` counts from 0 (most significant pair) to 3.
    """
    if not 0 <= slot < BASES_PER_BYTE:
        raise ValueError(f"slot {slot} out of range")
    return _UNPACK_BASE[(byte >> (6 - 2 * slot)) & 0b11]


def unpack_dna(packed: bytes, length: int,
               ambiguous: tuple[int, ...] = ()) -> str:
    """Unpack ``length`` bases, restoring ``N`` at ambiguous positions."""
    if length > len(packed) * BASES_PER_BYTE:
        raise ValueError("length exceeds packed data")
    bases = []
    for position in range(length):
        byte_index, slot = divmod(position, BASES_PER_BYTE)
        bases.append(unpack_base(packed[byte_index], slot))
    for position in ambiguous:
        if position < length:
            bases[position] = "N"
    return "".join(bases)


@dataclass(frozen=True)
class PackedSequence:
    """One nucleotide sequence in packed form."""

    identifier: str
    packed: bytes
    length: int
    ambiguous: tuple[int, ...] = ()

    @classmethod
    def from_sequence(cls, sequence: Sequence) -> "PackedSequence":
        """Pack a DNA :class:`~repro.bio.sequence.Sequence`."""
        if sequence.alphabet is not DNA:
            raise ValueError("only DNA sequences can be packed")
        packed, ambiguous = pack_dna(sequence.text)
        return cls(
            identifier=sequence.identifier,
            packed=packed,
            length=len(sequence),
            ambiguous=ambiguous,
        )

    def unpack(self) -> Sequence:
        """Restore the uncompressed sequence."""
        return Sequence(
            identifier=self.identifier,
            text=unpack_dna(self.packed, self.length, self.ambiguous),
            alphabet=DNA,
        )

    def base_at(self, position: int) -> str:
        """Random access to one base (``N``-aware)."""
        if not 0 <= position < self.length:
            raise IndexError(position)
        if position in self.ambiguous:
            return "N"
        byte_index, slot = divmod(position, BASES_PER_BYTE)
        return unpack_base(self.packed[byte_index], slot)

    @property
    def packed_bytes(self) -> int:
        """Size of the packed representation."""
        return len(self.packed)
