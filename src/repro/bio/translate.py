"""DNA translation: codon table and six-frame translation.

Substrate for translated searches (blastx-style): a DNA query is
translated in all six reading frames (three offsets on each strand)
and each frame is searched as a protein.  The codon table is the
standard genetic code; stop codons translate to ``*`` which callers
treat as segment breaks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.alphabet import DNA, PROTEIN
from repro.bio.sequence import Sequence

#: Stop-codon symbol.
STOP = "*"

_BASES = "TCAG"

#: The standard genetic code, one amino acid per codon in TCAG order.
CODON_TABLE: dict[str, str] = {}
_STANDARD_CODE = (
    "FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG"
)
_index = 0
for _first in _BASES:
    for _second in _BASES:
        for _third in _BASES:
            CODON_TABLE[_first + _second + _third] = _STANDARD_CODE[_index]
            _index += 1

_COMPLEMENT = {"A": "T", "T": "A", "C": "G", "G": "C", "N": "N"}


def reverse_complement(text: str) -> str:
    """Reverse-complement a DNA string."""
    try:
        return "".join(_COMPLEMENT[base] for base in reversed(text.upper()))
    except KeyError as error:
        raise ValueError(f"not a DNA symbol: {error.args[0]!r}") from None


def translate(text: str, frame: int = 0) -> str:
    """Translate one reading frame (0-2) of a DNA string.

    Codons containing ``N`` translate to the protein wildcard ``X``;
    stop codons become ``*``.
    """
    if not 0 <= frame <= 2:
        raise ValueError("frame must be 0, 1, or 2")
    text = text.upper()
    out = []
    for start in range(frame, len(text) - 2, 3):
        codon = text[start : start + 3]
        if "N" in codon:
            out.append(PROTEIN.wildcard)
        else:
            out.append(CODON_TABLE[codon])
    return "".join(out)


@dataclass(frozen=True)
class TranslatedFrame:
    """One of the six reading frames of a DNA sequence."""

    frame: int          # 1..3 forward, -1..-3 reverse
    protein: Sequence

    @property
    def is_reverse(self) -> bool:
        """True for frames on the reverse strand."""
        return self.frame < 0


def six_frame_translation(sequence: Sequence) -> list[TranslatedFrame]:
    """All six reading frames of a DNA sequence, as protein sequences.

    Stop codons are kept as ``X`` wildcards in the protein encoding so
    downstream protein engines can consume the frames directly (they
    skip wildcards in word tables); the raw ``*`` positions remain
    visible in the frame's text.
    """
    if sequence.alphabet is not DNA:
        raise ValueError("six-frame translation needs a DNA sequence")
    frames = []
    for strand_sign, text in (
        (1, sequence.text),
        (-1, reverse_complement(sequence.text)),
    ):
        for offset in range(3):
            protein_text = translate(text, offset).replace(STOP, "X")
            frames.append(
                TranslatedFrame(
                    frame=strand_sign * (offset + 1),
                    protein=Sequence(
                        identifier=(
                            f"{sequence.identifier}|frame"
                            f"{strand_sign * (offset + 1):+d}"
                        ),
                        text=protein_text,
                    ),
                )
            )
    return frames
