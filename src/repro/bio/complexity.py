"""Low-complexity region filtering (a SEG-style masker).

Real BLAST runs the SEG algorithm over the query before building its
lookup table: low-complexity segments (acidic runs, proline stretches,
coiled-coil repeats) would otherwise flood the word finder with
biologically meaningless hits.  This module implements the same idea
with SEG's sliding-window compositional complexity measure:

* ``K2``, the Shannon entropy of the residue composition inside a
  window, in bits per residue;
* windows whose entropy falls below a trigger threshold seed candidate
  segments, which grow while the entropy stays below the extension
  threshold;
* masked positions are replaced with the wildcard ``X`` so they enter
  neither BLAST's neighborhood table nor FASTA's k-tuple index.

Thresholds follow SEG's defaults in spirit (window 12, trigger 2.2,
extension 2.5 bits) scaled to the protein alphabet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bio.sequence import Sequence

#: SEG-style defaults.
DEFAULT_WINDOW = 12
DEFAULT_TRIGGER = 2.2
DEFAULT_EXTENSION = 2.5


def window_entropy(text: str) -> float:
    """Shannon entropy (bits/residue) of a residue window's composition."""
    if not text:
        return 0.0
    counts: dict[str, int] = {}
    for symbol in text:
        counts[symbol] = counts.get(symbol, 0) + 1
    total = len(text)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


@dataclass(frozen=True)
class MaskedRegion:
    """One low-complexity segment (half-open interval)."""

    start: int
    end: int

    @property
    def length(self) -> int:
        """Residues masked."""
        return self.end - self.start


def find_low_complexity(
    text: str,
    window: int = DEFAULT_WINDOW,
    trigger: float = DEFAULT_TRIGGER,
    extension: float = DEFAULT_EXTENSION,
) -> list[MaskedRegion]:
    """Locate low-complexity segments with the two-threshold scheme.

    A window with entropy < ``trigger`` seeds a segment; the segment
    extends over every neighbouring window with entropy < ``extension``;
    overlapping segments merge.
    """
    if window < 2:
        raise ValueError("window must cover at least 2 residues")
    if trigger > extension:
        raise ValueError("trigger threshold must not exceed extension")
    n = len(text)
    if n < window:
        return []

    entropies = [
        window_entropy(text[i : i + window]) for i in range(n - window + 1)
    ]
    regions: list[MaskedRegion] = []
    i = 0
    while i < len(entropies):
        if entropies[i] >= trigger:
            i += 1
            continue
        # Seed found: extend left and right under the looser threshold.
        left = i
        while left > 0 and entropies[left - 1] < extension:
            left -= 1
        right = i
        while right + 1 < len(entropies) and entropies[right + 1] < extension:
            right += 1
        start = left
        end = right + window
        if regions and start <= regions[-1].end:
            regions[-1] = MaskedRegion(regions[-1].start, max(end, regions[-1].end))
        else:
            regions.append(MaskedRegion(start, end))
        i = right + 1
    return regions


def mask_sequence(
    sequence: Sequence,
    window: int = DEFAULT_WINDOW,
    trigger: float = DEFAULT_TRIGGER,
    extension: float = DEFAULT_EXTENSION,
) -> Sequence:
    """Return a copy with low-complexity residues replaced by ``X``."""
    regions = find_low_complexity(
        sequence.text, window=window, trigger=trigger, extension=extension
    )
    if not regions:
        return sequence
    chars = list(sequence.text)
    for region in regions:
        for position in range(region.start, region.end):
            chars[position] = sequence.alphabet.wildcard
    return Sequence(
        identifier=sequence.identifier,
        text="".join(chars),
        description=sequence.description,
        alphabet=sequence.alphabet,
    )


def masked_fraction(sequence: Sequence, **kwargs) -> float:
    """Fraction of residues that SEG would mask."""
    if not len(sequence):
        return 0.0
    regions = find_low_complexity(sequence.text, **kwargs)
    return sum(region.length for region in regions) / len(sequence)
