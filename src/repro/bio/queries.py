"""The paper's query set (Table II), as synthetic stand-ins.

The paper's text says 11 query sequences were used, but its Table II
prints 10 rows (143-567 residues); we reproduce the 10 printed rows.
The real sequences are not
redistributable here, so each query is a deterministic synthetic protein
of the documented length, generated with the SwissProt background
composition.  What the characterization depends on — query length and
realistic residue composition — is preserved; the paper's headline
results use Glutathione S-transferase (P14942, 222 aa), which is the
default query throughout this package.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bio.sequence import Sequence
from repro.bio.synthetic import random_protein


@dataclass(frozen=True)
class QueryDescriptor:
    """One row of Table II."""

    family: str
    accession: str
    length: int


#: Table II, in paper order (the 10 rows the paper prints).
TABLE2_QUERIES: tuple[QueryDescriptor, ...] = (
    QueryDescriptor("Globin", "P02232", 143),
    QueryDescriptor("Ras", "P01111", 189),
    QueryDescriptor("Glutathione S-transferase", "P14942", 222),
    QueryDescriptor("Serine Protease", "P00762", 246),
    QueryDescriptor("Histocompatibility antigen", "P10318", 362),
    QueryDescriptor("Alcohol dehydrogenase", "P07327", 375),
    QueryDescriptor("Serine Protease inhibitor", "P01008", 464),
    QueryDescriptor("Cytochrome P450", "P10635", 497),
    QueryDescriptor("H+-transporting ATP synthase", "P25705", 553),
    QueryDescriptor("Hemaglutinin", "P03435", 567),
)

#: Accession of the query used for all figures in the paper.
DEFAULT_QUERY_ACCESSION = "P14942"


def make_query(descriptor: QueryDescriptor) -> Sequence:
    """Build the synthetic stand-in sequence for a Table II query.

    The random stream is seeded from the accession so every call returns
    the same residues.
    """
    seed = sum(ord(char) * (index + 1) for index, char in enumerate(descriptor.accession))
    rng = random.Random(seed)
    return Sequence(
        identifier=descriptor.accession,
        text=random_protein(descriptor.length, rng),
        description=f"synthetic stand-in for {descriptor.family}",
    )


def query_by_accession(accession: str) -> Sequence:
    """Return the synthetic query for a Table II accession."""
    for descriptor in TABLE2_QUERIES:
        if descriptor.accession == accession:
            return make_query(descriptor)
    raise KeyError(f"accession {accession!r} is not in Table II")


def default_query() -> Sequence:
    """The Glutathione S-transferase stand-in used by the paper's figures."""
    return query_by_accession(DEFAULT_QUERY_ACCESSION)


def all_queries() -> list[Sequence]:
    """All Table II stand-ins, in paper order."""
    return [make_query(descriptor) for descriptor in TABLE2_QUERIES]
