"""Sequence database container.

Stands in for the SwissProt flat-file database that the paper's searches
scan.  The container tracks the aggregate statistics the tools report
(sequence count, residue count, composition) and provides the ordered
iteration that the search drivers and traced kernels consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence as TypingSequence

from repro.bio.alphabet import PROTEIN, Alphabet
from repro.bio.fasta_io import read_fasta, write_fasta
from repro.bio.sequence import Sequence


@dataclass(frozen=True)
class DatabaseStats:
    """Aggregate statistics of a database (what SSEARCH prints on exit)."""

    sequence_count: int
    residue_count: int
    shortest: int
    longest: int

    @property
    def mean_length(self) -> float:
        """Average sequence length in residues."""
        if self.sequence_count == 0:
            return 0.0
        return self.residue_count / self.sequence_count


class SequenceDatabase:
    """An ordered, indexable collection of sequences.

    The ordering matters: the paper traces the execution of each tool on
    "the same sequences of the database", so all kernels iterate the
    database in insertion order and slicing is deterministic.
    """

    def __init__(
        self,
        sequences: TypingSequence[Sequence] = (),
        name: str = "database",
        alphabet: Alphabet = PROTEIN,
    ) -> None:
        self.name = name
        self.alphabet = alphabet
        self._sequences: list[Sequence] = []
        self._by_id: dict[str, int] = {}
        for sequence in sequences:
            self.add(sequence)

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[Sequence]:
        return iter(self._sequences)

    def __getitem__(self, index: int) -> Sequence:
        return self._sequences[index]

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._by_id

    def add(self, sequence: Sequence) -> None:
        """Append a sequence; identifiers must be unique."""
        if sequence.identifier in self._by_id:
            raise ValueError(f"duplicate identifier {sequence.identifier!r}")
        if sequence.alphabet is not self.alphabet:
            raise ValueError(
                f"sequence {sequence.identifier!r} uses alphabet "
                f"{sequence.alphabet.name!r}, database uses {self.alphabet.name!r}"
            )
        self._by_id[sequence.identifier] = len(self._sequences)
        self._sequences.append(sequence)

    def get(self, identifier: str) -> Sequence:
        """Look a sequence up by identifier."""
        try:
            return self._sequences[self._by_id[identifier]]
        except KeyError:
            raise KeyError(f"no sequence {identifier!r} in {self.name}") from None

    def slice(self, count: int, name: str | None = None) -> "SequenceDatabase":
        """Return a database holding the first ``count`` sequences.

        Used to build scaled trace inputs: every application is traced
        over the same leading slice, as in the paper's methodology.
        """
        return SequenceDatabase(
            self._sequences[:count],
            name=name or f"{self.name}[:{count}]",
            alphabet=self.alphabet,
        )

    def shard_bounds(self, shard_count: int) -> tuple[tuple[int, int], ...]:
        """Deterministic contiguous ``(start, stop)`` ranges for sharding.

        Shard sizes differ by at most one sequence and concatenating the
        shards in index order reproduces the database exactly, which is
        what lets a sharded scan merge back to the unsharded ranking
        byte-for-byte (hits carry global subject indices).
        """
        if shard_count < 1:
            raise ValueError("shard_count must be positive")
        total = len(self._sequences)
        return tuple(
            (index * total // shard_count, (index + 1) * total // shard_count)
            for index in range(shard_count)
        )

    def shard(
        self, shard_index: int, shard_count: int, name: str | None = None
    ) -> "SequenceDatabase":
        """One contiguous shard (see :meth:`shard_bounds`)."""
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard_index {shard_index} out of range for "
                f"{shard_count} shards"
            )
        start, stop = self.shard_bounds(shard_count)[shard_index]
        return SequenceDatabase(
            self._sequences[start:stop],
            name=name or f"{self.name}[shard {shard_index}/{shard_count}]",
            alphabet=self.alphabet,
        )

    def stats(self) -> DatabaseStats:
        """Compute aggregate statistics."""
        lengths = [len(sequence) for sequence in self._sequences]
        return DatabaseStats(
            sequence_count=len(lengths),
            residue_count=sum(lengths),
            shortest=min(lengths) if lengths else 0,
            longest=max(lengths) if lengths else 0,
        )

    @property
    def residue_count(self) -> int:
        """Total residues across all sequences."""
        return sum(len(sequence) for sequence in self._sequences)

    @classmethod
    def from_fasta(
        cls, path: str | Path, name: str | None = None, alphabet: Alphabet = PROTEIN
    ) -> "SequenceDatabase":
        """Load a database from a FASTA file."""
        sequences = read_fasta(path, alphabet=alphabet)
        return cls(sequences, name=name or str(path), alphabet=alphabet)

    def to_fasta(self, path: str | Path) -> None:
        """Write the database to a FASTA file."""
        write_fasta(self._sequences, path)
