"""Residue alphabets and integer encodings.

Every alignment kernel in this package works on integer-encoded sequences:
each residue is mapped to a small integer index into the scoring matrix.
This module defines the canonical amino-acid and nucleotide alphabets and
the encode/decode helpers shared by the whole library.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class AlphabetError(ValueError):
    """Raised when a sequence contains symbols outside its alphabet."""


@dataclass(frozen=True)
class Alphabet:
    """An ordered residue alphabet with integer encoding.

    Parameters
    ----------
    name:
        Human-readable alphabet name (``"protein"``, ``"dna"``).
    symbols:
        Ordered string of canonical residue letters.  The position of a
        letter is its integer code.
    wildcard:
        Symbol used for unknown residues (``X`` for proteins, ``N`` for
        nucleotides).  It must be present in ``symbols``.
    """

    name: str
    symbols: str
    wildcard: str
    _index: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.symbols)) != len(self.symbols):
            raise ValueError(f"duplicate symbols in alphabet {self.name!r}")
        if self.wildcard not in self.symbols:
            raise ValueError(
                f"wildcard {self.wildcard!r} missing from alphabet {self.name!r}"
            )
        index = {symbol: code for code, symbol in enumerate(self.symbols)}
        object.__setattr__(self, "_index", index)

    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol.upper() in self._index

    @property
    def size(self) -> int:
        """Number of symbols in the alphabet (including the wildcard)."""
        return len(self.symbols)

    @property
    def wildcard_code(self) -> int:
        """Integer code of the wildcard symbol."""
        return self._index[self.wildcard]

    def code_of(self, symbol: str) -> int:
        """Return the integer code of a single residue letter.

        Unknown letters map to the wildcard code only if ``symbol`` is an
        ASCII letter; anything else raises :class:`AlphabetError`.
        """
        symbol = symbol.upper()
        code = self._index.get(symbol)
        if code is not None:
            return code
        if symbol.isalpha() and len(symbol) == 1:
            return self.wildcard_code
        raise AlphabetError(f"symbol {symbol!r} is not valid in {self.name}")

    def symbol_of(self, code: int) -> str:
        """Return the residue letter for an integer code."""
        if not 0 <= code < len(self.symbols):
            raise AlphabetError(f"code {code} out of range for {self.name}")
        return self.symbols[code]

    def encode(self, text: str) -> list[int]:
        """Encode a residue string into a list of integer codes."""
        return [self.code_of(symbol) for symbol in text]

    def decode(self, codes: list[int]) -> str:
        """Decode a list of integer codes back into a residue string."""
        return "".join(self.symbol_of(code) for code in codes)


#: The 20 standard amino acids in the conventional scoring-matrix order,
#: followed by the ambiguity codes B (Asx), Z (Glx), and the X wildcard.
PROTEIN = Alphabet(
    name="protein",
    symbols="ARNDCQEGHILKMFPSTWYVBZX",
    wildcard="X",
)

#: The four DNA bases plus the N wildcard.
DNA = Alphabet(name="dna", symbols="ACGTN", wildcard="N")

#: Number of unambiguous amino acids (used by k-mer word indexing).
STANDARD_AMINO_ACIDS = 20
