"""Deterministic synthetic protein data generation.

The paper searches the SwissProt database (62.6M residues, 172K
sequences) with 11 real query proteins.  Neither is redistributable here,
so this module builds a scaled synthetic stand-in:

* residues are drawn from the SwissProt background amino-acid
  composition, so scoring statistics (expected score per aligned pair,
  word-hit rates in BLAST/FASTA) match real searches;
* sequence lengths follow SwissProt's right-skewed length distribution;
* a configurable fraction of the database belongs to planted homolog
  *families* derived from common ancestors by substitution/indel
  mutation, so searches find genuinely related sequences (exercising the
  extension stages of BLAST/FASTA and the high-score paths of SW).

Everything is driven by :class:`random.Random` with explicit seeds, so a
given configuration always produces byte-identical databases.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.bio.alphabet import PROTEIN
from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence

#: SwissProt background amino-acid frequencies (release-era values), in
#: the PROTEIN alphabet order A R N D C Q E G H I L K M F P S T W Y V.
SWISSPROT_COMPOSITION: dict[str, float] = {
    "A": 0.0826, "R": 0.0553, "N": 0.0406, "D": 0.0546, "C": 0.0137,
    "Q": 0.0393, "E": 0.0674, "G": 0.0708, "H": 0.0227, "I": 0.0593,
    "L": 0.0965, "K": 0.0582, "M": 0.0241, "F": 0.0386, "P": 0.0472,
    "S": 0.0660, "T": 0.0535, "W": 0.0110, "Y": 0.0292, "V": 0.0687,
}

_RESIDUES = "".join(SWISSPROT_COMPOSITION)
_WEIGHTS = list(SWISSPROT_COMPOSITION.values())


def random_protein(length: int, rng: random.Random) -> str:
    """Draw a protein string with SwissProt background composition."""
    if length < 0:
        raise ValueError("length must be non-negative")
    return "".join(rng.choices(_RESIDUES, weights=_WEIGHTS, k=length))


def random_dna(length: int, rng: random.Random, gc_content: float = 0.42) -> str:
    """Draw a DNA string with the given GC content (genomic default ~42%)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError("gc_content must be a fraction")
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    return "".join(
        rng.choices("ACGT", weights=(at, gc, gc, at), k=length)
    )


def random_length(rng: random.Random, mean: float = 360.0, sigma: float = 0.55,
                  minimum: int = 40, maximum: int = 2000) -> int:
    """Draw a sequence length from a clamped log-normal distribution.

    Defaults approximate the SwissProt length distribution (mean ~360,
    heavy right tail).
    """
    mu = math.log(mean) - sigma * sigma / 2.0
    length = int(round(rng.lognormvariate(mu, sigma)))
    return max(minimum, min(maximum, length))


@dataclass(frozen=True)
class MutationModel:
    """Point-substitution + indel mutation process for homolog families.

    Parameters
    ----------
    substitution_rate:
        Per-residue probability of replacing the residue with a random
        background draw.
    indel_rate:
        Per-residue probability of starting an insertion or deletion.
    mean_indel_length:
        Geometric mean length of each indel event (gives the affine-gap
        structure the aligners are built for).
    """

    substitution_rate: float = 0.30
    indel_rate: float = 0.02
    mean_indel_length: float = 2.0

    def mutate(self, text: str, rng: random.Random) -> str:
        """Apply the mutation process to a residue string."""
        out: list[str] = []
        continue_prob = 1.0 - 1.0 / max(self.mean_indel_length, 1.0)
        i = 0
        n = len(text)
        while i < n:
            roll = rng.random()
            if roll < self.indel_rate / 2.0:
                # Deletion: skip a geometric-length run of residues.
                run = 1
                while rng.random() < continue_prob:
                    run += 1
                i += run
                continue
            if roll < self.indel_rate:
                # Insertion: emit a geometric-length run of random residues.
                run = 1
                while rng.random() < continue_prob:
                    run += 1
                out.append(random_protein(run, rng))
                # The current residue is handled on the next iteration.
                continue
            if rng.random() < self.substitution_rate:
                out.append(rng.choices(_RESIDUES, weights=_WEIGHTS, k=1)[0])
            else:
                out.append(text[i])
            i += 1
        return "".join(out)


@dataclass(frozen=True)
class SyntheticDatabaseConfig:
    """Configuration of a synthetic SwissProt-like database."""

    sequence_count: int = 200
    seed: int = 2006
    mean_length: float = 360.0
    family_count: int = 8
    family_size: int = 5
    mutation: MutationModel = MutationModel()
    name: str = "synthetic-swissprot"

    def __post_init__(self) -> None:
        if self.sequence_count < 0:
            raise ValueError("sequence_count must be non-negative")
        if self.family_count * self.family_size > self.sequence_count:
            raise ValueError("families cannot exceed the database size")


def generate_database(config: SyntheticDatabaseConfig) -> SequenceDatabase:
    """Generate a deterministic synthetic protein database.

    Family members are interleaved with unrelated sequences in a
    deterministic shuffle, mirroring how homologs are scattered through
    a real database scan.
    """
    rng = random.Random(config.seed)
    records: list[tuple[str, str, str]] = []

    for family_index in range(config.family_count):
        ancestor = random_protein(
            random_length(rng, mean=config.mean_length), rng
        )
        for member_index in range(config.family_size):
            text = config.mutation.mutate(ancestor, rng)
            records.append(
                (
                    f"FAM{family_index:03d}_{member_index:02d}",
                    text,
                    f"synthetic family {family_index} member {member_index}",
                )
            )

    unrelated = config.sequence_count - len(records)
    for index in range(unrelated):
        text = random_protein(random_length(rng, mean=config.mean_length), rng)
        records.append((f"RND{index:05d}", text, "synthetic background"))

    rng.shuffle(records)
    database = SequenceDatabase(name=config.name, alphabet=PROTEIN)
    for identifier, text, description in records:
        database.add(
            Sequence(identifier=identifier, text=text, description=description)
        )
    return database


def homolog_of(sequence: Sequence, seed: int,
               mutation: MutationModel = MutationModel()) -> Sequence:
    """Create a mutated homolog of ``sequence`` (used to plant true hits)."""
    rng = random.Random(seed)
    return Sequence(
        identifier=f"{sequence.identifier}_hom{seed}",
        text=mutation.mutate(sequence.text, rng),
        description=f"homolog of {sequence.identifier}",
        alphabet=sequence.alphabet,
    )
