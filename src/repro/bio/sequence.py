"""Sequence value type used throughout the library.

A :class:`Sequence` pairs an identifier and description with an
integer-encoded residue string.  Kernels operate on the ``codes`` list
directly; user-facing APIs accept either ``Sequence`` objects or plain
strings and normalize them with :func:`as_sequence`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bio.alphabet import PROTEIN, Alphabet


@dataclass(frozen=True)
class Sequence:
    """An immutable biological sequence.

    Parameters
    ----------
    identifier:
        Accession-style identifier (e.g. ``"P14942"``).
    text:
        Residue letters.  Stored upper-cased; also encoded once into
        ``codes`` at construction time.
    description:
        Optional free-form description line.
    alphabet:
        Alphabet used for encoding; defaults to the protein alphabet.
    """

    identifier: str
    text: str
    description: str = ""
    alphabet: Alphabet = PROTEIN
    codes: tuple[int, ...] = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        normalized = self.text.upper()
        object.__setattr__(self, "text", normalized)
        object.__setattr__(self, "codes", tuple(self.alphabet.encode(normalized)))

    @classmethod
    def from_encoded(
        cls,
        identifier: str,
        text: str,
        codes: tuple[int, ...],
        description: str = "",
        alphabet: Alphabet = PROTEIN,
    ) -> "Sequence":
        """Trusted constructor for already-normalized, already-encoded data.

        The packed database layer stores normalized text and derives
        ``codes`` with a vectorized table lookup; going through
        ``__init__`` again would re-encode residue-by-residue in Python
        on the scan hot path.  Callers must guarantee ``text`` is
        upper-cased and ``codes == tuple(alphabet.encode(text))``.
        """
        sequence = object.__new__(cls)
        object.__setattr__(sequence, "identifier", identifier)
        object.__setattr__(sequence, "text", text)
        object.__setattr__(sequence, "description", description)
        object.__setattr__(sequence, "alphabet", alphabet)
        object.__setattr__(sequence, "codes", codes)
        return sequence

    def __len__(self) -> int:
        return len(self.text)

    def __getitem__(self, item: int | slice) -> str:
        return self.text[item]

    def __iter__(self):
        return iter(self.text)

    @property
    def residue_count(self) -> int:
        """Length in residues (alias of ``len``)."""
        return len(self.text)

    def subsequence(self, start: int, stop: int) -> "Sequence":
        """Return a new sequence covering ``text[start:stop]``."""
        return Sequence(
            identifier=f"{self.identifier}[{start}:{stop}]",
            text=self.text[start:stop],
            description=self.description,
            alphabet=self.alphabet,
        )

    def composition(self) -> dict[str, int]:
        """Return residue letter -> occurrence count."""
        counts: dict[str, int] = {}
        for symbol in self.text:
            counts[symbol] = counts.get(symbol, 0) + 1
        return counts


def as_sequence(value: "Sequence | str", identifier: str = "anonymous") -> Sequence:
    """Coerce a raw residue string (or pass through a Sequence) to Sequence."""
    if isinstance(value, Sequence):
        return value
    return Sequence(identifier=identifier, text=value)
