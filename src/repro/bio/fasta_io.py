"""Reading and writing sequences in FASTA format.

This is the interchange format used by every tool the paper studies; the
synthetic databases produced by :mod:`repro.bio.synthetic` round-trip
through it so examples can operate on real files.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.bio.alphabet import PROTEIN, Alphabet
from repro.bio.sequence import Sequence


class FastaFormatError(ValueError):
    """Raised when a FASTA stream is malformed."""


def _iter_records(stream: TextIO) -> Iterator[tuple[str, str]]:
    header: str | None = None
    chunks: list[str] = []
    for line_number, raw_line in enumerate(stream, start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                yield header, "".join(chunks)
            header = line[1:].strip()
            chunks = []
        else:
            if header is None:
                raise FastaFormatError(
                    f"line {line_number}: sequence data before any '>' header"
                )
            chunks.append(line)
    if header is not None:
        yield header, "".join(chunks)


def parse_fasta(stream: TextIO, alphabet: Alphabet = PROTEIN) -> Iterator[Sequence]:
    """Yield :class:`Sequence` records from an open FASTA text stream."""
    for header, text in _iter_records(stream):
        identifier, _, description = header.partition(" ")
        if not identifier:
            raise FastaFormatError("empty FASTA header")
        yield Sequence(
            identifier=identifier,
            text=text,
            description=description,
            alphabet=alphabet,
        )


def parse_fasta_text(text: str, alphabet: Alphabet = PROTEIN) -> list[Sequence]:
    """Parse FASTA records from an in-memory string."""
    return list(parse_fasta(io.StringIO(text), alphabet=alphabet))


def read_fasta(path: str | Path, alphabet: Alphabet = PROTEIN) -> list[Sequence]:
    """Read all FASTA records from a file."""
    with open(path, encoding="ascii") as stream:
        return list(parse_fasta(stream, alphabet=alphabet))


def format_fasta(sequences: Iterable[Sequence], line_width: int = 60) -> str:
    """Render sequences as FASTA text with wrapped residue lines."""
    if line_width < 1:
        raise ValueError("line_width must be positive")
    parts: list[str] = []
    for sequence in sequences:
        header = sequence.identifier
        if sequence.description:
            header = f"{header} {sequence.description}"
        parts.append(f">{header}")
        text = sequence.text
        for start in range(0, len(text), line_width):
            parts.append(text[start : start + line_width])
    return "\n".join(parts) + "\n"


def write_fasta(
    sequences: Iterable[Sequence], path: str | Path, line_width: int = 60
) -> None:
    """Write sequences to a FASTA file."""
    with open(path, "w", encoding="ascii") as stream:
        stream.write(format_fasta(sequences, line_width=line_width))
