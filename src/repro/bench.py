"""Microbenchmarks for the columnar trace hot path.

Three throughputs cover the stages the performance work targets:

* **trace generation** — running a workload kernel through
  ``TraceBuilder`` into columnar storage (instructions/second);
* **trace load** — ``load_trace`` on a saved ``.npz`` archive, which
  since the column refactor materializes no per-instruction objects;
* **simulation** — the out-of-order core's cycle loop over the decode
  plane (simulated instructions/second).

Methodology: every metric is the *best of N* repetitions.  On shared
machines the run-to-run spread is dominated by scheduler and frequency
noise, so the maximum rate is the most stable estimate of what the
code itself can do; the repetition count is recorded alongside.

``REFERENCE_IPS`` pins the same measurements taken on this benchmark's
configuration immediately before the columnar/decode-plane/timing-wheel
rework, so reports can show the speedup without needing the old code.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

from repro.bio.synthetic import SyntheticDatabaseConfig
from repro.isa.serialize import load_trace, save_trace
from repro.isa.trace import Trace
from repro.uarch.config import (
    BP_PERFECT,
    ME1,
    ME2,
    MEINF,
    PROC_4WAY,
    PROC_8WAY,
    PROC_12WAY,
    PROC_16WAY,
)
from repro.uarch.simulator import simulate, simulate_batch
from repro.workloads.suite import WorkloadSuite

#: Throughput of each stage measured at the commit preceding the
#: columnar rework (same workload, parameters, and best-of-N protocol).
REFERENCE_IPS: dict[str, int] = {
    "trace_generation": 511_761,
    "load_trace": 206_143,
    "simulate": 122_204,
}

#: Benchmark workload and suite parameters (matches the golden suite).
BENCH_WORKLOAD = "ssearch34"
_SUITE_PARAMS: dict[str, Any] = {
    "sequence_count": 30,
    "family_count": 2,
    "family_size": 3,
    "seed": 2006,
    "mean_length": 200.0,
}
_TRACE_BUDGET = 50_000
_SIM_SLICE = 20_000
_QUICK_SIM_SLICE = 6_000


def _make_suite() -> WorkloadSuite:
    return WorkloadSuite(
        database_config=SyntheticDatabaseConfig(**_SUITE_PARAMS),
        trace_budget=_TRACE_BUDGET,
    )


def _best_rate(
    task: Callable[[], int], repeats: int
) -> tuple[float, int]:
    """Run ``task`` (returns instructions processed) ``repeats`` times;
    returns (best instructions/second, instructions per run)."""
    best = 0.0
    instructions = 0
    for _ in range(repeats):
        start = time.perf_counter()
        instructions = task()
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, instructions / elapsed)
    return best, instructions


def bench_trace_generation(repeats: int) -> dict[str, Any]:
    """Kernel -> TraceBuilder -> columnar trace throughput.

    The headline ``ips`` measures :data:`BENCH_WORKLOAD` (stable across
    baselines); ``per_workload`` breaks the same measurement down over
    every golden kernel so emission-path wins are attributable.
    """
    from repro.kernels.registry import WORKLOAD_NAMES

    def task_for(workload: str) -> Callable[[], int]:
        def task() -> int:
            # A fresh suite each run so nothing is served from a cache.
            return len(_make_suite().trace(workload))

        return task

    per_workload = {}
    for workload in WORKLOAD_NAMES:
        ips, instructions = _best_rate(task_for(workload), repeats)
        per_workload[workload] = {
            "instructions": instructions, "ips": round(ips)
        }
    headline = per_workload[BENCH_WORKLOAD]
    return {
        "instructions": headline["instructions"],
        "ips": headline["ips"],
        "repeats": repeats,
        "per_workload": per_workload,
    }


def bench_load_trace(trace: Trace, repeats: int) -> dict[str, Any]:
    """``load_trace`` throughput on a saved archive of ``trace``."""
    handle, path = tempfile.mkstemp(suffix=".npz")
    os.close(handle)
    try:
        save_trace(trace, path)

        def task() -> int:
            return len(load_trace(path))

        ips, instructions = _best_rate(task, repeats)
    finally:
        os.unlink(path)
    return {"instructions": instructions, "ips": round(ips), "repeats": repeats}


#: Simulation configurations for the per-config breakdown: the paper's
#: baseline (headline, stable across baselines), the wider cores (more
#: wakeup/select work per cycle), the ideal memory corner (no miss
#: machinery), and perfect branch prediction (no recovery machinery).
BENCH_SIM_CONFIGS = (
    ("4-way/me1", PROC_4WAY.with_memory(ME1)),
    ("8-way/me1", PROC_8WAY.with_memory(ME1)),
    ("16-way/me1", PROC_16WAY.with_memory(ME1)),
    ("4-way/meinf", PROC_4WAY.with_memory(MEINF)),
    ("4-way/me1+bperf", PROC_4WAY.with_memory(ME1).with_branch(BP_PERFECT)),
)

#: The breakdown entry whose numbers are the headline ``ips``.
BENCH_SIM_HEADLINE = "4-way/me1"


def bench_simulate(trace: Trace, repeats: int) -> dict[str, Any]:
    """Out-of-order core throughput (simulated instructions/second).

    The headline ``ips`` measures the paper-baseline configuration
    (:data:`BENCH_SIM_HEADLINE`, stable across stored baselines);
    ``per_config`` breaks the same measurement down over
    :data:`BENCH_SIM_CONFIGS` so core-loop wins and their sensitivity
    to width, memory, and predictor machinery are attributable.
    """
    per_config = {}
    for label, config in BENCH_SIM_CONFIGS:
        simulate(trace, config)  # warm the decode plane and code paths

        def task(config=config) -> int:
            return simulate(trace, config).instructions

        ips, instructions = _best_rate(task, repeats)
        per_config[label] = {
            "instructions": instructions,
            "cycles": simulate(trace, config).cycles,
            "ips": round(ips),
        }
    headline_config = dict(BENCH_SIM_CONFIGS)[BENCH_SIM_HEADLINE]
    headline = per_config[BENCH_SIM_HEADLINE]
    return {
        "instructions": headline["instructions"],
        "cycles": headline["cycles"],
        "config": headline_config.name,
        "memory": headline_config.memory.name,
        "ips": headline["ips"],
        "repeats": repeats,
        "per_config": per_config,
    }


#: Lockstep batch benchmark shape: Table IV's width sweep under the two
#: realistic memory configurations — eight configurations over one
#: trace, exactly what ``repro.sweep`` hands the lockstep engine.
BENCH_LOCKSTEP_CONFIGS = tuple(
    (f"{width.name}/{memory.name}", width.with_memory(memory))
    for width in (PROC_4WAY, PROC_8WAY, PROC_12WAY, PROC_16WAY)
    for memory in (ME1, ME2)
)

#: Floor on the lockstep batch's aggregate throughput versus running
#: the same configurations back-to-back through the scalar core.  With
#: worker processes (``jobs > 1``) the fork fan-out compounds with the
#: shared-plane engine and the batch must clear 2.5x; single-CPU
#: machines fall back to the in-process engine, where the floor only
#: guards against lockstep regressing to slower-than-scalar (0.9
#: rather than 1.0 to tolerate scheduler noise on loaded boxes).
LOCKSTEP_FLOOR_PARALLEL = 2.5
LOCKSTEP_FLOOR_SERIAL = 0.9


def bench_simulate_lockstep(
    trace: Trace, repeats: int, jobs: int | None = None
) -> dict[str, Any]:
    """Lockstep batch throughput versus back-to-back scalar runs.

    Simulates the :data:`BENCH_LOCKSTEP_CONFIGS` batch through
    :func:`~repro.uarch.simulator.simulate_batch` and reports the
    *aggregate* simulated instructions/second — total instructions
    retired across all configurations over the batch wall time — next
    to the same aggregate for the equivalent sequence of scalar
    :func:`~repro.uarch.simulator.simulate` calls.  ``jobs`` defaults
    to ``min(len(configs), cpu_count)``, mirroring what the batch API
    does on the runtime pool; the value actually used is recorded so
    gates can distinguish the fork-parallel regime from the in-process
    one.
    """
    configs = [config for _, config in BENCH_LOCKSTEP_CONFIGS]
    if jobs is None:
        jobs = max(1, min(len(configs), os.cpu_count() or 1))

    # Warm the decode plane, shared planes, and code paths for both
    # engines so neither side pays first-run costs inside the timing.
    simulate_batch(trace, configs, jobs=jobs)
    simulate(trace, configs[0])

    def batch_task() -> int:
        results = simulate_batch(trace, configs, jobs=jobs)
        return sum(result.instructions for result in results)

    batch_ips, instructions = _best_rate(batch_task, repeats)

    def scalar_task() -> int:
        return sum(
            simulate(trace, config).instructions for config in configs
        )

    scalar_ips, _ = _best_rate(scalar_task, repeats)
    return {
        "instructions": instructions,
        "configs": len(configs),
        "jobs": jobs,
        "ips": round(batch_ips),
        "scalar_ips": round(scalar_ips),
        "speedup_vs_scalar": (
            round(batch_ips / scalar_ips, 2) if scalar_ips else 0.0
        ),
        "repeats": repeats,
    }


def run_bench(quick: bool = False) -> dict[str, Any]:
    """Run all three benchmarks; returns the report dictionary."""
    repeats = 2 if quick else 5
    suite = _make_suite()
    trace = suite.trace(BENCH_WORKLOAD)
    sim_slice = trace.slice(_QUICK_SIM_SLICE if quick else _SIM_SLICE)
    metrics = {
        "trace_generation": bench_trace_generation(1 if quick else 3),
        "load_trace": bench_load_trace(trace, repeats),
        "simulate": bench_simulate(sim_slice, repeats),
        # The full trace even in quick mode: the batch must be large
        # enough to amortize fork start-up, or the smoke gate would
        # measure process management instead of the engine.
        "simulate_lockstep": bench_simulate_lockstep(
            trace, 2 if quick else 3
        ),
    }
    # Metrics and REFERENCE_IPS may drift apart (a metric added after
    # the reference was pinned, or vice versa): report speedups only for
    # the intersection instead of KeyErroring.
    speedups = {
        name: round(measured["ips"] / REFERENCE_IPS[name], 2)
        for name, measured in metrics.items()
        if REFERENCE_IPS.get(name)
    }
    from repro.isa.builder import emission_mode

    return {
        "version": 1,
        "mode": "quick" if quick else "full",
        "emit_mode": emission_mode(),
        "workload": BENCH_WORKLOAD,
        "suite": dict(_SUITE_PARAMS, trace_budget=_TRACE_BUDGET),
        "metrics": metrics,
        "reference_ips": dict(REFERENCE_IPS),
        "speedup_vs_reference": speedups,
    }


#: The pinned baseline report at the repo root (``repro bench --check``).
COMMITTED_BASELINE = Path(__file__).resolve().parents[2] / "BENCH_core.json"


def check_baseline(
    report: dict[str, Any],
    baseline_path: str | Path | None = None,
    allowed_drop: float = 0.25,
    warnings: list[str] | None = None,
) -> list[str]:
    """Tight regression gate against the committed baseline report.

    Absolute throughput varies wildly across CI machines, so the check
    normalizes for machine speed first: each metric's measured/baseline
    ratio is divided by the geometric mean of all the ratios.  A metric
    fails when its normalized throughput dropped more than
    ``allowed_drop`` (default 25%) — i.e. one stage got slower relative
    to the others, which is what an algorithmic regression looks like,
    while a uniformly slower machine passes.

    A metric measured by this report but absent from the baseline (added
    after the baseline was committed) is not a failure: it is skipped
    and noted in ``warnings`` (caller-supplied list) so the baseline can
    be regenerated.
    """
    path = Path(baseline_path or COMMITTED_BASELINE)
    try:
        baseline = json.loads(path.read_text())
    except OSError as error:
        return [
            f"baseline {path} is missing or unreadable ({error}); "
            "regenerate it with `python -m repro bench --out "
            f"{path.name}`"
        ]
    except ValueError as error:
        return [
            f"baseline {path} is not valid JSON ({error}); "
            "regenerate it with `python -m repro bench --out "
            f"{path.name}`"
        ]
    if not isinstance(baseline, dict):
        return [
            f"baseline {path} is not a benchmark report object; "
            "regenerate it with `python -m repro bench --out "
            f"{path.name}`"
        ]
    ratios: dict[str, float] = {}
    for name, measured in report["metrics"].items():
        reference = baseline.get("metrics", {}).get(name, {}).get("ips")
        if reference:
            ratios[name] = measured["ips"] / reference
        elif warnings is not None:
            warnings.append(
                f"{name}: not in baseline {path.name}; skipped "
                "(regenerate the baseline to start gating it)"
            )
    if not ratios:
        return [f"baseline {path} shares no metrics with this report"]
    scale = math.exp(
        sum(math.log(ratio) for ratio in ratios.values()) / len(ratios)
    )
    failures = []
    for name, ratio in sorted(ratios.items()):
        if ratio < scale * (1.0 - allowed_drop):
            failures.append(
                f"{name}: normalized throughput {ratio / scale:.2f}x of "
                f"baseline (machine-speed factor {scale:.2f}) is more "
                f"than {allowed_drop:.0%} below {path.name}"
            )
    return failures


def check_lockstep_floor(report: dict[str, Any]) -> list[str]:
    """Absolute floor on the lockstep batch's speedup over scalar runs.

    Unlike :func:`check_baseline` this does not compare machines: the
    batch and the scalar reference ran back-to-back on the same box, so
    their ratio is machine-independent.  The floor depends on the
    regime the report recorded — :data:`LOCKSTEP_FLOOR_PARALLEL` when
    fork workers were in play (``jobs > 1``), else
    :data:`LOCKSTEP_FLOOR_SERIAL`.  Reports without the metric (older
    baselines) pass vacuously.
    """
    metric = report.get("metrics", {}).get("simulate_lockstep")
    if not isinstance(metric, dict):
        return []
    jobs = int(metric.get("jobs", 1) or 1)
    floor = LOCKSTEP_FLOOR_PARALLEL if jobs > 1 else LOCKSTEP_FLOOR_SERIAL
    speedup = float(metric.get("speedup_vs_scalar", 0.0) or 0.0)
    if speedup < floor:
        return [
            f"simulate_lockstep: {speedup:.2f}x aggregate vs "
            f"{metric.get('configs')} scalar runs is below the "
            f"{floor:.2f}x floor (jobs={jobs})"
        ]
    return []


# -- cluster: packed-database replica fleet ---------------------------------

#: Floors for the packed-database serving gates (``--check``): replica
#: fleets on a packed snapshot must cold-start at least this much
#: faster, and carry at least this fraction less per-replica RSS, than
#: the same fleet materializing a private database copy per process.
CLUSTER_COLD_START_FLOOR = 2.0
CLUSTER_RSS_REDUCTION_FLOOR = 0.4

#: Database the cluster benchmark serves: big enough that generation
#: dominates replica start-up and the residue heap dominates RSS, small
#: enough that a BLAST probe scan stays in benchmark time.
CLUSTER_DB_CONFIG = SyntheticDatabaseConfig(
    sequence_count=24_000,
    family_count=2,
    family_size=3,
    seed=2006,
    mean_length=200.0,
)
_CLUSTER_REPLICAS = 3
_CLUSTER_QUERY = (
    "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVKALP"
    "DAQFEVVHSLAKWKR"
)
#: ``--jobs 1`` keeps each replica a single process (the serial
#: executor materializes the database inline), so per-replica RSS is
#: one process and the packed/materialized contrast is undiluted.
_CLUSTER_SERVE_ARGS = (
    "--jobs", "1", "--shards", "2", "--no-precompute",
)


def process_rss_bytes(pid: int) -> int | None:
    """Proportional set size of one process, in bytes (Linux).

    Pss splits shared pages among their sharers — exactly the
    accounting under which N replicas mmapping one packed database pay
    for its pages once between them.  Falls back to VmRSS where
    ``smaps_rollup`` is unavailable, and to ``None`` off Linux
    (callers treat the RSS gate as vacuous there).
    """
    try:
        for line in Path(
            f"/proc/{pid}/smaps_rollup"
        ).read_text().splitlines():
            if line.startswith("Pss:"):
                return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        for line in Path(f"/proc/{pid}/status").read_text().splitlines():
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


async def _bench_cluster_path(
    serve_args: tuple[str, ...], replicas: int
) -> dict[str, Any]:
    """Start one fleet, probe every replica, measure start + RSS."""
    import asyncio

    from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor

    supervisor = ClusterSupervisor(ClusterConfig(
        replicas=replicas, serve_args=serve_args
    ))
    start = time.perf_counter()
    await supervisor.start()
    cold_start = time.perf_counter() - start
    try:
        # One probe per replica, dispatched directly (not through
        # pick()): every replica reaches steady state — database
        # resident, engines compiled, one full scan done — before RSS
        # is read.
        names = sorted(supervisor.router.replicas)
        probes = [
            supervisor.router.replicas[name].request(
                {
                    "op": "search",
                    "id": f"probe-{name}",
                    "query": _CLUSTER_QUERY,
                    "algorithm": "blast",
                    "best_count": 50,
                },
                timeout=300.0,
            )
            for name in names
        ]
        responses = await asyncio.gather(*probes)
        rss = {
            name: process_rss_bytes(spec.process.pid)
            for name, spec in sorted(supervisor.specs.items())
            if spec.process is not None
        }
    finally:
        await supervisor.stop()
    results = [
        json.dumps(response.get("result"), sort_keys=True)
        for response in responses
    ]
    for response in responses:
        if response.get("status") != "ok":
            raise RuntimeError(f"cluster probe failed: {response}")
    return {
        "cold_start_s": round(cold_start, 3),
        "rss_per_replica": rss,
        "results": results,
    }


def bench_cluster(replicas: int = _CLUSTER_REPLICAS) -> dict[str, Any]:
    """Replica fleet on a packed snapshot vs materialize-per-replica.

    Packs :data:`CLUSTER_DB_CONFIG` once, then brings up the same
    topology twice — every replica generating a private database copy,
    then every replica mmapping the shared snapshot — and reports the
    fleet cold-start times, per-replica steady-state RSS (Pss), and
    whether the probe search results were byte-identical across every
    replica of both paths (they must be: the packed snapshot pins the
    generator config's cache identity).
    """
    import asyncio

    from repro.bio.synthetic import generate_database
    from repro.store.packdb import pack_database

    config = CLUSTER_DB_CONFIG
    with tempfile.TemporaryDirectory() as scratch:
        packed_dir = pack_database(
            generate_database(config),
            Path(scratch) / "packed-db",
            source_config=config,
        )
        materialize_args = _CLUSTER_SERVE_ARGS + (
            "--db-sequences", str(config.sequence_count),
            "--db-seed", str(config.seed),
        )
        packed_args = _CLUSTER_SERVE_ARGS + (
            "--db-path", str(packed_dir),
        )

        async def run() -> tuple[dict, dict]:
            materialize = await _bench_cluster_path(
                materialize_args, replicas
            )
            packed = await _bench_cluster_path(packed_args, replicas)
            return materialize, packed

        materialize, packed = asyncio.run(run())

    identical = (
        len(set(materialize.pop("results") + packed.pop("results"))) == 1
    )
    speedup = (
        materialize["cold_start_s"] / packed["cold_start_s"]
        if packed["cold_start_s"] else 0.0
    )
    rss_values = [
        [value for value in path["rss_per_replica"].values() if value]
        for path in (materialize, packed)
    ]
    if all(rss_values):
        means = [sum(values) / len(values) for values in rss_values]
        reduction = 1.0 - means[1] / means[0] if means[0] else 0.0
        rss_metrics = {
            "mean_rss_materialize": round(means[0]),
            "mean_rss_packed": round(means[1]),
            "rss_reduction": round(reduction, 3),
        }
    else:
        rss_metrics = {"rss_reduction": None}
    return {
        "replicas": replicas,
        "db_sequences": config.sequence_count,
        "materialize": materialize,
        "packed": packed,
        "cold_start_speedup": round(speedup, 2),
        "responses_identical": identical,
        **rss_metrics,
    }


def check_cluster_floors(report: dict[str, Any]) -> list[str]:
    """Floors for the packed-database serving path (``--check``).

    Reads the report's top-level ``cluster`` section (written by
    ``repro bench --cluster``); reports without one pass vacuously, as
    does the RSS gate on platforms where RSS could not be read.  Like
    :func:`check_lockstep_floor` the comparison is same-machine
    back-to-back, so no speed normalization applies.
    """
    cluster = report.get("cluster")
    if not isinstance(cluster, dict):
        return []
    failures = []
    speedup = float(cluster.get("cold_start_speedup") or 0.0)
    if speedup < CLUSTER_COLD_START_FLOOR:
        failures.append(
            f"cluster: packed-database cold start only {speedup:.2f}x "
            f"faster than materialize-per-replica (floor "
            f"{CLUSTER_COLD_START_FLOOR:.1f}x)"
        )
    reduction = cluster.get("rss_reduction")
    if reduction is not None and (
        float(reduction) < CLUSTER_RSS_REDUCTION_FLOOR
    ):
        failures.append(
            f"cluster: packed-database replicas carry only "
            f"{float(reduction):.0%} less RSS than materialized ones "
            f"(floor {CLUSTER_RSS_REDUCTION_FLOOR:.0%})"
        )
    if not cluster.get("responses_identical", True):
        failures.append(
            "cluster: packed and materialized replicas returned "
            "different search results — the packed snapshot broke "
            "byte-identity"
        )
    return failures


def check_regression(
    report: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 3.0,
) -> list[str]:
    """Compare a fresh report against a stored one.

    Returns a list of failure messages for metrics whose throughput
    dropped by more than ``threshold``x — loose on purpose: CI machines
    vary wildly in speed, and the gate should only catch algorithmic
    regressions (accidental de-vectorization), not machine noise.
    """
    failures = []
    baseline_metrics = baseline.get("metrics", {})
    for name, measured in report["metrics"].items():
        reference = baseline_metrics.get(name, {}).get("ips")
        if not reference:
            continue
        if measured["ips"] * threshold < reference:
            failures.append(
                f"{name}: {measured['ips']} ips is more than {threshold:g}x "
                f"below the baseline {reference} ips"
            )
    return failures


def format_report(report: dict[str, Any]) -> str:
    """Human-readable summary of a benchmark report."""
    emit_mode = report.get("emit_mode")
    header = (
        f"benchmark ({report['mode']}, workload {report['workload']}"
        + (f", emit={emit_mode}" if emit_mode else "")
        + "):"
    )
    lines = [header]
    for name, metrics in report["metrics"].items():
        speedup = report["speedup_vs_reference"].get(name)
        versus = (
            f"{speedup:.2f}x pre-rework" if speedup is not None
            else "no pre-rework reference"
        )
        lines.append(
            f"  {name:18s} {metrics['ips']:>10,} instr/s  "
            f"(best of {metrics['repeats']}, {versus})"
        )
        for breakdown in ("per_workload", "per_config"):
            for label, sub in metrics.get(breakdown, {}).items():
                lines.append(
                    f"    {label:16s} {sub['ips']:>10,} instr/s"
                )
        if "speedup_vs_scalar" in metrics:
            lines.append(
                f"    {metrics['configs']} configs, jobs={metrics['jobs']}: "
                f"{metrics['speedup_vs_scalar']:.2f}x vs "
                f"{metrics['configs']} scalar runs "
                f"({metrics['scalar_ips']:,} instr/s aggregate)"
            )
    if isinstance(report.get("cluster"), dict):
        lines.append(format_cluster(report["cluster"]))
    return "\n".join(lines)


def format_cluster(cluster: dict[str, Any]) -> str:
    """Human-readable summary of one cluster benchmark section."""
    lines = [
        f"cluster ({cluster['replicas']} replicas, "
        f"{cluster['db_sequences']:,}-sequence database):"
    ]
    for label in ("materialize", "packed"):
        path = cluster[label]
        rss = [v for v in path["rss_per_replica"].values() if v]
        shown = (
            f"{sum(rss) / len(rss) / 1e6:,.0f} MB/replica" if rss
            else "unavailable"
        )
        lines.append(
            f"  {label:12s} cold start {path['cold_start_s']:6.2f}s, "
            f"steady-state RSS {shown}"
        )
    reduction = cluster.get("rss_reduction")
    lines.append(
        f"  packed snapshot: {cluster['cold_start_speedup']:.2f}x faster "
        "cold start, "
        + (f"{reduction:.0%} less RSS" if reduction is not None
           else "RSS n/a")
        + (", responses byte-identical"
           if cluster.get("responses_identical")
           else ", RESPONSES DIFFER")
    )
    return "\n".join(lines)


def write_report(report: dict[str, Any], path: str) -> None:
    """Write the report as stable, diffable JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
