"""Experiment registry: one runner per paper table/figure.

Each runner takes an :class:`ExperimentContext`, computes the
experiment's data, and returns ``(data, report)`` where ``report`` is
the plain-text rendering in the paper's arrangement.  The benchmark
harness (``benchmarks/``) drives these one-to-one.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.bp_study import fig11_predictor_accuracy, fig11_report
from repro.analysis.breakdown import fig1_breakdown, fig1_report
from repro.analysis.context import ExperimentContext
from repro.analysis.queues import fig10_queue_occupancy, fig10_report
from repro.analysis.stalls import fig2_report, fig2_stalls
from repro.analysis.sweeps import (
    fig3_fig4_memory_sweep,
    fig3_report,
    fig4_report,
    fig5_cache_size,
    fig5_report,
    fig6_associativity,
    fig6_report,
    fig7_l1_latency,
    fig7_report,
    fig8_report,
    fig8_vmx_speedup,
    fig9_branch_prediction,
    fig9_report,
)
from repro.analysis.tables import (
    table1_report,
    table2_report,
    table3_report,
    table3_trace_sizes,
)

Runner = Callable[[ExperimentContext], tuple[object, str]]


def _run_table1(context: ExperimentContext) -> tuple[object, str]:
    report = table1_report()
    return None, report


def _run_table2(context: ExperimentContext) -> tuple[object, str]:
    report = table2_report()
    return None, report


def _run_table3(context: ExperimentContext) -> tuple[object, str]:
    data = table3_trace_sizes(context)
    return data, table3_report(data)


def _run_fig1(context: ExperimentContext) -> tuple[object, str]:
    data = fig1_breakdown(context)
    return data, fig1_report(data)


def _run_fig2(context: ExperimentContext) -> tuple[object, str]:
    data = fig2_stalls(context)
    return data, fig2_report(data)


def _run_fig3(context: ExperimentContext) -> tuple[object, str]:
    data = fig3_fig4_memory_sweep(context)
    return data, fig3_report(data, context.suite.names)


def _run_fig4(context: ExperimentContext) -> tuple[object, str]:
    data = fig3_fig4_memory_sweep(context)
    return data, fig4_report(data, context.suite.names)


def _run_fig5(context: ExperimentContext) -> tuple[object, str]:
    data = fig5_cache_size(context)
    return data, fig5_report(data)


def _run_fig6(context: ExperimentContext) -> tuple[object, str]:
    data = fig6_associativity(context)
    return data, fig6_report(data)


def _run_fig7(context: ExperimentContext) -> tuple[object, str]:
    data = fig7_l1_latency(context)
    return data, fig7_report(data)


def _run_fig8(context: ExperimentContext) -> tuple[object, str]:
    data = fig8_vmx_speedup(context)
    return data, fig8_report(data)


def _run_fig9(context: ExperimentContext) -> tuple[object, str]:
    data = fig9_branch_prediction(context)
    return data, fig9_report(data)


def _run_fig10(context: ExperimentContext) -> tuple[object, str]:
    data = fig10_queue_occupancy(context)
    return data, fig10_report(data)


def _run_fig11(context: ExperimentContext) -> tuple[object, str]:
    data = fig11_predictor_accuracy(context)
    return data, fig11_report(data)


EXPERIMENTS: dict[str, Runner] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
}


def run_experiment(
    identifier: str, context: ExperimentContext | None = None
) -> tuple[object, str]:
    """Run one experiment by id (``table1``..``fig11``)."""
    try:
        runner = EXPERIMENTS[identifier]
    except KeyError:
        raise KeyError(
            f"unknown experiment {identifier!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(context or ExperimentContext())
