"""Plain-text renderers for experiment outputs.

Each experiment prints rows/series in the same arrangement as the
paper's tables and figures, so a bench run can be compared to the paper
side by side (EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Fixed-width ASCII table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    value_format: str = "{:.3f}",
) -> str:
    """One row per series, one column per x value (figure data)."""
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for name, values in series.items():
        rows.append([name] + [value_format.format(v) for v in values])
    return render_table(title, headers, rows)


def render_histogram(
    title: str, histogram: dict[str, int], limit: int = 12, bar_width: int = 40
) -> str:
    """Top-N histogram with proportional bars (Fig. 2 style)."""
    ranked = sorted(histogram.items(), key=lambda item: -item[1])
    ranked = [(name, value) for name, value in ranked if value > 0][:limit]
    peak = max((value for _, value in ranked), default=1)
    lines = [title]
    for name, value in ranked:
        bar = "#" * max(1, round(bar_width * value / peak))
        lines.append(f"  {name:<10} {value:>12d} {bar}")
    return "\n".join(lines)
