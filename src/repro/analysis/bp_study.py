"""Figure 11: branch predictor accuracy vs strategy and table size."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.analysis.reporting import render_series
from repro.uarch.standalone import run_predictor_only_batch

#: Table sizes swept (entries), 16 .. 32K as in the paper's x-axis.
FIG11_SIZES: tuple[int, ...] = tuple(16 << i for i in range(12))
#: Strategies compared.
FIG11_STRATEGIES: tuple[str, ...] = ("bimodal", "gshare", "gp")
#: Applications plotted by the paper (sw_vmx256 omitted, like Fig. 11).
FIG11_APPS: tuple[str, ...] = ("ssearch34", "sw_vmx128", "fasta34", "blast")


@dataclass(frozen=True)
class PredictorStudyResult:
    """accuracy[app][strategy] = list over sizes."""

    sizes: tuple[int, ...]
    accuracy: dict[str, dict[str, list[float]]]

    def plateau(self, app: str, strategy: str) -> float:
        """Accuracy at the largest table (the saturated value)."""
        return self.accuracy[app][strategy][-1]

    def saturation_size(
        self, app: str, strategy: str, tolerance: float = 0.005
    ) -> int:
        """Smallest size within ``tolerance`` of the plateau."""
        values = self.accuracy[app][strategy]
        plateau = values[-1]
        for size, value in zip(self.sizes, values):
            if plateau - value <= tolerance:
                return size
        return self.sizes[-1]


def fig11_predictor_accuracy(
    context: ExperimentContext,
    sizes: tuple[int, ...] = FIG11_SIZES,
    strategies: tuple[str, ...] = FIG11_STRATEGIES,
    apps: tuple[str, ...] = FIG11_APPS,
) -> PredictorStudyResult:
    """Replay each application's branch stream through each predictor."""
    context.prefetch_workloads(tuple(apps))
    accuracy: dict[str, dict[str, list[float]]] = {}
    for app in apps:
        trace = context.suite.trace(app)
        # One batch per app: the branch index list is shared across the
        # whole strategies x sizes grid instead of being re-derived per
        # predictor (run_predictor_only_batch).
        grid = [
            (strategy, size) for strategy in strategies for size in sizes
        ]
        replayed = iter(run_predictor_only_batch(trace, grid))
        per_strategy: dict[str, list[float]] = {}
        for strategy in strategies:
            per_strategy[strategy] = [
                next(replayed)[0].accuracy for _ in sizes
            ]
        accuracy[app] = per_strategy
    return PredictorStudyResult(sizes=sizes, accuracy=accuracy)


def fig11_report(result: PredictorStudyResult) -> str:
    """Render one block per application (prediction rate %, like Fig 11)."""
    labels = [
        str(size) if size < 1024 else f"{size // 1024}K" for size in result.sizes
    ]
    blocks = []
    for app, strategies in result.accuracy.items():
        blocks.append(
            render_series(
                f"Figure 11: prediction rate [%], {app}",
                "strategy",
                labels,
                {k: [v * 100 for v in vs] for k, vs in strategies.items()},
                value_format="{:.1f}",
            )
        )
    return "\n\n".join(blocks)
