"""Figure 1: instruction breakdown per workload."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.analysis.reporting import render_table
from repro.isa.opcodes import FIG1_ORDER
from repro.isa.trace import InstructionMix

#: Fractions the paper quotes in the Fig. 1 discussion, for comparison.
PAPER_FRACTIONS: dict[str, dict[str, float]] = {
    "ssearch34": {"ctrl": 0.25, "iload": 0.22, "ialu": 0.44},
    "sw_vmx128": {"ctrl": 0.02, "ialu": 0.15, "vsimple": 0.21},
    "sw_vmx256": {"ctrl": 0.02, "ialu": 0.18, "vsimple": 0.14},
    "fasta34": {"ctrl": 0.18, "iload": 0.17, "ialu": 0.48},
    "blast": {"ctrl": 0.16, "iload": 0.21, "ialu": 0.54},
}


@dataclass(frozen=True)
class BreakdownResult:
    """Per-application instruction mixes."""

    mixes: dict[str, InstructionMix]

    def fractions(self, name: str) -> dict[str, float]:
        """Class -> fraction for one application, in Fig. 1 order."""
        mix = self.mixes[name]
        return {op.name.lower(): mix.fraction(op) for op in FIG1_ORDER}


def fig1_breakdown(context: ExperimentContext) -> BreakdownResult:
    """Compute the per-application dynamic instruction mixes."""
    context.prefetch_workloads()
    mixes = {
        name: context.suite.run(name).mix for name in context.suite.names
    }
    return BreakdownResult(mixes=mixes)


def fig1_report(result: BreakdownResult) -> str:
    """Render Fig. 1 as one row per application."""
    class_names = [op.name.lower() for op in FIG1_ORDER]
    rows = []
    for name, mix in result.mixes.items():
        fractions = result.fractions(name)
        rows.append(
            [name, mix.total]
            + [f"{fractions[class_name]:.1%}" for class_name in class_names]
        )
    return render_table(
        "Figure 1: instruction breakdown",
        ["application", "instructions"] + class_names,
        rows,
    )
