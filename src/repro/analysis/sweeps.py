"""Configuration sweeps: Figures 3-9.

Every sweep varies exactly the knob its figure varies and holds
everything else at the paper's baseline, reusing the per-application
standard traces through the context's simulation cache.

These hand-rolled grid loops are the *oracles* the declarative
``repro.sweep`` subsystem is validated against (its per-point results
must match these byte-for-byte through the shared cache), so they keep
their inline loops deliberately — hence the per-line
``repolint: disable=REP007`` markers.  New grid studies should be
``examples/sweeps/`` specs instead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.context import ExperimentContext
from repro.analysis.reporting import render_series
from repro.uarch.config import (
    BP_PERFECT,
    KB,
    ME1,
    MEMORY_PRESETS,
    PROC_12WAY,
    PROC_16WAY,
    PROC_4WAY,
    PROC_8WAY,
    ProcessorConfig,
    memory_with_dl1,
)
from repro.uarch.standalone import run_cache_only_batch

WIDTHS: tuple[ProcessorConfig, ...] = (PROC_4WAY, PROC_8WAY, PROC_16WAY)

#: Fig. 5 cache-size axis: 1K to 2M.
FIG5_SIZES: tuple[int, ...] = tuple(1 * KB << i for i in range(12))
#: Fig. 6 associativity axis.
FIG6_ASSOCIATIVITIES: tuple[int, ...] = (1, 2, 4, 8)
#: Fig. 7 L1 latency axis.
FIG7_LATENCIES: tuple[int, ...] = (1, 2, 4, 6, 8, 10)
#: Fig. 8 width axis.
FIG8_WIDTHS: tuple[ProcessorConfig, ...] = (
    PROC_4WAY, PROC_8WAY, PROC_12WAY, PROC_16WAY
)


@dataclass(frozen=True)
class MemorySweepResult:
    """Figs 3 & 4: cycles and IPC per (application, width, memory)."""

    cycles: dict[tuple[str, str, str], int]
    ipc: dict[tuple[str, str, str], float]
    widths: tuple[str, ...]
    memories: tuple[str, ...]

    def series_for(self, metric: str, app: str) -> dict[str, list[float]]:
        """memory-name -> values over widths, for one application."""
        table = self.cycles if metric == "cycles" else self.ipc
        return {
            memory: [float(table[(app, width, memory)]) for width in self.widths]
            for memory in self.memories
        }


def fig3_fig4_memory_sweep(context: ExperimentContext) -> MemorySweepResult:
    """Width x memory sweep shared by Figures 3 and 4."""
    context.prefetch_workloads()
    context.simulate_many([  # repolint: disable=REP007
        (context.suite.trace(name), width.with_memory(memory))
        for name in context.suite.names
        for width in WIDTHS
        for memory in MEMORY_PRESETS
    ])
    cycles: dict[tuple[str, str, str], int] = {}
    ipc: dict[tuple[str, str, str], float] = {}
    for name in context.suite.names:
        for width in WIDTHS:
            for memory in MEMORY_PRESETS:
                result = context.simulate_app(name, width.with_memory(memory))  # repolint: disable=REP007
                key = (name, width.name, memory.name)
                cycles[key] = result.cycles
                ipc[key] = result.ipc
    return MemorySweepResult(
        cycles=cycles,
        ipc=ipc,
        widths=tuple(width.name for width in WIDTHS),
        memories=tuple(memory.name for memory in MEMORY_PRESETS),
    )


def fig3_report(result: MemorySweepResult, apps: tuple[str, ...]) -> str:
    """Figure 3: cycles vs memory configuration."""
    blocks = []
    for app in apps:
        blocks.append(
            render_series(
                f"Figure 3: cycles, {app}",
                "memory",
                result.widths,
                result.series_for("cycles", app),
                value_format="{:.0f}",
            )
        )
    return "\n\n".join(blocks)


def fig4_report(result: MemorySweepResult, apps: tuple[str, ...]) -> str:
    """Figure 4: IPC vs memory configuration."""
    blocks = []
    for app in apps:
        blocks.append(
            render_series(
                f"Figure 4: IPC, {app}",
                "memory",
                result.widths,
                result.series_for("ipc", app),
            )
        )
    return "\n\n".join(blocks)


@dataclass(frozen=True)
class CacheSizeResult:
    """Fig. 5: DL1 miss rate and IPC vs DL1 size."""

    sizes: tuple[int, ...]
    miss_rate: dict[str, list[float]]
    ipc: dict[str, list[float]]


def fig5_cache_size(
    context: ExperimentContext,
    sizes: tuple[int, ...] = FIG5_SIZES,
    with_ipc: bool = True,
) -> CacheSizeResult:
    """Sweep DL1 sizes (2M L2, 4-way core).

    Miss rates replay only the reference stream (fast); IPC uses the
    full pipeline and can be disabled for quick looks.
    """
    context.prefetch_workloads()
    if with_ipc:
        context.simulate_many([  # repolint: disable=REP007
            (context.suite.trace(name),
             PROC_4WAY.with_memory(memory_with_dl1(size)))
            for name in context.suite.names
            for size in sizes
        ])
    miss_rate: dict[str, list[float]] = {}
    ipc: dict[str, list[float]] = {}
    for name in context.suite.names:
        trace = context.suite.trace(name)
        memories = [memory_with_dl1(size) for size in sizes]
        cache_results = run_cache_only_batch(trace, memories)
        rates = [dl1.miss_rate for dl1, _ in cache_results]
        ipcs = []
        if with_ipc:
            for memory in memories:
                result = context.simulate_trace(  # repolint: disable=REP007
                    trace, PROC_4WAY.with_memory(memory)
                )
                ipcs.append(result.ipc)
        miss_rate[name] = rates
        ipc[name] = ipcs
    return CacheSizeResult(sizes=sizes, miss_rate=miss_rate, ipc=ipc)


def fig5_report(result: CacheSizeResult) -> str:
    """Figure 5: miss rate (a) and IPC (b) vs cache size."""
    labels = [
        f"{size // KB}K" if size < 1024 * KB else f"{size // (1024 * KB)}M"
        for size in result.sizes
    ]
    parts = [
        render_series(
            "Figure 5a: DL1 miss rate vs cache size",
            "app",
            labels,
            {k: [v * 100 for v in vs] for k, vs in result.miss_rate.items()},
            value_format="{:.2f}",
        )
    ]
    if any(result.ipc.values()):
        parts.append(
            render_series(
                "Figure 5b: IPC vs cache size", "app", labels, result.ipc
            )
        )
    return "\n\n".join(parts)


@dataclass(frozen=True)
class AssociativityResult:
    """Fig. 6: DL1 miss rate and IPC vs associativity (32K DL1)."""

    associativities: tuple[int, ...]
    miss_rate: dict[str, list[float]]
    ipc: dict[str, list[float]]


def fig6_associativity(
    context: ExperimentContext,
    associativities: tuple[int, ...] = FIG6_ASSOCIATIVITIES,
    with_ipc: bool = True,
) -> AssociativityResult:
    """Sweep DL1 associativity at 32K."""
    context.prefetch_workloads()
    if with_ipc:
        context.simulate_many([  # repolint: disable=REP007
            (context.suite.trace(name),
             PROC_4WAY.with_memory(
                 memory_with_dl1(32 * KB, associativity=associativity)
             ))
            for name in context.suite.names
            for associativity in associativities
        ])
    miss_rate: dict[str, list[float]] = {}
    ipc: dict[str, list[float]] = {}
    for name in context.suite.names:
        trace = context.suite.trace(name)
        memories = [
            memory_with_dl1(32 * KB, associativity=associativity)
            for associativity in associativities
        ]
        cache_results = run_cache_only_batch(trace, memories)
        rates = [dl1.miss_rate for dl1, _ in cache_results]
        ipcs = []
        if with_ipc:
            for memory in memories:
                result = context.simulate_trace(  # repolint: disable=REP007
                    trace, PROC_4WAY.with_memory(memory)
                )
                ipcs.append(result.ipc)
        miss_rate[name] = rates
        ipc[name] = ipcs
    return AssociativityResult(
        associativities=associativities, miss_rate=miss_rate, ipc=ipc
    )


def fig6_report(result: AssociativityResult) -> str:
    """Figure 6: miss rate (a) and IPC (b) vs associativity."""
    labels = list(result.associativities)
    parts = [
        render_series(
            "Figure 6a: DL1 miss rate vs associativity",
            "app",
            labels,
            {k: [v * 100 for v in vs] for k, vs in result.miss_rate.items()},
            value_format="{:.2f}",
        )
    ]
    if any(result.ipc.values()):
        parts.append(
            render_series(
                "Figure 6b: IPC vs associativity", "app", labels, result.ipc
            )
        )
    return "\n\n".join(parts)


@dataclass(frozen=True)
class LatencyResult:
    """Fig. 7: IPC vs L1 hit latency."""

    latencies: tuple[int, ...]
    ipc: dict[str, list[float]]

    def sensitivity(self, name: str) -> float:
        """Relative IPC drop from the fastest to the slowest latency."""
        values = self.ipc[name]
        return (values[0] - values[-1]) / values[0] if values[0] else 0.0


def fig7_l1_latency(
    context: ExperimentContext,
    latencies: tuple[int, ...] = FIG7_LATENCIES,
) -> LatencyResult:
    """Sweep L1 hit latency (32K/32K/1M, 4-way)."""
    context.prefetch_workloads()
    context.simulate_many([  # repolint: disable=REP007
        (context.suite.trace(name),
         PROC_4WAY.with_memory(
             memory_with_dl1(32 * KB, latency=latency, l2_mb=1)
         ))
        for name in context.suite.names
        for latency in latencies
    ])
    ipc: dict[str, list[float]] = {}
    for name in context.suite.names:
        trace = context.suite.trace(name)
        values = []
        for latency in latencies:
            memory = memory_with_dl1(32 * KB, latency=latency, l2_mb=1)
            result = context.simulate_trace(trace, PROC_4WAY.with_memory(memory))  # repolint: disable=REP007
            values.append(result.ipc)
        ipc[name] = values
    return LatencyResult(latencies=latencies, ipc=ipc)


def fig7_report(result: LatencyResult) -> str:
    """Figure 7: IPC vs L1 latency."""
    return render_series(
        "Figure 7: IPC vs L1 hit latency",
        "app",
        list(result.latencies),
        result.ipc,
    )


@dataclass(frozen=True)
class VmxSpeedupResult:
    """Fig. 8: vmx speedups vs width, incl. the +1-latency variant."""

    widths: tuple[str, ...]
    speedup: dict[str, list[float]]  # variant -> speedup per width


def fig8_vmx_speedup(context: ExperimentContext) -> VmxSpeedupResult:
    """Speedups of the SW variants relative to sw_vmx128.

    All variants run the *same database slice* so cycles are directly
    comparable; ``sw_vmx256 + 1 lat`` adds one cycle to every 32-byte
    vector load (the pipelined-double-width memory path scenario).
    """
    traces = context.suite.paired_traces(("sw_vmx128", "sw_vmx256"))
    requests = []
    for width in FIG8_WIDTHS:
        config = width.with_memory(ME1)
        requests.append((traces["sw_vmx128"], config))
        requests.append((traces["sw_vmx256"], config))
        requests.append(
            (traces["sw_vmx256"], replace(config, wide_load_extra_latency=1))
        )
    context.simulate_many(requests)
    speedup: dict[str, list[float]] = {
        "sw_vmx128": [],
        "sw_vmx256": [],
        "sw_vmx256+1lat": [],
    }
    for width in FIG8_WIDTHS:
        config = width.with_memory(ME1)
        base = context.simulate_trace(traces["sw_vmx128"], config).cycles
        v256 = context.simulate_trace(traces["sw_vmx256"], config).cycles
        handicapped_config = replace(config, wide_load_extra_latency=1)
        v256_slow = context.simulate_trace(
            traces["sw_vmx256"], handicapped_config
        ).cycles
        speedup["sw_vmx128"].append(1.0)
        speedup["sw_vmx256"].append(base / v256 if v256 else 0.0)
        speedup["sw_vmx256+1lat"].append(base / v256_slow if v256_slow else 0.0)
    return VmxSpeedupResult(
        widths=tuple(width.name for width in FIG8_WIDTHS), speedup=speedup
    )


def fig8_report(result: VmxSpeedupResult) -> str:
    """Figure 8: speedup vs width."""
    return render_series(
        "Figure 8: SW SIMD speedup over sw_vmx128 (same database slice)",
        "variant",
        list(result.widths),
        result.speedup,
    )


@dataclass(frozen=True)
class BranchImpactResult:
    """Fig. 9: IPC with the real vs a perfect branch predictor."""

    widths: tuple[str, ...]
    real: dict[str, list[float]]
    perfect: dict[str, list[float]]

    def gain(self, name: str, width_index: int = 0) -> float:
        """Relative IPC gain from perfect prediction."""
        real = self.real[name][width_index]
        perfect = self.perfect[name][width_index]
        return (perfect - real) / real if real else 0.0


def fig9_branch_prediction(context: ExperimentContext) -> BranchImpactResult:
    """Perfect-vs-real predictor sweep over widths (me1 memory)."""
    context.prefetch_workloads()
    context.simulate_many([  # repolint: disable=REP007
        (context.suite.trace(name), config)
        for name in context.suite.names
        for width in WIDTHS
        for config in (
            width.with_memory(ME1),
            width.with_memory(ME1).with_branch(BP_PERFECT),
        )
    ])
    real: dict[str, list[float]] = {}
    perfect: dict[str, list[float]] = {}
    for name in context.suite.names:
        trace = context.suite.trace(name)
        real_values = []
        perfect_values = []
        for width in WIDTHS:
            config = width.with_memory(ME1)
            real_values.append(context.simulate_trace(trace, config).ipc)  # repolint: disable=REP007
            perfect_values.append(
                context.simulate_trace(  # repolint: disable=REP007
                    trace, config.with_branch(BP_PERFECT)
                ).ipc
            )
        real[name] = real_values
        perfect[name] = perfect_values
    return BranchImpactResult(
        widths=tuple(width.name for width in WIDTHS),
        real=real,
        perfect=perfect,
    )


def fig9_report(result: BranchImpactResult) -> str:
    """Figure 9: perfect and real branch predictor IPC."""
    series: dict[str, list[float]] = {}
    for name in result.real:
        series[f"{name} (real)"] = result.real[name]
        series[f"{name} (perfect)"] = result.perfect[name]
    return render_series(
        "Figure 9: IPC with real vs perfect branch prediction",
        "app",
        list(result.widths),
        series,
    )
