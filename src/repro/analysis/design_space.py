"""Design-space exploration: scaling individual unit pools.

The paper's motivation is "help designers tune future processor
architectures" for this workload class.  This study does the tuning
experiment the paper sets up but does not run: starting from the 4-way
baseline, scale one functional-unit pool at a time and measure which
applications respond — vector-integer units for the SIMD codes, fixed
point units for the heuristics, load/store units for everyone.

The unit axis here maps to ``replace()`` surgery on the config rather
than a sweepable preset, so the grid loop stays inline (with
``repolint: disable=REP007`` markers) instead of moving to a
``repro.sweep`` spec.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.context import ExperimentContext
from repro.analysis.reporting import render_series
from repro.isa.opcodes import FunctionalUnit
from repro.uarch.config import ME1, PROC_4WAY, ProcessorConfig


def with_unit_count(
    config: ProcessorConfig, unit: FunctionalUnit, count: int
) -> ProcessorConfig:
    """Copy a configuration with one unit pool resized."""
    if count < 1:
        raise ValueError("unit count must be positive")
    units = dict(config.units)
    units[unit] = count
    return replace(config, name=f"{config.name}+{unit.name}x{count}",
                   units=units)


@dataclass(frozen=True)
class UnitScalingResult:
    """IPC per (application, unit count) for one scaled unit pool."""

    unit: FunctionalUnit
    counts: tuple[int, ...]
    ipc: dict[str, list[float]]

    def gain(self, application: str) -> float:
        """Relative IPC gain from the smallest to the largest pool."""
        values = self.ipc[application]
        return (values[-1] - values[0]) / values[0] if values[0] else 0.0


def unit_scaling_study(
    context: ExperimentContext,
    unit: FunctionalUnit,
    counts: tuple[int, ...] = (1, 2, 4),
    apps: tuple[str, ...] | None = None,
) -> UnitScalingResult:
    """Scale one unit pool on the 4-way/me1 baseline."""
    apps = apps or context.suite.names
    context.prefetch_workloads(tuple(apps))
    context.simulate_many([  # repolint: disable=REP007
        (context.suite.trace(name),
         with_unit_count(PROC_4WAY.with_memory(ME1), unit, count))
        for name in apps
        for count in counts
    ])
    ipc: dict[str, list[float]] = {}
    for name in apps:
        trace = context.suite.trace(name)
        values = []
        for count in counts:
            config = with_unit_count(
                PROC_4WAY.with_memory(ME1), unit, count
            )
            values.append(context.simulate_trace(trace, config).ipc)  # repolint: disable=REP007
        ipc[name] = values
    return UnitScalingResult(unit=unit, counts=counts, ipc=ipc)


def unit_scaling_report(result: UnitScalingResult) -> str:
    """Render one unit pool's scaling curves."""
    return render_series(
        f"Design study: IPC vs {result.unit.name} unit count (4-way, me1)",
        "app",
        list(result.counts),
        result.ipc,
    )
