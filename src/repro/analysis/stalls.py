"""Figure 2: histogram of traumas on the 4-way / 32K / 1M configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.analysis.reporting import render_histogram
from repro.uarch.config import ME1, PROC_4WAY

#: The dominant trauma classes the paper reports per application.
PAPER_DOMINANT: dict[str, tuple[str, ...]] = {
    "ssearch34": ("if_pred",),
    "sw_vmx128": ("rg_vi", "rg_vper"),
    "sw_vmx256": ("rg_vi", "rg_vper", "mm_dl1", "mm_dl2", "rg_mem"),
    "fasta34": ("if_pred", "rg_fix", "mm_dl2"),
    "blast": ("rg_fix", "mm_dl2", "if_pred", "mm_dl1", "rg_mem"),
}


@dataclass(frozen=True)
class StallResult:
    """Per-application trauma histograms plus cycle counts."""

    histograms: dict[str, dict[str, int]]
    cycles: dict[str, int]

    def top(self, name: str, count: int = 6) -> list[tuple[str, int]]:
        """Largest stall classes for one application."""
        ranked = sorted(self.histograms[name].items(), key=lambda kv: -kv[1])
        return [(trauma, value) for trauma, value in ranked if value][:count]


def fig2_stalls(context: ExperimentContext) -> StallResult:
    """Run the Fig. 2 configuration (4-way, me1, real predictor)."""
    config = PROC_4WAY.with_memory(ME1)
    context.prefetch_workloads()
    context.simulate_many([
        (context.suite.trace(name), config) for name in context.suite.names
    ])
    histograms = {}
    cycles = {}
    for name in context.suite.names:
        result = context.simulate_app(name, config)
        histograms[name] = result.traumas
        cycles[name] = result.cycles
    return StallResult(histograms=histograms, cycles=cycles)


def fig2_report(result: StallResult) -> str:
    """Render one histogram block per application."""
    blocks = []
    for name, histogram in result.histograms.items():
        blocks.append(
            render_histogram(
                f"Figure 2: stall cycles in {name} "
                f"(total {result.cycles[name]} cycles)",
                histogram,
            )
        )
    return "\n\n".join(blocks)
