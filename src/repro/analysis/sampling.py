"""Trace sampling: simulate windows instead of whole traces.

The paper's traces are themselves samples — windows cut out of
billions-long executions, with the observation that "bigger traces
showed similar trends".  This module systematizes that: cut K evenly
spaced windows out of a trace, simulate each, and aggregate.  For the
steady-state workloads in this suite the sampled IPC converges quickly
to the full-trace IPC, which the test suite verifies — the empirical
justification for the scaled traces used everywhere else.

Windows are re-rooted: dependencies reaching before the window start
are dropped (the values are assumed long ready), matching how hardware
would see a warmed-up steady state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.trace import Trace
from repro.uarch.config import ProcessorConfig
from repro.uarch.simulator import simulate


def extract_window(trace: Trace, start: int, length: int) -> Trace:
    """Cut ``trace[start:start+length]`` into a self-contained trace.

    Source indices are rebased; dependencies on instructions before the
    window become no-dependencies (their values are old enough to be
    ready in any steady state).  Runs as column slices — the window
    shares storage with the parent except for the rewritten sources.
    """
    if start < 0 or length < 1:
        raise ValueError("window must have positive length within the trace")
    stop = min(start + length, len(trace))
    columns = trace.columns
    sources = columns["sources"][start:stop]
    rebased = np.where(sources >= start, sources - start, -1)
    # Left-compact each row: surviving producers keep their order and
    # the -1 padding moves to the back (the column-layout invariant).
    order = np.argsort(rebased < 0, axis=1, kind="stable")
    rebased = np.take_along_axis(rebased, order, axis=1)
    return Trace(
        f"{trace.name}[{start}:{stop}]",
        columns={
            "ops": columns["ops"][start:stop],
            "pcs": columns["pcs"][start:stop],
            "dests": columns["dests"][start:stop],
            "addresses": columns["addresses"][start:stop],
            "sizes": columns["sizes"][start:stop],
            "takens": columns["takens"][start:stop],
            "targets": columns["targets"][start:stop],
            "sources": np.ascontiguousarray(rebased),
        },
    )


@dataclass(frozen=True)
class SampledResult:
    """Aggregate of K window simulations."""

    windows: int
    window_size: int
    instructions: int
    cycles: int
    per_window_ipc: tuple[float, ...]

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle over all windows."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def ipc_spread(self) -> float:
        """Max-min spread of per-window IPCs (homogeneity measure)."""
        if not self.per_window_ipc:
            return 0.0
        return max(self.per_window_ipc) - min(self.per_window_ipc)


def sampled_simulation(
    trace: Trace,
    config: ProcessorConfig,
    windows: int = 4,
    window_size: int | None = None,
) -> SampledResult:
    """Simulate K evenly spaced windows of ``trace`` and aggregate.

    ``window_size`` defaults to 1/(2K) of the trace, so half the trace
    is simulated in total.
    """
    if windows < 1:
        raise ValueError("need at least one window")
    n = len(trace)
    if n == 0:
        return SampledResult(0, 0, 0, 0, ())
    window_size = window_size or max(1, n // (2 * windows))
    stride = max(1, n // windows)
    total_instructions = 0
    total_cycles = 0
    per_window = []
    for k in range(windows):
        start = min(k * stride, max(0, n - window_size))
        window = extract_window(trace, start, window_size)
        # Functionally warm the long-lived structures with everything
        # preceding the window (caches, TLBs, predictors).
        warmup = extract_window(trace, 0, start) if start else None
        result = simulate(window, config, warmup=warmup)
        total_instructions += result.instructions
        total_cycles += result.cycles
        per_window.append(result.ipc)
    return SampledResult(
        windows=windows,
        window_size=window_size,
        instructions=total_instructions,
        cycles=total_cycles,
        per_window_ipc=tuple(per_window),
    )
