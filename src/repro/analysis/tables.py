"""Tables I-III reproduction."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.analysis.reporting import render_table
from repro.bio.queries import TABLE2_QUERIES
from repro.workloads.spec import TABLE1_WORKLOADS

#: Residues of the common database slice used for Table III counting.
#: Large enough that the slice contains a representative mix of
#: related/unrelated subjects (FASTA's opt stage triggers on some).
TABLE3_RESIDUES = 2400

#: Paper Table III instruction counts (for shape comparison).
PAPER_TABLE3: dict[str, int] = {
    "ssearch34": 319_808_539,
    "sw_vmx128": 78_993_134,
    "sw_vmx256": 65_570_645,
    "fasta34": 27_469_429,
    "blast": 7_749_725,
}


def table1_report() -> str:
    """Table I: selected workload description."""
    rows = [
        (spec.name, spec.input_parameters, spec.description)
        for spec in TABLE1_WORKLOADS
    ]
    return render_table(
        "Table I: selected workloads",
        ["application", "input parameters", "description"],
        rows,
    )


def table2_report() -> str:
    """Table II: query sequences."""
    rows = [
        (descriptor.family, descriptor.accession, descriptor.length)
        for descriptor in TABLE2_QUERIES
    ]
    return render_table(
        "Table II: query sequences",
        ["protein family", "accession", "length"],
        rows,
    )


@dataclass(frozen=True)
class TraceSizeResult:
    """Table III data: per-application instruction counts."""

    counts: dict[str, int]
    residues: int

    def normalized(self) -> dict[str, float]:
        """Counts relative to ssearch34 (=1.0)."""
        base = self.counts.get("ssearch34", 0) or 1
        return {name: count / base for name, count in self.counts.items()}

    def ordering_matches_paper(self) -> bool:
        """True when the size ordering equals Table III's."""
        order = sorted(self.counts, key=lambda name: -self.counts[name])
        paper_order = sorted(PAPER_TABLE3, key=lambda name: -PAPER_TABLE3[name])
        return order == paper_order


def table3_trace_sizes(
    context: ExperimentContext, residues: int = TABLE3_RESIDUES
) -> TraceSizeResult:
    """Count instructions for all workloads over one common DB slice."""
    counts = {
        name: context.suite.count_mix(name, residues).total
        for name in context.suite.names
    }
    return TraceSizeResult(counts=counts, residues=residues)


def table3_report(result: TraceSizeResult) -> str:
    """Render Table III with paper-relative shape columns."""
    paper_base = PAPER_TABLE3["ssearch34"]
    ours_base = result.counts.get("ssearch34", 0) or 1
    rows = []
    for name in result.counts:
        rows.append(
            (
                name,
                result.counts[name],
                f"{result.counts[name] / ours_base:.3f}",
                f"{PAPER_TABLE3[name] / paper_base:.3f}",
            )
        )
    return render_table(
        f"Table III: trace sizes (common slice of {result.residues} residues)",
        ["application", "instructions", "relative (ours)", "relative (paper)"],
        rows,
    )
