"""CPI stacks: the modern presentation of the paper's Figure 2 data.

A CPI stack decomposes cycles-per-instruction into a base component
(useful dispatch) plus one slice per stall family, so configurations
and applications compare at a glance.  The slices aggregate the trauma
taxonomy into the families the paper's discussion uses: branch
(if_pred/if_nfa/if_brch), memory (mm_* plus rg_mem), dependences
(remaining rg_*), resource (ful_*/diq_*/rename/st_data), and frontend
(if_* other than branch).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.analysis.reporting import render_table
from repro.uarch.config import ME1, PROC_4WAY, ProcessorConfig
from repro.uarch.results import SimulationResult

#: Stall families in display order.
FAMILIES: tuple[str, ...] = (
    "base", "branch", "memory", "dependence", "resource", "frontend", "other"
)

_BRANCH = {"if_pred", "if_nfa", "if_brch"}
_MEMORY_PREFIX = "mm_"
_MEMORY_EXTRA = {"rg_mem", "st_data"}
_RESOURCE_PREFIXES = ("ful_", "diq_")
_RESOURCE_EXTRA = {"rename", "decode"}
_FRONTEND_PREFIX = "if_"


def classify_trauma(name: str) -> str:
    """Map one trauma class to its CPI-stack family."""
    if name in _BRANCH:
        return "branch"
    if name.startswith(_MEMORY_PREFIX) or name in _MEMORY_EXTRA:
        return "memory"
    if name.startswith("rg_"):
        return "dependence"
    if name.startswith(_RESOURCE_PREFIXES) or name in _RESOURCE_EXTRA:
        return "resource"
    if name.startswith(_FRONTEND_PREFIX):
        return "frontend"
    return "other"


@dataclass(frozen=True)
class CpiStack:
    """One application's CPI decomposition."""

    application: str
    cpi: float
    slices: dict[str, float]  # family -> CPI contribution

    @property
    def base(self) -> float:
        """Useful-work component."""
        return self.slices.get("base", 0.0)

    def dominant_family(self) -> str:
        """Largest stall family (excluding base)."""
        stalls = {k: v for k, v in self.slices.items() if k != "base"}
        return max(stalls, key=stalls.get) if stalls else "base"


def cpi_stack_from_result(
    application: str, result: SimulationResult
) -> CpiStack:
    """Build a CPI stack from one simulation result.

    Each charged stall cycle becomes its family's slice; cycles not
    charged to any trauma form the base (dispatch made progress).
    """
    instructions = max(result.instructions, 1)
    slices = {family: 0.0 for family in FAMILIES}
    charged = 0
    for name, cycles in result.traumas.items():
        if not cycles:
            continue
        charged += cycles
        slices[classify_trauma(name)] += cycles / instructions
    slices["base"] = max(result.cycles - charged, 0) / instructions
    return CpiStack(
        application=application,
        cpi=result.cycles / instructions,
        slices=slices,
    )


def cpi_stacks(
    context: ExperimentContext,
    config: ProcessorConfig | None = None,
) -> list[CpiStack]:
    """CPI stacks for the whole suite on one configuration."""
    config = config or PROC_4WAY.with_memory(ME1)
    stacks = []
    for name in context.suite.names:
        result = context.simulate_app(name, config)
        stacks.append(cpi_stack_from_result(name, result))
    return stacks


def cpi_stack_report(stacks: list[CpiStack]) -> str:
    """Render the per-application CPI stacks."""
    rows = []
    for stack in stacks:
        rows.append(
            [stack.application, f"{stack.cpi:.2f}"]
            + [f"{stack.slices[family]:.2f}" for family in FAMILIES]
            + [stack.dominant_family()]
        )
    return render_table(
        "CPI stacks (4-way, me1)",
        ["application", "CPI"] + list(FAMILIES) + ["dominant stall"],
        rows,
    )
