"""Trace-level workload characterization tools.

The paper characterizes workloads through the pipeline model; these
helpers characterize the *traces themselves* — the properties that
explain the pipeline results:

* :func:`branch_statistics` — bias and per-site behaviour of the
  branch stream (why predictors succeed or fail);
* :func:`dependency_profile` — producer-consumer distance distribution
  (the available ILP);
* :func:`working_set` — distinct cache lines touched per data region;
* :func:`reuse_distance_profile` — exact LRU stack distances over the
  line reference stream, from which the miss rate of *any* fully
  associative LRU cache size falls out without simulation (Mattson's
  one-pass algorithm with a Fenwick tree).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.opcodes import MEMORY_OPS, OpClass
from repro.isa.trace import Trace

_IS_MEMORY = np.zeros(len(OpClass), dtype=bool)
_IS_MEMORY[[int(op) for op in MEMORY_OPS]] = True


@dataclass(frozen=True)
class BranchStatistics:
    """Summary of a trace's branch stream."""

    branches: int
    taken: int
    static_sites: int
    strongly_biased_sites: int

    @property
    def taken_fraction(self) -> float:
        """Fraction of branches taken."""
        return self.taken / self.branches if self.branches else 0.0

    @property
    def biased_site_fraction(self) -> float:
        """Share of static branches that are >=90% one-directional."""
        if not self.static_sites:
            return 0.0
        return self.strongly_biased_sites / self.static_sites


def branch_statistics(trace: Trace, bias_threshold: float = 0.9) -> BranchStatistics:
    """Compute direction bias of the branch stream (vectorized)."""
    columns = trace.columns
    branch_mask = columns["ops"] == OpClass.CTRL
    outcomes = columns["takens"][branch_mask].astype(np.int64)
    sites, site_of = np.unique(columns["pcs"][branch_mask], return_inverse=True)
    taken_per_site = np.bincount(site_of, weights=outcomes).astype(np.int64)
    total_per_site = np.bincount(site_of)
    dominant = np.maximum(taken_per_site, total_per_site - taken_per_site)
    biased = int(np.count_nonzero(dominant >= bias_threshold * total_per_site))
    return BranchStatistics(
        branches=int(outcomes.size),
        taken=int(outcomes.sum()),
        static_sites=int(sites.size),
        strongly_biased_sites=biased,
    )


@dataclass(frozen=True)
class DependencyProfile:
    """Producer-consumer distance distribution."""

    edges: int
    mean_distance: float
    short_fraction: float  # distance <= 4 (hard to hide in a pipeline)

    @property
    def has_long_range_ilp(self) -> bool:
        """True when most dependencies are far apart."""
        return self.short_fraction < 0.5


def dependency_profile(trace: Trace, short: int = 4) -> DependencyProfile:
    """Measure how far results travel before being consumed (vectorized)."""
    sources = trace.columns["sources"]
    valid = sources >= 0
    distances = (
        np.arange(len(sources), dtype=np.int64)[:, np.newaxis] - sources
    )[valid]
    edges = int(distances.size)
    return DependencyProfile(
        edges=edges,
        mean_distance=float(distances.sum()) / edges if edges else 0.0,
        short_fraction=(
            int(np.count_nonzero(distances <= short)) / edges if edges else 0.0
        ),
    )


def working_set(trace: Trace, line_bytes: int = 128) -> dict[str, int]:
    """Distinct lines and footprint of the data reference stream."""
    columns = trace.columns
    memory_mask = _IS_MEMORY[columns["ops"]]
    addresses = columns["addresses"][memory_mask]
    sizes = np.maximum(columns["sizes"][memory_mask], 1).astype(np.int64)
    first = addresses // line_bytes
    last = (addresses + sizes - 1) // line_bytes
    spanning = first != last
    if spanning.any():
        # Rare multi-line references: expand their spans individually.
        extra: list[int] = []
        for lo, hi in zip(first[spanning].tolist(), last[spanning].tolist()):
            extra.extend(range(lo, hi + 1))
        lines = np.union1d(first, np.array(extra, dtype=np.int64))
    else:
        lines = np.unique(first)
    return {
        "references": int(addresses.size),
        "lines": int(lines.size),
        "bytes": int(lines.size) * line_bytes,
    }


class _Fenwick:
    """Binary indexed tree over access timestamps."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)
        self._size = size

    def add(self, position: int, value: int) -> None:
        position += 1
        while position <= self._size:
            self._tree[position] += value
            position += position & -position

    def prefix_sum(self, position: int) -> int:
        position += 1
        total = 0
        while position > 0:
            total += self._tree[position]
            position -= position & -position
        return total


def reuse_distance_profile(
    trace: Trace, line_bytes: int = 128
) -> dict[int, int]:
    """Exact LRU stack-distance histogram of the line reference stream.

    Returns distance -> count; distance -1 holds cold (first-touch)
    references.  The miss count of a fully associative LRU cache with
    capacity C lines equals ``cold + sum(count for d, count in profile
    if d >= C)``.
    """
    columns = trace.columns
    addresses = (
        columns["addresses"][_IS_MEMORY[columns["ops"]]] // line_bytes
    ).tolist()
    n = len(addresses)
    tree = _Fenwick(n)
    last_access: dict[int, int] = {}
    histogram: dict[int, int] = {}
    for time, line in enumerate(addresses):
        previous = last_access.get(line)
        if previous is None:
            histogram[-1] = histogram.get(-1, 0) + 1
        else:
            distance = tree.prefix_sum(time - 1) - tree.prefix_sum(previous)
            histogram[distance] = histogram.get(distance, 0) + 1
            tree.add(previous, -1)
        tree.add(time, 1)
        last_access[line] = time
    return histogram


def lru_miss_rate(profile: dict[int, int], capacity_lines: int) -> float:
    """Miss rate of a fully associative LRU cache from a reuse profile."""
    total = sum(profile.values())
    if not total:
        return 0.0
    misses = profile.get(-1, 0) + sum(
        count for distance, count in profile.items()
        if distance >= capacity_lines
    )
    return misses / total
