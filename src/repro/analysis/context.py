"""Shared experiment context: workload suite + simulation cache.

Most figures sweep one knob while holding everything else fixed, so the
same (trace, configuration) pair shows up across experiments.  The
context memoizes simulation results by a structural key, letting the
whole benchmark suite share work within a process.

A context may additionally carry an
:class:`~repro.runtime.engine.ExperimentRuntime`, which layers a
persistent content-addressed cache and (optionally) a multiprocessing
worker pool underneath the memo: ``simulate_trace`` routes misses
through it, and :meth:`ExperimentContext.simulate_many` lets the
analysis sweeps hand over a whole batch of (trace, config) pairs to fan
out at once.  Without a runtime the behaviour is exactly the historical
serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.isa.trace import Trace
from repro.runtime.keys import config_key as _config_key
from repro.uarch.config import ProcessorConfig
from repro.uarch.results import SimulationResult
from repro.uarch.simulator import simulate
from repro.workloads.suite import WorkloadSuite

if TYPE_CHECKING:
    from repro.runtime.engine import ExperimentRuntime

#: A simulate request: (trace, config) or (trace, config, track_occupancy).
SimRequest = (
    "tuple[Trace, ProcessorConfig] | tuple[Trace, ProcessorConfig, bool]"
)


@dataclass
class ExperimentContext:
    """Workload suite plus a memoized simulation runner."""

    suite: WorkloadSuite = field(default_factory=WorkloadSuite)
    runtime: "ExperimentRuntime | None" = None
    _results: dict[tuple, SimulationResult] = field(
        default_factory=dict, repr=False
    )

    def _memo_key(
        self, trace: Trace, config: ProcessorConfig, track_occupancy: bool
    ) -> tuple:
        return (id(trace), len(trace), _config_key(config), track_occupancy)

    def simulate_trace(
        self,
        trace: Trace,
        config: ProcessorConfig,
        track_occupancy: bool = False,
    ) -> SimulationResult:
        """Simulate (memoized on trace identity + structural config key)."""
        key = self._memo_key(trace, config, track_occupancy)
        result = self._results.get(key)
        if result is None:
            if self.runtime is not None:
                result = self.runtime.simulate(
                    trace, config, track_occupancy=track_occupancy
                )
            else:
                result = simulate(
                    trace, config, track_occupancy=track_occupancy
                )
            self._results[key] = result
        return result

    def simulate_app(
        self,
        name: str,
        config: ProcessorConfig,
        track_occupancy: bool = False,
    ) -> SimulationResult:
        """Simulate one Table I workload's standard trace."""
        return self.simulate_trace(
            self.suite.trace(name), config, track_occupancy=track_occupancy
        )

    def simulate_many(self, requests: Iterable[tuple]) -> list[SimulationResult]:
        """Resolve a batch of (trace, config[, track_occupancy]) requests.

        With a parallel runtime the memo misses fan out over the worker
        pool; without one they run serially.  Either way every result
        lands in the memo, so re-requesting any pair afterwards (the
        pattern in the analysis sweeps: prefetch the batch, then loop)
        is free and yields values identical to the serial path.
        """
        normalized = [
            (request[0], request[1],
             bool(request[2]) if len(request) > 2 else False)
            for request in requests
        ]
        keys = [self._memo_key(*request) for request in normalized]
        if self.runtime is not None:
            missing: list[tuple] = []
            missing_keys: list[tuple] = []
            seen: set[tuple] = set()
            for key, request in zip(keys, normalized):
                if key in self._results or key in seen:
                    continue
                seen.add(key)
                missing.append(request)
                missing_keys.append(key)
            if missing:
                for key, result in zip(
                    missing_keys, self.runtime.simulate_many(missing)
                ):
                    self._results[key] = result
        else:
            # Serial path: group memo misses by trace so figure-driver
            # loops (one trace under many configurations) execute as
            # lockstep batches; occupancy requests stay scalar.
            from repro.uarch.simulator import simulate_batch

            pending: dict[int, tuple] = {}
            ordered: list[tuple] = []
            seen: set[tuple] = set()
            for key, (trace, config, occupancy) in zip(keys, normalized):
                if key in self._results or key in seen:
                    continue
                seen.add(key)
                if occupancy:
                    self.simulate_trace(trace, config, occupancy)
                    continue
                group = pending.get(id(trace))
                if group is None:
                    group = (trace, [], [])
                    pending[id(trace)] = group
                    ordered.append(group)
                group[1].append(key)
                group[2].append(config)
            for trace, group_keys, configs in ordered:
                for key, result in zip(
                    group_keys, simulate_batch(trace, configs)
                ):
                    self._results[key] = result
        return [self._results[key] for key in keys]

    def prefetch_workloads(
        self, names: tuple[str, ...] | None = None
    ) -> None:
        """Generate the standard traces for many workloads at once.

        A no-op without a runtime; with one, trace tasks resolve from
        the persistent cache or fan out over the worker pool, and the
        results land in the suite's in-process trace cache.
        """
        if self.runtime is not None:
            self.runtime.run_workloads(self.suite, names)
