"""Shared experiment context: workload suite + simulation cache.

Most figures sweep one knob while holding everything else fixed, so the
same (trace, configuration) pair shows up across experiments.  The
context memoizes simulation results by a structural key, letting the
whole benchmark suite share work within a process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.trace import Trace
from repro.uarch.config import ProcessorConfig
from repro.uarch.results import SimulationResult
from repro.uarch.simulator import simulate
from repro.workloads.suite import WorkloadSuite


def _config_key(config: ProcessorConfig) -> tuple:
    """Structural identity of everything that can change a simulation."""
    memory = config.memory
    branch = config.branch

    def cache_key(cache) -> tuple:
        return (cache.size_bytes, cache.associativity, cache.line_bytes,
                cache.latency)

    def tlb_key(tlb) -> tuple:
        return (tlb.entries, tlb.associativity, tlb.page_bytes,
                tlb.miss_penalty)

    return (
        config.name,
        config.fetch_width,
        config.dispatch_width,
        config.retire_width,
        config.inflight,
        config.gpr,
        config.vpr,
        config.fpr,
        tuple(sorted((fu.value, count) for fu, count in config.units.items())),
        config.issue_queue_size,
        config.ibuffer_size,
        config.retire_queue,
        config.dcache_read_ports,
        config.dcache_write_ports,
        config.max_outstanding_misses,
        config.store_queue_size,
        config.wide_load_extra_latency,
        cache_key(memory.il1),
        cache_key(memory.dl1),
        cache_key(memory.l2),
        memory.memory_latency,
        tlb_key(memory.itlb),
        tlb_key(memory.dtlb),
        memory.sequential_prefetch,
        branch.kind,
        branch.table_entries,
        branch.btb_entries,
        branch.btb_associativity,
        branch.btb_miss_penalty,
        branch.max_predicted_branches,
        branch.mispredict_recovery,
    )


@dataclass
class ExperimentContext:
    """Workload suite plus a memoized simulation runner."""

    suite: WorkloadSuite = field(default_factory=WorkloadSuite)
    _results: dict[tuple, SimulationResult] = field(
        default_factory=dict, repr=False
    )

    def simulate_trace(
        self,
        trace: Trace,
        config: ProcessorConfig,
        track_occupancy: bool = False,
    ) -> SimulationResult:
        """Simulate (memoized on trace identity + structural config key)."""
        key = (id(trace), len(trace), _config_key(config), track_occupancy)
        result = self._results.get(key)
        if result is None:
            result = self._results[key] = simulate(
                trace, config, track_occupancy=track_occupancy
            )
        return result

    def simulate_app(
        self,
        name: str,
        config: ProcessorConfig,
        track_occupancy: bool = False,
    ) -> SimulationResult:
        """Simulate one Table I workload's standard trace."""
        return self.simulate_trace(
            self.suite.trace(name), config, track_occupancy=track_occupancy
        )
