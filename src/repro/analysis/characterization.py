"""Static trace characterization across the workload suite.

Applies the :mod:`repro.analysis.trace_stats` tools to the five
applications' traces, producing the pipeline-independent version of
the paper's story: branch-stream predictability (Fig 11's cause),
dependency distances (Fig 2's rg_* classes), and working sets with
reuse-distance miss curves (Fig 5 without running the pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.analysis.reporting import render_table
from repro.analysis.trace_stats import (
    branch_statistics,
    dependency_profile,
    lru_miss_rate,
    reuse_distance_profile,
    working_set,
)
from repro.uarch.config import KB

#: Fully associative LRU capacities for the reuse-based miss columns.
REUSE_CAPACITIES: tuple[int, ...] = (
    8 * KB // 128,
    32 * KB // 128,
    256 * KB // 128,
)


@dataclass(frozen=True)
class WorkloadCharacter:
    """One application's static trace profile."""

    application: str
    instructions: int
    branch_fraction: float
    taken_fraction: float
    biased_site_fraction: float
    mean_dependency_distance: float
    short_dependency_fraction: float
    working_set_bytes: int
    reuse_miss_rates: tuple[float, ...]


def characterize(context: ExperimentContext) -> list[WorkloadCharacter]:
    """Profile every suite application's standard trace."""
    context.prefetch_workloads()
    profiles = []
    for name in context.suite.names:
        trace = context.suite.trace(name)
        branches = branch_statistics(trace)
        dependencies = dependency_profile(trace)
        footprint = working_set(trace)
        reuse = reuse_distance_profile(trace)
        profiles.append(
            WorkloadCharacter(
                application=name,
                instructions=len(trace),
                branch_fraction=branches.branches / max(len(trace), 1),
                taken_fraction=branches.taken_fraction,
                biased_site_fraction=branches.biased_site_fraction,
                mean_dependency_distance=dependencies.mean_distance,
                short_dependency_fraction=dependencies.short_fraction,
                working_set_bytes=footprint["bytes"],
                reuse_miss_rates=tuple(
                    lru_miss_rate(reuse, capacity)
                    for capacity in REUSE_CAPACITIES
                ),
            )
        )
    return profiles


def characterization_report(profiles: list[WorkloadCharacter]) -> str:
    """Render the per-application characterization table."""
    capacity_labels = [
        f"miss@{capacity * 128 // KB}K" for capacity in REUSE_CAPACITIES
    ]
    rows = []
    for profile in profiles:
        rows.append(
            [
                profile.application,
                f"{profile.branch_fraction:.1%}",
                f"{profile.taken_fraction:.1%}",
                f"{profile.biased_site_fraction:.1%}",
                f"{profile.mean_dependency_distance:.1f}",
                f"{profile.short_dependency_fraction:.1%}",
                f"{profile.working_set_bytes // 1024}K",
            ]
            + [f"{rate:.2%}" for rate in profile.reuse_miss_rates]
        )
    return render_table(
        "Workload characterization (trace-level, no pipeline)",
        ["application", "branches", "taken", "biased sites",
         "mean dep dist", "short deps", "working set"] + capacity_labels,
        rows,
    )
