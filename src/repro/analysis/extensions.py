"""Beyond-the-paper studies: ablations and the full query sweep.

The paper evaluates all queries of its Table II but prints only the
Glutathione S-transferase results "for space reasons"; and it
identifies two design choices it never isolates — SSEARCH's SWAT
computation-avoidance fast path, and BLAST's two-hit window.  These
drivers fill those gaps:

* :func:`query_length_sweep` — per-query IPC/branch behaviour across
  the Table II lengths (143-567 aa);
* :func:`swat_ablation` — SSEARCH with the fast path disabled in the
  emitted stream: how much of the instruction count, the branch mix,
  and the misprediction exposure the optimization is responsible for;
* :func:`blast_window_ablation` — the two-hit window's effect on seed
  counts, extension counts, and trace size.
"""

from __future__ import annotations

from dataclasses import dataclass

from dataclasses import replace

from repro.align.blast.engine import BlastEngine, BlastOptions
from repro.analysis.context import ExperimentContext
from repro.analysis.reporting import render_table
from repro.bio.queries import TABLE2_QUERIES, make_query
from repro.kernels.blast_kernel import BlastKernel
from repro.kernels.registry import SUITE_BLAST_THRESHOLD
from repro.kernels.ssearch_kernel import SsearchKernel
from repro.uarch.config import ME1, PROC_4WAY
from repro.uarch.simulator import simulate


@dataclass(frozen=True)
class QuerySweepRow:
    """One Table II query's characterization."""

    accession: str
    family: str
    length: int
    instructions: int
    ipc: float
    control_fraction: float
    branch_accuracy: float


def query_length_sweep(
    context: ExperimentContext,
    budget: int | None = None,
) -> list[QuerySweepRow]:
    """Characterize SSEARCH across all Table II queries.

    Uses a per-query trace over the suite database (one third of the
    standard budget each, since ten queries are traced).
    """
    suite = context.suite
    budget = budget or max(20_000, suite.trace_budget // 3)
    config = PROC_4WAY.with_memory(ME1)
    rows = []
    for descriptor in TABLE2_QUERIES:
        query = make_query(descriptor)
        run = SsearchKernel().run(
            query, suite.database, record=True, limit=budget
        )
        result = context.simulate_trace(run.trace, config)
        rows.append(
            QuerySweepRow(
                accession=descriptor.accession,
                family=descriptor.family,
                length=descriptor.length,
                instructions=run.instruction_count,
                ipc=result.ipc,
                control_fraction=run.mix.control_fraction(),
                branch_accuracy=result.branch.accuracy,
            )
        )
    return rows


def query_sweep_report(rows: list[QuerySweepRow]) -> str:
    """Render the per-query table."""
    return render_table(
        "Query sweep: SSEARCH34 across the Table II queries (4-way, me1)",
        ["accession", "length", "IPC", "ctrl", "bp accuracy"],
        [
            (
                row.accession,
                row.length,
                f"{row.ipc:.2f}",
                f"{row.control_fraction:.1%}",
                f"{row.branch_accuracy:.1%}",
            )
            for row in rows
        ],
    )


@dataclass(frozen=True)
class SwatAblationResult:
    """SSEARCH with/without the SWAT fast path."""

    instructions_with: int
    instructions_without: int
    control_with: float
    control_without: float
    ipc_with: float
    ipc_without: float
    accuracy_with: float
    accuracy_without: float

    @property
    def instruction_inflation(self) -> float:
        """Naive-path instruction count relative to the optimized path."""
        if not self.instructions_with:
            return 0.0
        return self.instructions_without / self.instructions_with


def swat_ablation(context: ExperimentContext) -> SwatAblationResult:
    """Compare the emitted streams with and without computation avoidance.

    Both runs compute identical scores over the same database subjects
    (the optimized kernel's subject coverage at the standard budget).
    """
    suite = context.suite
    baseline = suite.run("ssearch34")
    subjects = max(1, baseline.subjects_processed)
    sliced = suite.database.slice(subjects)
    query = suite.query
    config = PROC_4WAY.with_memory(ME1)

    optimized = SsearchKernel(computation_avoidance=True).run(
        query, sliced, record=True
    )
    naive = SsearchKernel(computation_avoidance=False).run(
        query, sliced, record=True
    )
    assert optimized.scores == naive.scores

    result_optimized = context.simulate_trace(optimized.trace, config)
    result_naive = context.simulate_trace(naive.trace, config)
    return SwatAblationResult(
        instructions_with=optimized.instruction_count,
        instructions_without=naive.instruction_count,
        control_with=optimized.mix.control_fraction(),
        control_without=naive.mix.control_fraction(),
        ipc_with=result_optimized.ipc,
        ipc_without=result_naive.ipc,
        accuracy_with=result_optimized.branch.accuracy,
        accuracy_without=result_naive.branch.accuracy,
    )


def swat_ablation_report(result: SwatAblationResult) -> str:
    """Render the SWAT ablation comparison."""
    return render_table(
        "Ablation: SSEARCH34 SWAT computation avoidance (same work)",
        ["variant", "instructions", "ctrl", "IPC", "bp accuracy"],
        [
            (
                "fast path on",
                result.instructions_with,
                f"{result.control_with:.1%}",
                f"{result.ipc_with:.2f}",
                f"{result.accuracy_with:.1%}",
            ),
            (
                "fast path off",
                result.instructions_without,
                f"{result.control_without:.1%}",
                f"{result.ipc_without:.2f}",
                f"{result.accuracy_without:.1%}",
            ),
        ],
    )


@dataclass(frozen=True)
class WindowAblationRow:
    """BLAST behaviour at one two-hit window."""

    window: int
    two_hits: int
    ungapped_extensions: int
    gapped_extensions: int
    instructions: int
    best_score: int


def blast_window_ablation(
    context: ExperimentContext,
    windows: tuple[int, ...] = (10, 20, 40, 80),
    subjects: int = 10,
) -> list[WindowAblationRow]:
    """Sweep the two-hit window over a fixed database slice."""
    suite = context.suite
    sliced = suite.database.slice(subjects)
    query = suite.query
    rows = []
    for window in windows:
        options = BlastOptions(
            threshold=SUITE_BLAST_THRESHOLD, window=window
        )
        engine = BlastEngine(query, options)
        search_result = engine.search(sliced)
        run = BlastKernel(options).run(query, sliced, record=False)
        best = search_result.hits[0].score if search_result.hits else 0
        rows.append(
            WindowAblationRow(
                window=window,
                two_hits=engine.statistics.two_hits,
                ungapped_extensions=engine.statistics.ungapped_extensions,
                gapped_extensions=engine.statistics.gapped_extensions,
                instructions=run.mix.total,
                best_score=best,
            )
        )
    return rows


@dataclass(frozen=True)
class PrefetchAblationRow:
    """One application's IPC with and without next-line prefetch."""

    application: str
    ipc_base: float
    ipc_prefetch: float
    miss_rate_base: float
    miss_rate_prefetch: float

    @property
    def speedup(self) -> float:
        """IPC gain from prefetching."""
        return self.ipc_prefetch / self.ipc_base if self.ipc_base else 0.0


def prefetch_ablation(
    context: ExperimentContext,
    apps: tuple[str, ...] = ("blast", "ssearch34", "sw_vmx128"),
) -> list[PrefetchAblationRow]:
    """Next-line-prefetch design study on the me1 configuration.

    The paper identifies BLAST as memory-bound; the next-line
    prefetcher is the textbook response, and it works: BLAST recovers
    a double-digit IPC gain (its per-subject diagonal arrays are
    touched in ascending order, so their cold misses prefetch well),
    while the cache-resident applications are unmoved.
    """
    base_config = PROC_4WAY.with_memory(ME1)
    prefetch_config = PROC_4WAY.with_memory(
        replace(ME1, name="me1+pf", sequential_prefetch=True)
    )
    rows = []
    for name in apps:
        trace = context.suite.trace(name)
        base = context.simulate_trace(trace, base_config)
        accelerated = context.simulate_trace(trace, prefetch_config)
        rows.append(
            PrefetchAblationRow(
                application=name,
                ipc_base=base.ipc,
                ipc_prefetch=accelerated.ipc,
                miss_rate_base=base.dl1.miss_rate,
                miss_rate_prefetch=accelerated.dl1.miss_rate,
            )
        )
    return rows


def prefetch_ablation_report(rows: list[PrefetchAblationRow]) -> str:
    """Render the prefetch design study."""
    return render_table(
        "Design study: next-line prefetch (4-way, me1)",
        ["application", "IPC", "IPC +prefetch", "speedup",
         "DL1 miss", "DL1 miss +prefetch"],
        [
            (
                row.application,
                f"{row.ipc_base:.2f}",
                f"{row.ipc_prefetch:.2f}",
                f"{row.speedup:.2f}x",
                f"{row.miss_rate_base:.2%}",
                f"{row.miss_rate_prefetch:.2%}",
            )
            for row in rows
        ],
    )


def window_ablation_report(rows: list[WindowAblationRow]) -> str:
    """Render the two-hit-window sweep."""
    return render_table(
        "Ablation: BLAST two-hit window",
        ["window", "two-hits", "ungapped ext", "gapped ext",
         "instructions", "best score"],
        [
            (
                row.window,
                row.two_hits,
                row.ungapped_extensions,
                row.gapped_extensions,
                row.instructions,
                row.best_score,
            )
            for row in rows
        ],
    )
