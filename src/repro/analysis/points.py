"""Per-point report extraction for sweep campaigns.

A sweep produces one :class:`~repro.uarch.results.SimulationResult` per
grid point; reports, manifests, and dashboards all want the same small,
JSON-stable summary of each point rather than the full result object.
This module owns that extraction: the scalar metric catalogue
(:data:`SCALAR_METRICS`), the CPI-stack slice (reusing the Fig. 2
trauma-family classification), and the trauma distribution.

``repro.sweep`` stores these dicts in its persistent manifest, and
``repro.verify.sweeplint`` validates spec ``[report] metrics`` entries
against the same catalogue, so a spec can never ask for a metric the
extraction cannot produce.
"""

from __future__ import annotations

from repro.analysis.cpi_stack import FAMILIES, cpi_stack_from_result
from repro.uarch.results import SimulationResult

#: Scalar metrics a sweep report may select, in display order.
SCALAR_METRICS: tuple[str, ...] = (
    "ipc",
    "cpi",
    "cycles",
    "instructions",
    "il1_miss_rate",
    "dl1_miss_rate",
    "l2_miss_rate",
    "branch_accuracy",
)

#: Default report selection (what the paper's tables headline).
DEFAULT_METRICS: tuple[str, ...] = ("ipc", "cycles", "dl1_miss_rate")


def point_metrics(result: SimulationResult) -> dict:
    """JSON-stable summary of one sweep point's simulation.

    Contains every :data:`SCALAR_METRICS` entry, the CPI stack sliced
    by trauma family (``cpi_stack``), and the raw non-zero trauma
    distribution (``traumas``) so reports can render Fig. 2 style
    breakdowns per point without reloading cached results.
    """
    stack = cpi_stack_from_result(result.trace_name, result)
    return {
        "ipc": result.ipc,
        "cpi": result.cycles / max(result.instructions, 1),
        "cycles": result.cycles,
        "instructions": result.instructions,
        "il1_miss_rate": result.il1.miss_rate,
        "dl1_miss_rate": result.dl1.miss_rate,
        "l2_miss_rate": result.l2.miss_rate,
        "branch_accuracy": result.branch.accuracy,
        "cpi_stack": {family: stack.slices[family] for family in FAMILIES},
        "traumas": {
            name: cycles
            for name, cycles in sorted(result.traumas.items())
            if cycles
        },
    }
