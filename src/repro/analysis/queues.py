"""Figure 10: issue-queue and in-flight occupancy distributions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import ExperimentContext
from repro.analysis.reporting import render_table
from repro.uarch.config import ME1, PROC_4WAY

#: The two applications the paper plots (space reasons).
FIG10_APPS: tuple[str, ...] = ("fasta34", "sw_vmx128")


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy histograms per application and queue."""

    histograms: dict[str, dict[str, dict[int, int]]]

    def mean(self, app: str, queue: str) -> float:
        """Mean occupancy of one queue."""
        histogram = self.histograms[app].get(queue, {})
        total = sum(histogram.values())
        if not total:
            return 0.0
        return sum(k * v for k, v in histogram.items()) / total


def fig10_queue_occupancy(
    context: ExperimentContext, apps: tuple[str, ...] = FIG10_APPS
) -> OccupancyResult:
    """Record per-cycle occupancy on the 4-way / me1 configuration."""
    config = PROC_4WAY.with_memory(ME1)
    context.prefetch_workloads(tuple(apps))
    context.simulate_many([
        (context.suite.trace(name), config, True) for name in apps
    ])
    histograms = {}
    for name in apps:
        result = context.simulate_app(name, config, track_occupancy=True)
        histograms[name] = result.queue_occupancy
    return OccupancyResult(histograms=histograms)


def fig10_report(result: OccupancyResult) -> str:
    """Render mean occupancies plus coarse distributions."""
    blocks = []
    for app, queues in result.histograms.items():
        rows = []
        for queue, histogram in queues.items():
            total = sum(histogram.values()) or 1
            mean = result.mean(app, queue)
            empty = histogram.get(0, 0) / total
            peak = max(histogram, default=0)
            rows.append(
                (queue, f"{mean:.2f}", f"{empty:.1%}", peak)
            )
        blocks.append(
            render_table(
                f"Figure 10: queue occupancy, {app}",
                ["queue", "mean", "empty cycles", "max seen"],
                rows,
            )
        )
    return "\n\n".join(blocks)
