"""Figure 1: instruction breakdown per workload.

Paper shape: ctrl ~25%/18%/16% in ssearch/fasta/blast vs ~2% in the
SIMD codes; loads 16-22% everywhere; stores small; integer ALU the
largest scalar class.
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_fig1_instruction_breakdown(benchmark, context, save_report):
    data, report = run_once(benchmark, lambda: run_experiment("fig1", context))
    save_report("fig1", report)
    print("\n" + report)
    assert data.fractions("ssearch34")["ctrl"] > 0.18
    assert data.fractions("sw_vmx128")["ctrl"] < 0.05
    assert data.fractions("blast")["ialu"] > 0.4
    for name in data.mixes:
        mix = data.mixes[name]
        assert mix.load_fraction() > 0.10, name
        assert mix.store_fraction() < mix.load_fraction(), name
