"""Extension: CPI stacks — the modern summary of Figure 2.

One row per application, decomposing cycles per instruction into base
work plus branch / memory / dependence / resource stall families.  The
dominant families must match the paper's conclusions.
"""

from conftest import run_once

from repro.analysis.cpi_stack import cpi_stack_report, cpi_stacks


def test_cpi_stacks(benchmark, context, save_report):
    stacks = run_once(benchmark, lambda: cpi_stacks(context))
    report = cpi_stack_report(stacks)
    save_report("cpi_stacks", report)
    print("\n" + report)
    by_app = {stack.application: stack for stack in stacks}
    assert by_app["ssearch34"].dominant_family() == "branch"
    assert by_app["fasta34"].dominant_family() == "branch"
    assert by_app["sw_vmx128"].dominant_family() == "dependence"
    assert by_app["sw_vmx256"].dominant_family() in ("dependence", "memory")
    assert by_app["blast"].dominant_family() in ("memory", "branch")
