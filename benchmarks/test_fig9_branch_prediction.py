"""Figure 9: IPC with the real vs a perfect branch predictor.

Paper shape: perfect prediction transforms the branchy codes (SSEARCH
most, then FASTA and BLAST) and leaves the SIMD codes untouched.
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_fig9_branch_prediction(benchmark, context, save_report):
    data, report = run_once(benchmark, lambda: run_experiment("fig9", context))
    save_report("fig9", report)
    print("\n" + report)
    assert data.gain("ssearch34") > 0.15
    assert data.gain("fasta34") > 0.10
    assert data.gain("sw_vmx128") < 0.05
    assert data.gain("sw_vmx256") < 0.05
    assert data.gain("ssearch34") > data.gain("blast")
