"""Design study: sequential prefetch vs the paper's baseline memory.

Not a paper figure — the paper diagnoses BLAST as memory-bound; the
textbook response is a next-line prefetcher, and the study confirms it
is the right one: BLAST gains double-digit IPC (its diagonal arrays
and the database stream prefetch well) while the cache-resident
applications are unmoved.
"""

from conftest import run_once

from repro.analysis.extensions import prefetch_ablation, prefetch_ablation_report


def test_ablation_prefetch(benchmark, context, save_report):
    rows = run_once(benchmark, lambda: prefetch_ablation(context))
    report = prefetch_ablation_report(rows)
    save_report("ablation_prefetch", report)
    print("\n" + report)
    by_app = {row.application: row for row in rows}
    # The memory-bound application gains the most, and substantially.
    assert by_app["blast"].speedup > 1.05
    assert by_app["blast"].speedup > by_app["ssearch34"].speedup
    assert by_app["blast"].speedup > by_app["sw_vmx128"].speedup
    # Prefetch never hurts.
    for row in rows:
        assert row.speedup >= 0.99, row.application
