"""Extension: pipeline-independent trace characterization.

Branch bias, dependency distances, working sets, and reuse-distance
miss curves per application — the raw material behind Figures 2, 5,
and 11, computed without the cycle model.
"""

from conftest import run_once

from repro.analysis.characterization import characterization_report, characterize


def test_characterization(benchmark, context, save_report):
    profiles = run_once(benchmark, lambda: characterize(context))
    report = characterization_report(profiles)
    save_report("characterization", report)
    print("\n" + report)
    by_app = {profile.application: profile for profile in profiles}
    # BLAST touches by far the largest footprint per instruction.
    blast_density = (by_app["blast"].working_set_bytes
                     / by_app["blast"].instructions)
    ssearch_density = (by_app["ssearch34"].working_set_bytes
                       / by_app["ssearch34"].instructions)
    assert blast_density > 5 * ssearch_density
    # SIMD branch streams are almost entirely one-directional.
    assert by_app["sw_vmx128"].taken_fraction > 0.8
    # Reuse-based miss rates fall with capacity for every application.
    for profile in profiles:
        rates = profile.reuse_miss_rates
        assert rates[0] >= rates[-1]
