"""Figure 7: IPC vs L1 hit latency (1-10 cycles, 32K/32K/1M, 4-way).

Paper shape: every application loses IPC as the L1 slows; the
compute-bound SIMD codes are the most sensitive (their wavefront loads
both feed dependence chains and saturate the slower cache ports), the
memory-bound BLAST the least (it is already limited behind the L1).
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_fig7_l1_latency(benchmark, context, save_report):
    data, report = run_once(benchmark, lambda: run_experiment("fig7", context))
    save_report("fig7", report)
    print("\n" + report)
    for name, values in data.ipc.items():
        assert values[0] >= values[-1], name
    sensitivities = {
        name: data.sensitivity(name) for name in context.suite.names
    }
    assert max(sensitivities, key=sensitivities.get) == "sw_vmx256"
    assert all(value > 0.2 for value in sensitivities.values())
