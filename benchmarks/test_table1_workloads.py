"""Table I: regenerate the workload description table."""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_table1_workloads(benchmark, context, save_report):
    _, report = run_once(benchmark, lambda: run_experiment("table1", context))
    save_report("table1", report)
    print("\n" + report)
    assert "ssearch34" in report
    assert "blastp -d -G 10 -E 1 -b 0" in report
