"""Ablation: BLAST's two-hit window.

Not a paper figure — it quantifies the two-hit heuristic the BLAST
kernel implements: widening the window admits more seeds and hence
more extension work (larger traces), trading speed for sensitivity.
"""

from conftest import run_once

from repro.analysis.extensions import (
    blast_window_ablation,
    window_ablation_report,
)


def test_ablation_blast_window(benchmark, context, save_report):
    rows = run_once(
        benchmark,
        lambda: blast_window_ablation(context, windows=(10, 20, 40, 80)),
    )
    report = window_ablation_report(rows)
    save_report("ablation_blast_window", report)
    print("\n" + report)
    assert rows[-1].two_hits >= rows[0].two_hits
    assert rows[-1].instructions >= rows[0].instructions
