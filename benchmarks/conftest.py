"""Benchmark fixtures: the full-scale experiment context.

Scale: the default suite traces each application up to 300k
instructions over a 200-sequence synthetic database; set the
``REPRO_SCALE`` environment variable (e.g. ``REPRO_SCALE=4``) to grow
every trace budget proportionally.  All experiments share one
:class:`ExperimentContext`, so simulations common to several figures
(e.g. Figs 3 and 4) run once.

Each benchmark writes its paper-style report to
``benchmarks/reports/<experiment>.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.context import ExperimentContext
from repro.workloads.suite import WorkloadSuite


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext(suite=WorkloadSuite())


@pytest.fixture(scope="session")
def report_dir() -> Path:
    path = Path(__file__).parent / "reports"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def save_report(report_dir):
    def save(identifier: str, report: str) -> None:
        (report_dir / f"{identifier}.txt").write_text(report + "\n")

    return save


def run_once(benchmark, func):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
