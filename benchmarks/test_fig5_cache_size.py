"""Figure 5: DL1 miss rate and IPC vs cache size (1K-2M).

Paper shape: BLAST has by far the worst miss rate at mid sizes and
needs large caches; all other codes fit by ~32K (SSEARCH everywhere);
the SIMD codes gain the most IPC once their working set fits (~8K+).
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_fig5_cache_size(benchmark, context, save_report):
    data, report = run_once(benchmark, lambda: run_experiment("fig5", context))
    save_report("fig5", report)
    print("\n" + report)
    sizes = data.sizes
    index_32k = sizes.index(32 * 1024)
    at_32k = {name: rates[index_32k] for name, rates in data.miss_rate.items()}
    assert at_32k["blast"] == max(at_32k.values())
    assert at_32k["ssearch34"] < 0.01
    for name, rates in data.miss_rate.items():
        assert rates[0] >= rates[-1], name
        # Everything fits in 2M (what is left is the compulsory misses
        # of streaming the database once).
        assert rates[-1] < 0.02, name
    # SIMD codes gain IPC as their working set (query profile ~10K)
    # fits; the amplitude is smaller than the paper's 2x because our
    # wavefront loads prefetch ahead of the dependence chain (see
    # EXPERIMENTS.md).
    for name in ("sw_vmx128", "sw_vmx256"):
        values = data.ipc[name]
        assert values[-1] > 1.03 * values[0], name
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:])), name
