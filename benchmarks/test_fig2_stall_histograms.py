"""Figure 2: trauma histograms on the 4-way / 32K / 1M configuration.

Paper shape: BLAST led by integer/memory dependencies plus L2 misses;
SSEARCH dominated by branch misprediction; the SIMD codes by rg_vi and
rg_vper, with memory classes emerging for the 256-bit variant.
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_fig2_stall_histograms(benchmark, context, save_report):
    data, report = run_once(benchmark, lambda: run_experiment("fig2", context))
    save_report("fig2", report)
    print("\n" + report)
    assert data.top("ssearch34", 1)[0][0] == "if_pred"
    vmx_top = [name for name, _ in data.top("sw_vmx128", 2)]
    assert "rg_vi" in vmx_top or "rg_vper" in vmx_top
    blast = data.histograms["blast"]
    assert blast["mm_dl2"] + blast["mm_dl1"] + blast["rg_mem"] > 0
