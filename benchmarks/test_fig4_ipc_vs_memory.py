"""Figure 4: IPC vs memory configuration and width.

Paper shape: only the SIMD codes exceed 2 IPC; scalar codes sit near 1
and do not improve with ideal memory (their limits are branches and
dependences), while BLAST's IPC rises markedly with ideal memory.
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_fig4_ipc_vs_memory(benchmark, context, save_report):
    data, report = run_once(benchmark, lambda: run_experiment("fig4", context))
    save_report("fig4", report)
    print("\n" + report)
    assert data.ipc[("sw_vmx128", "4-way", "me1")] > data.ipc[
        ("ssearch34", "4-way", "me1")
    ]
    assert data.ipc[("sw_vmx256", "8-way", "meinf")] > 2.0
    # BLAST gains the most from ideal memory.
    blast_gain = (
        data.ipc[("blast", "4-way", "meinf")]
        / data.ipc[("blast", "4-way", "me1")]
    )
    ssearch_gain = (
        data.ipc[("ssearch34", "4-way", "meinf")]
        / data.ipc[("ssearch34", "4-way", "me1")]
    )
    assert blast_gain > ssearch_gain
