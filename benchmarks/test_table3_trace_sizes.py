"""Table III: trace sizes over one common database slice.

Paper shape: ssearch34 >> sw_vmx128 > sw_vmx256 > fasta34 > blast
(319.8M / 79.0M / 65.6M / 27.5M / 7.7M instructions).
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_table3_trace_sizes(benchmark, context, save_report):
    data, report = run_once(
        benchmark, lambda: run_experiment("table3", context)
    )
    save_report("table3", report)
    print("\n" + report)
    assert data.ordering_matches_paper()
    relative = data.normalized()
    assert relative["sw_vmx256"] < relative["sw_vmx128"] < 0.5
    assert relative["blast"] < relative["fasta34"]
