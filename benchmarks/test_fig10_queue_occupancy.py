"""Figure 10: issue-queue and in-flight occupancy (FASTA, SW_vmx128).

Paper shape: FASTA's queues are mostly empty (pipeline flushes from
mispredictions limit ILP), while SW_vmx128 keeps its vector-integer
queue busy and sustains many in-flight instructions.
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_fig10_queue_occupancy(benchmark, context, save_report):
    data, report = run_once(benchmark, lambda: run_experiment("fig10", context))
    save_report("fig10", report)
    print("\n" + report)
    assert data.mean("sw_vmx128", "VI-Q") > data.mean("fasta34", "FIX-Q")
    assert data.mean("sw_vmx128", "INFLIGHT") > data.mean(
        "fasta34", "INFLIGHT"
    )
    fasta_fix = data.histograms["fasta34"]["FIX-Q"]
    total = sum(fasta_fix.values())
    assert sum(v for k, v in fasta_fix.items() if k <= 2) > 0.3 * total
