"""Figure 6: DL1 miss rate and IPC vs associativity at 32K.

Paper shape: only BLAST's miss rate moves notably with associativity,
and even for BLAST the IPC barely improves — 32K is simply too small
for its working set, whatever the organization.
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_fig6_cache_associativity(benchmark, context, save_report):
    data, report = run_once(benchmark, lambda: run_experiment("fig6", context))
    save_report("fig6", report)
    print("\n" + report)
    blast_gain = data.miss_rate["blast"][0] - data.miss_rate["blast"][-1]
    for name in ("ssearch34", "fasta34", "sw_vmx128"):
        other_gain = abs(
            data.miss_rate[name][0] - data.miss_rate[name][-1]
        )
        assert blast_gain >= other_gain - 1e-9, name
    # BLAST's IPC moves much less than its miss-rate gain suggests.
    blast_ipc = data.ipc["blast"]
    assert max(blast_ipc) - min(blast_ipc) < 0.4
