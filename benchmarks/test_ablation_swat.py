"""Ablation: SSEARCH's SWAT computation-avoidance fast path.

Not a paper figure — it isolates the design choice behind the paper's
SSEARCH findings: the fast path removes most per-cell work (that is
SSEARCH's speed over naive SW) at the cost of concentrating
data-dependent branches, which is why branch prediction dominates its
stall profile.
"""

from conftest import run_once

from repro.analysis.extensions import swat_ablation, swat_ablation_report


def test_ablation_swat(benchmark, context, save_report):
    data = run_once(benchmark, lambda: swat_ablation(context))
    report = swat_ablation_report(data)
    save_report("ablation_swat", report)
    print("\n" + report)
    assert data.instruction_inflation > 1.1
    assert data.control_without < data.control_with
