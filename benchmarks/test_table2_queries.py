"""Table II: regenerate the query-sequence table."""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_table2_queries(benchmark, context, save_report):
    _, report = run_once(benchmark, lambda: run_experiment("table2", context))
    save_report("table2", report)
    print("\n" + report)
    assert "P14942" in report
    assert "143" in report and "567" in report
