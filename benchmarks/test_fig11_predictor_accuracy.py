"""Figure 11: branch prediction rate vs strategy and table size.

Paper shape: bimodal, gshare, and the combined GP predictor land
within a few points of each other, and accuracy saturates at small
table sizes — the residual mispredictions are data-dependent, not
capacity-driven.
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_fig11_predictor_accuracy(benchmark, context, save_report):
    data, report = run_once(benchmark, lambda: run_experiment("fig11", context))
    save_report("fig11", report)
    print("\n" + report)
    for app, strategies in data.accuracy.items():
        plateaus = [values[-1] for values in strategies.values()]
        assert max(plateaus) - min(plateaus) < 0.08, app
        assert data.saturation_size(app, "bimodal", 0.01) <= 4096, app
    assert data.accuracy["sw_vmx128"]["gp"][-1] > 0.95
