"""Extension: the full Table II query sweep.

The paper evaluated all Table II queries but printed only the
Glutathione S-transferase results "for space reasons"; this bench
regenerates the whole sweep for SSEARCH34, confirming the
characterization is stable across query lengths (143-567 aa).
"""

from conftest import run_once

from repro.analysis.extensions import query_length_sweep, query_sweep_report


def test_query_sweep(benchmark, context, save_report):
    rows = run_once(benchmark, lambda: query_length_sweep(context))
    report = query_sweep_report(rows)
    save_report("query_sweep", report)
    print("\n" + report)
    assert len(rows) == 10
    # The characterization is stable across query lengths: branchy
    # (>18% ctrl) with imperfect prediction for every query.
    for row in rows:
        assert row.control_fraction > 0.18
        assert row.branch_accuracy < 0.97
