"""Figure 3: execution cycles vs memory configuration and width.

Paper shape: BLAST (and to a lesser degree the SIMD codes) speed up
substantially from 32K caches to ideal memory; all applications gain
only modestly from wider pipelines.
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_fig3_cycles_vs_memory(benchmark, context, save_report):
    data, report = run_once(benchmark, lambda: run_experiment("fig3", context))
    save_report("fig3", report)
    print("\n" + report)

    def slowdown(app):
        small = data.cycles[(app, "4-way", "me1")]
        ideal = data.cycles[(app, "4-way", "meinf")]
        return (small - ideal) / small

    assert slowdown("blast") > 0.3          # paper: ~52%
    assert slowdown("blast") > slowdown("ssearch34")
    assert slowdown("blast") > slowdown("fasta34")
    for app in context.suite.names:
        assert data.cycles[(app, "16-way", "me1")] <= data.cycles[
            (app, "4-way", "me1")
        ]
