"""Figure 8: SW SIMD speedup vs width, with the +1-latency handicap.

Paper shape: sw_vmx256 beats sw_vmx128 by less than its instruction
reduction suggests (dependence chains and permute pressure), and stays
ahead (paper: ~5%) even when 256-bit loads pay one extra cycle.
"""

from conftest import run_once

from repro.analysis.experiments import run_experiment


def test_fig8_vmx_speedup(benchmark, context, save_report):
    data, report = run_once(benchmark, lambda: run_experiment("fig8", context))
    save_report("fig8", report)
    print("\n" + report)
    for index in range(len(data.widths)):
        fast = data.speedup["sw_vmx256"][index]
        handicapped = data.speedup["sw_vmx256+1lat"][index]
        assert fast > 1.0
        assert handicapped <= fast + 1e-9
        assert handicapped > 0.95
