"""Extension: the unit-tuning study the paper's motivation calls for.

Scales the vector-integer and fixed-point unit pools on the 4-way
baseline.  Expected shape: VI units unlock the SIMD codes (their
dominant stall is rg_vi contention/dependence) and do nothing for the
scalar codes; FX units move the scalar codes far less, because their
limits are branches and memory, not raw integer throughput.
"""

from conftest import run_once

from repro.analysis.design_space import unit_scaling_report, unit_scaling_study
from repro.isa.opcodes import FunctionalUnit


def test_design_space_units(benchmark, context, save_report):
    def run():
        vi = unit_scaling_study(context, FunctionalUnit.VI, counts=(1, 2, 4))
        fx = unit_scaling_study(context, FunctionalUnit.FX, counts=(1, 3, 6))
        return vi, fx

    vi, fx = run_once(benchmark, run)
    report = unit_scaling_report(vi) + "\n\n" + unit_scaling_report(fx)
    save_report("design_space", report)
    print("\n" + report)
    assert vi.gain("sw_vmx128") > 0.10
    assert vi.gain("ssearch34") < 0.05
    assert fx.gain("ssearch34") < vi.gain("sw_vmx128")
