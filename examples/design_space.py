"""Design-space exploration: tuning a processor for alignment codes.

The paper's stated purpose is to "help designers tune future processor
architectures" for sequence alignment.  This example acts on the
findings: starting from the 4-way baseline it evaluates the three
upgrades the characterization suggests — more vector-integer units
(for the SIMD codes), a bigger L1 (for BLAST), and a next-line
prefetcher (for BLAST's streaming) — and reports which applications
each upgrade actually helps.

Run:  python examples/design_space.py
"""

from dataclasses import replace

from repro.analysis.context import ExperimentContext
from repro.analysis.design_space import with_unit_count
from repro.bio.synthetic import SyntheticDatabaseConfig
from repro.isa.opcodes import FunctionalUnit
from repro.uarch.config import KB, ME1, PROC_4WAY, memory_with_dl1
from repro.workloads import WorkloadSuite

APPS = ("ssearch34", "sw_vmx128", "blast")


def main() -> None:
    suite = WorkloadSuite(
        database_config=SyntheticDatabaseConfig(
            sequence_count=120, family_count=4, family_size=3, seed=77,
            mean_length=280.0,
        ),
        # Long enough that cold-start misses stop dominating; shorter
        # traces make every app look prefetch-friendly.
        trace_budget=200_000,
    )
    context = ExperimentContext(suite=suite)

    baseline = PROC_4WAY.with_memory(ME1)
    upgrades = {
        "baseline (4-way/me1)": baseline,
        "+3 VI units": with_unit_count(baseline, FunctionalUnit.VI, 4),
        "128K DL1": PROC_4WAY.with_memory(memory_with_dl1(128 * KB, l2_mb=1)),
        "+prefetch": PROC_4WAY.with_memory(
            replace(ME1, name="me1+pf", sequential_prefetch=True)
        ),
    }

    print(f"{'configuration':<22}" + "".join(f"{app:>12}" for app in APPS))
    reference = {}
    for label, config in upgrades.items():
        cells = []
        for app in APPS:
            ipc = context.simulate_trace(suite.trace(app), config).ipc
            if label.startswith("baseline"):
                reference[app] = ipc
                cells.append(f"{ipc:>12.2f}")
            else:
                gain = ipc / reference[app] - 1
                cells.append(f"{ipc:>7.2f}{gain:>+5.0%}")
        print(f"{label:<22}" + "".join(cells))

    print("\nExpected shape: extra VI units only move the SIMD code, and")
    print("the memory upgrades move BLAST most (prefetch covers its")
    print("streaming and diagonal-array misses) — each application")
    print("responds to the resource its characterization says it is")
    print("starved of.")


if __name__ == "__main__":
    main()
