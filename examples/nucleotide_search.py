"""Nucleotide BLAST over a 2-bit packed database (paper listing 1).

The code the paper's listing 1 shows is BLAST's *nucleotide* word
finder unpacking a compressed database.  This example packs synthetic
DNA 4 bases/byte, searches it with the blastn-style engine, and then
characterizes the traced scan — whose unpack shift/mask chains make it
the most ALU-dense kernel in the repository.

Run:  python examples/nucleotide_search.py
"""

import random

from repro.align.blast.nucleotide import BlastnEngine
from repro.bio import Sequence, SequenceDatabase
from repro.bio.alphabet import DNA
from repro.bio.packed import PackedSequence
from repro.bio.synthetic import random_dna
from repro.kernels import BlastnKernel
from repro.uarch import ME1, PROC_4WAY, simulate


def main() -> None:
    rng = random.Random(17)
    query = Sequence("QUERY", random_dna(120, rng), alphabet=DNA)

    subjects = []
    for index in range(20):
        text = random_dna(2000, rng)
        if index in (4, 11):
            insert_at = 300 + 100 * index
            text = text[:insert_at] + query.text[20:90] + text[insert_at + 70:]
        subjects.append(Sequence(f"CONTIG_{index:02d}", text, alphabet=DNA))
    database = SequenceDatabase(subjects, alphabet=DNA, name="contigs")

    packed_bytes = sum(
        PackedSequence.from_sequence(s).packed_bytes for s in database
    )
    print(f"database: {database.residue_count} bases packed into "
          f"{packed_bytes} bytes (4 bases/byte)\n")

    engine = BlastnEngine(query)
    result = engine.search(database)
    print("top hits:")
    for hit in result.top(4):
        print(f"  {hit.subject_id:<12} score={hit.score}")
    print(f"(scanned {engine.words_scanned} positions, "
          f"{engine.word_hits} word hits, {engine.extensions} extensions)\n")

    run = BlastnKernel().run(query, database, record=True, limit=120_000)
    mix = run.mix
    print(f"traced {mix.total} instructions "
          f"({mix.total / database.residue_count:.1f} per base): "
          f"ialu {mix.breakdown()['ialu'] / mix.total:.1%}, "
          f"loads {mix.load_fraction():.1%}, ctrl {mix.control_fraction():.1%}")
    sim = simulate(run.trace, PROC_4WAY.with_memory(ME1))
    print(f"4-way/me1: IPC {sim.ipc:.2f}; top stalls {sim.trauma_top(3)}")


if __name__ == "__main__":
    main()
