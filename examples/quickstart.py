"""Quickstart: pairwise alignment and a small three-engine search.

Runs the paper's introduction example through Smith-Waterman, then
searches a small synthetic protein database with all three search
engines (SSEARCH-style rigorous SW, FASTA, BLAST) and prints their
top hits side by side.

Run:  python examples/quickstart.py
"""

from repro.align import (
    SsearchOptions,
    blast_search,
    fasta_search,
    format_report,
    smith_waterman,
    ssearch,
)
from repro.bio import (
    SyntheticDatabaseConfig,
    default_query,
    generate_database,
    homolog_of,
)


def main() -> None:
    # --- pairwise alignment (the paper's intro example) ---------------
    alignment = smith_waterman("CSTTPGGG", "CSDTNGLAWGG")
    print("Pairwise Smith-Waterman alignment:")
    print(alignment.pretty())
    print()

    # --- database search ----------------------------------------------
    database = generate_database(
        SyntheticDatabaseConfig(
            sequence_count=50, family_count=3, family_size=3, seed=11
        )
    )
    # Plant a true homolog of the default query so every engine has
    # something real to find.
    database.add(homolog_of(default_query(), seed=99))
    query = default_query()

    print(f"Searching {len(database)} sequences "
          f"({database.residue_count} residues) with query "
          f"{query.identifier} ({len(query)} aa)\n")

    sw_result = ssearch(query, database, SsearchOptions(show_histogram=False))
    print(format_report(sw_result, SsearchOptions(show_histogram=False), top=5))
    print()

    for label, result in (
        ("FASTA", fasta_search(query, database)),
        ("BLAST", blast_search(query, database)),
    ):
        print(f"{label} top hits:")
        for hit in result.top(5):
            extra = f" E={hit.evalue:.2g}" if hit.evalue != float("inf") else ""
            print(f"  {hit.subject_id:<16} score={hit.score}{extra}")
        print()


if __name__ == "__main__":
    main()
