"""The alignment-search service: batching, shedding, telemetry.

The batch pipeline amortizes fixed costs by construction; a *service*
has to win them back at runtime.  This example stands up the asyncio
service in-process (no sockets needed), fires a burst of concurrent
BLAST queries so the dynamic batcher folds them into shared database
passes, shows admission control shedding load when the intake queue is
too small for the burst, and reads the latency telemetry back out —
the same pipeline `python -m repro serve` exposes over TCP and
`python -m repro loadgen` benchmarks end to end (docs/serving.md).

Run:  python examples/serving_demo.py
"""

import asyncio

from repro.bio.synthetic import SyntheticDatabaseConfig, generate_database
from repro.serve.loadgen import LoopbackClient
from repro.serve.scheduler import BatchPolicy
from repro.serve.server import AlignmentService, ServeConfig

DATABASE = SyntheticDatabaseConfig(
    sequence_count=20, family_count=2, family_size=3, seed=2006,
    mean_length=150.0,
)


def burst(database, count: int, length: int = 60) -> list[dict]:
    """Search payloads sliced from the database (guaranteed hits)."""
    return [
        {
            "op": "search",
            "id": f"r{index}",
            "query_id": f"slice{index}",
            "query": database[index % len(database)].text[:length],
            "algorithm": "blast",
        }
        for index in range(count)
    ]


async def demo() -> None:
    database = generate_database(DATABASE)
    config = ServeConfig(
        database=DATABASE,
        shard_count=2,
        jobs=1,
        queue_capacity=8,
        policy=BatchPolicy(max_batch=8, max_wait=0.01),
    )
    async with AlignmentService(config) as service:
        client = LoopbackClient(service)
        pong = await client.request({"op": "ping", "id": "0"})
        print(f"service up (ping -> {pong['status']}); "
              f"database: {len(database)} sequences, "
              f"{database.residue_count} residues\n")

        # A burst of 8 concurrent searches: one batch, each shard
        # scanned once for all eight queries together.
        responses = await asyncio.gather(*(
            client.request(payload) for payload in burst(database, 8)
        ))
        print("burst of 8 concurrent queries:")
        for response in responses[:3]:
            best = response["result"]["hits"][0]
            print(f"  {response['id']}: status={response['status']} "
                  f"best={best['subject_id']} score={best['score']} "
                  f"evalue={best['evalue']:.2g}")
        print("  ...\n")

        # Overload: 24 requests against a capacity-8 queue.  The
        # overflow sheds immediately (the HTTP 429 analogue) instead
        # of growing an unbounded backlog.
        responses = await asyncio.gather(*(
            client.request(payload) for payload in burst(database, 24)
        ))
        statuses: dict[str, int] = {}
        for response in responses:
            statuses[response["status"]] = (
                statuses.get(response["status"], 0) + 1
            )
        print(f"burst of 24 against queue capacity 8: {statuses}\n")

        snapshot = (await client.request(
            {"op": "telemetry", "id": "t"}
        ))["telemetry"]
        counters = snapshot["counters"]
        latency = snapshot["histograms"]["serve.request.latency"]
        occupancy = snapshot["histograms"]["serve.batch.occupancy"]
        print("telemetry:")
        print(f"  completed={counters['serve.requests.completed']} "
              f"shed={counters['serve.requests.shed']} "
              f"batches={counters['serve.batches.executed']}")
        print(f"  latency p50={latency['p50'] * 1000:.1f}ms "
              f"p95={latency['p95'] * 1000:.1f}ms")
        print(f"  mean batch occupancy={occupancy['mean']:.1f} "
              f"requests/batch")


def main() -> None:
    asyncio.run(demo())


if __name__ == "__main__":
    main()
