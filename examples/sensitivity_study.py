"""Sensitivity vs speed: the trade-off that motivates the paper.

Smith-Waterman is "generally considered to be the most sensitive"
method; BLAST and FASTA trade sensitivity for an order of magnitude of
speed.  This example quantifies that on synthetic families: homologs of
the query are planted at increasing mutational divergence, and each
engine's ability to rank them above the background noise is measured.

Run:  python examples/sensitivity_study.py
"""

import time

from repro.align import blast_search, fasta_search, ssearch
from repro.bio import (
    MutationModel,
    SyntheticDatabaseConfig,
    default_query,
    generate_database,
    homolog_of,
)

#: Substitution rates of the planted homologs (higher = more diverged).
DIVERGENCES = (0.2, 0.4, 0.55, 0.7)


def main() -> None:
    query = default_query()
    database = generate_database(
        SyntheticDatabaseConfig(
            sequence_count=80, family_count=0, family_size=0, seed=23
        )
    )
    planted = []
    for index, rate in enumerate(DIVERGENCES):
        homolog = homolog_of(
            query, seed=1000 + index,
            mutation=MutationModel(substitution_rate=rate),
        )
        database.add(homolog)
        planted.append((homolog.identifier, rate))

    engines = {
        "SSEARCH (SW)": lambda: ssearch(query, database),
        "FASTA": lambda: fasta_search(query, database),
        "BLAST": lambda: blast_search(query, database),
    }

    print(f"query {query.identifier} vs {len(database)} sequences; "
          f"planted homologs at divergence {DIVERGENCES}\n")
    print(f"{'engine':<14} {'time':>7}  detected (rank<=10) per divergence")
    for label, runner in engines.items():
        start = time.time()
        result = runner()
        elapsed = time.time() - start
        ranks = {hit.subject_id: rank for rank, hit in enumerate(result.hits, 1)}
        detected = []
        for identifier, rate in planted:
            rank = ranks.get(identifier)
            detected.append(
                f"{rate:.2f}:{'YES(#%d)' % rank if rank and rank <= 10 else 'no'}"
            )
        print(f"{label:<14} {elapsed:6.2f}s  {'  '.join(detected)}")

    print("\nExpected shape: SW detects the most diverged homologs that the")
    print("heuristics begin to miss, at an order of magnitude more time.")


if __name__ == "__main__":
    main()
