"""Future work, realized: characterizing multiple sequence alignment.

The paper's conclusion lists "multiple sequences analysis" as the next
workload to characterize.  This example builds a progressive star MSA
of a synthetic protein family, then traces the MSA workload through
the same pipeline model used for the five paper workloads and reports
where its cycles go — unsurprisingly, it characterizes like the other
scalar dynamic-programming codes: branchy, branch-prediction-bound.

Run:  python examples/msa_future_work.py
"""

import random

from repro.align.msa import star_msa
from repro.analysis import render_histogram
from repro.bio import MutationModel, Sequence, SequenceDatabase
from repro.bio.synthetic import random_protein
from repro.kernels.msa_kernel import MsaKernel
from repro.uarch import ME1, PROC_4WAY, simulate


def make_family(count: int = 5, length: int = 100, seed: int = 31):
    rng = random.Random(seed)
    ancestor = random_protein(length, rng)
    model = MutationModel(substitution_rate=0.15, indel_rate=0.02)
    return [
        Sequence(f"MEMBER_{i}", model.mutate(ancestor, rng))
        for i in range(count)
    ]


def main() -> None:
    family = make_family()
    msa = star_msa(family)
    print(f"star MSA of {msa.sequence_count} sequences, "
          f"{msa.column_count} columns, center={family[msa.center_index].identifier}")
    print(msa.pretty(78))
    print(f"\nconsensus: {msa.consensus()}")
    print(f"sum-of-pairs score: {msa.sum_of_pairs_score()}\n")

    # Characterize the MSA workload on the 4-way baseline.
    center = family[msa.center_index]
    others = SequenceDatabase(
        [s for i, s in enumerate(family) if i != msa.center_index],
        name="family",
    )
    run = MsaKernel().run(center, others, record=True, limit=120_000)
    mix = run.mix
    print(f"traced {mix.total} instructions: "
          f"ctrl {mix.control_fraction():.1%}, "
          f"loads {mix.load_fraction():.1%}, "
          f"stores {mix.store_fraction():.1%}")
    result = simulate(run.trace, PROC_4WAY.with_memory(ME1))
    print(f"4-way/me1: IPC {result.ipc:.2f}, "
          f"branch accuracy {result.branch.accuracy:.1%}\n")
    print(render_histogram("MSA stall cycles by trauma", result.traumas))
    print("\nLike SSEARCH and FASTA, the MSA's pairwise DP stage is "
          "limited by branch prediction, not memory.")


if __name__ == "__main__":
    main()
