"""Micro-architecture exploration: trace a workload, vary the core.

Generates the instruction trace of one Table I workload over a small
synthetic database and runs it through several processor
configurations, printing IPC, cache behaviour, branch prediction, and
the dominant stall (trauma) classes — a miniature of the paper's
methodology.

Run:  python examples/microarch_exploration.py [workload]
      (workload in: ssearch34 sw_vmx128 sw_vmx256 fasta34 blast)
"""

import sys

from repro.analysis import render_histogram
from repro.bio import SyntheticDatabaseConfig, default_query, generate_database
from repro.kernels import create_kernel
from repro.uarch import ME1, MEINF, PROC_4WAY, PROC_8WAY, simulate


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "blast"
    database = generate_database(
        SyntheticDatabaseConfig(
            sequence_count=40, family_count=3, family_size=3, seed=7
        )
    )
    query = default_query()

    kernel = create_kernel(workload)
    run = kernel.run(query, database, record=True, limit=80_000)
    mix = run.mix
    print(f"workload {workload}: {mix.total} instructions "
          f"({run.subjects_processed} subjects"
          f"{', truncated' if run.truncated else ''})")
    print(f"  ctrl {mix.control_fraction():.1%}  "
          f"loads {mix.load_fraction():.1%}  "
          f"stores {mix.store_fraction():.1%}\n")

    configs = [
        ("4-way, 32K/32K/1M", PROC_4WAY.with_memory(ME1)),
        ("4-way, ideal memory", PROC_4WAY.with_memory(MEINF)),
        ("8-way, 32K/32K/1M", PROC_8WAY.with_memory(ME1)),
    ]
    for label, config in configs:
        result = simulate(run.trace, config)
        print(f"{label}: {result.cycles} cycles, IPC {result.ipc:.2f}, "
              f"BP {result.branch.accuracy:.1%}, "
              f"DL1 miss {result.dl1.miss_rate:.2%}")
    print()

    result = simulate(run.trace, PROC_4WAY.with_memory(ME1))
    print(render_histogram(
        f"stall cycles by trauma ({workload}, 4-way/me1)", result.traumas
    ))


if __name__ == "__main__":
    main()
