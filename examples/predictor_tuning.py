"""Branch predictor tuning on an application's real branch stream.

Replays the branch outcomes of a branchy workload (SSEARCH by default)
through bimodal, gshare, and combined (GP) predictors at a range of
table sizes — the standalone version of the paper's Figure 11 — and
reports where each strategy saturates.

Run:  python examples/predictor_tuning.py [workload]
"""

import sys

from repro.bio import SyntheticDatabaseConfig, default_query, generate_database
from repro.kernels import create_kernel
from repro.uarch import run_predictor_only

SIZES = tuple(16 << i for i in range(12))  # 16 .. 32K entries
STRATEGIES = ("bimodal", "gshare", "gp")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "ssearch34"
    database = generate_database(
        SyntheticDatabaseConfig(
            sequence_count=30, family_count=2, family_size=3, seed=3
        )
    )
    run = create_kernel(workload).run(
        default_query(), database, record=True, limit=120_000
    )
    trace = run.trace
    branches = trace.branch_count()
    print(f"{workload}: {len(trace)} instructions, {branches} branches "
          f"({branches / len(trace):.1%})\n")

    header = "entries " + "".join(f"{s:>8}" for s in SIZES)
    print(header)
    for strategy in STRATEGIES:
        accuracies = []
        for size in SIZES:
            result, _ = run_predictor_only(trace, strategy, size)
            accuracies.append(result.accuracy)
        print(f"{strategy:<8}" + "".join(f"{a:8.1%}" for a in accuracies))

    print("\nExpected shape (paper Fig. 11): all strategies within a few")
    print("points of each other, saturating by ~512-1K entries — the")
    print("mispredictions left are data-dependent, not capacity-driven.")


if __name__ == "__main__":
    main()
