"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

import repro.__main__ as cli


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig5" in output
        assert "table3" in output

    def test_help(self, capsys):
        assert cli.main([]) == 0
        assert "python -m repro" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert cli.main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_static_table(self, capsys, monkeypatch):
        # table1 needs no simulation, so it is fast enough for a test.
        assert cli.main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "ssearch34" in output
        assert "completed" in output

    def test_trace_usage_errors(self, capsys):
        assert cli.main(["trace"]) == 2
        assert "usage" in capsys.readouterr().err
        assert cli.main(["trace", "hmmer", "x.npz"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_trace_export(self, tmp_path, capsys, monkeypatch):
        # Keep the export fast: tiny scale.
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        path = tmp_path / "blast.npz"
        assert cli.main(["trace", "blast", str(path)]) == 0
        assert path.exists()
        from repro.isa.serialize import load_trace

        trace = load_trace(path)
        assert len(trace) > 0
        trace.validate()


def experiment_body(output: str) -> str:
    """Report text without the timing/cache summary lines."""
    return "\n".join(
        line for line in output.splitlines()
        if not line.startswith("[fig2 completed")
    )


class TestParallelCli:
    def test_parallel_matches_serial_and_warm_cache_runs_nothing(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert cli.main(["fig2"]) == 0
        serial = experiment_body(capsys.readouterr().out)

        cache_dir = tmp_path / "cache"
        report_path = tmp_path / "cold.json"
        assert cli.main([
            "fig2", "--jobs", "2", "--cache-dir", str(cache_dir),
            "--report", str(report_path),
        ]) == 0
        cold = capsys.readouterr().out
        assert experiment_body(cold) == serial
        assert "cache:" in cold
        cold_report = json.loads(report_path.read_text())
        assert cold_report["jobs"] == 2
        assert cold_report["totals"]["simulate_executions"] > 0

        warm_path = tmp_path / "warm.json"
        assert cli.main([
            "fig2", "--jobs", "2", "--cache-dir", str(cache_dir),
            "--report", str(warm_path),
        ]) == 0
        assert experiment_body(capsys.readouterr().out) == serial
        warm_report = json.loads(warm_path.read_text())
        assert warm_report["totals"]["simulate_executions"] == 0
        assert warm_report["totals"]["trace_executions"] == 0
        assert warm_report["totals"]["cache_misses"] == 0
        assert warm_report["totals"]["cache_hits"] > 0


class TestCacheCli:
    @staticmethod
    def store_one_result(root) -> None:
        from repro.runtime.cache import ResultCache
        from repro.uarch.results import (
            BranchResult,
            CacheResult,
            SimulationResult,
        )

        ResultCache(root).store_result("ab" * 16, SimulationResult(
            trace_name="t", config_name="c", memory_name="m",
            instructions=10, cycles=20, traumas={},
            branch=BranchResult(1, 1, 1, 0),
            il1=CacheResult(1, 0), dl1=CacheResult(1, 0),
            l2=CacheResult(1, 0),
        ))

    def test_stats_and_clean(self, tmp_path, capsys):
        self.store_one_result(tmp_path)
        assert cli.main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "1 simulation result" in capsys.readouterr().out
        assert cli.main(["cache", "clean", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert cli.main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "0 simulation result" in capsys.readouterr().out

    def test_cache_dir_from_environment(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cli.main(["cache", "stats"]) == 0
        assert "0 simulation result" in capsys.readouterr().out

    def test_cache_without_dir_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cli.main(["cache", "stats"]) == 2
        assert "cache-dir" in capsys.readouterr().err
