"""Unit tests for the ``python -m repro`` command-line interface."""

import pytest

import repro.__main__ as cli


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig5" in output
        assert "table3" in output

    def test_help(self, capsys):
        assert cli.main([]) == 0
        assert "python -m repro" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert cli.main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_static_table(self, capsys, monkeypatch):
        # table1 needs no simulation, so it is fast enough for a test.
        assert cli.main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "ssearch34" in output
        assert "completed" in output

    def test_trace_usage_errors(self, capsys):
        assert cli.main(["trace"]) == 2
        assert "usage" in capsys.readouterr().err
        assert cli.main(["trace", "hmmer", "x.npz"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_trace_export(self, tmp_path, capsys, monkeypatch):
        # Keep the export fast: tiny scale.
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        path = tmp_path / "blast.npz"
        assert cli.main(["trace", "blast", str(path)]) == 0
        assert path.exists()
        from repro.isa.serialize import load_trace

        trace = load_trace(path)
        assert len(trace) > 0
        trace.validate()
