"""Tests for trace-window sampling."""

import pytest

from repro.analysis.sampling import extract_window, sampled_simulation
from repro.isa.builder import TraceBuilder
from repro.isa.trace import Trace
from repro.uarch.config import ME1, PROC_4WAY
from repro.uarch.simulator import simulate


def steady_trace(iterations=600):
    """A homogeneous loop: alu chain + load + biased branch."""
    builder = TraceBuilder("steady")
    register = builder.ialu("init")
    for index in range(iterations):
        load = builder.iload("ld", 0x10000 + (index % 64) * 8, (register,))
        register = builder.ialu("add", (register, load))
        builder.ialu("cmp", (register,))
        builder.ctrl("loop", taken=index % 16 != 15, backward=True)
    return builder.build()


class TestExtractWindow:
    def test_rebases_sources(self):
        trace = steady_trace(50)
        window = extract_window(trace, 40, 30)
        window.validate()
        assert len(window) == 30

    def test_drops_out_of_window_dependencies(self):
        builder = TraceBuilder("deps")
        first = builder.ialu("a")
        for _ in range(10):
            builder.ialu("b", (first,))
        trace = builder.build()
        window = extract_window(trace, 5, 5)
        assert all(not instr.sources for instr in window)

    def test_window_past_end_clamped(self):
        trace = steady_trace(20)
        window = extract_window(trace, len(trace) - 3, 100)
        assert len(window) == 3

    def test_invalid_parameters(self):
        trace = steady_trace(10)
        with pytest.raises(ValueError):
            extract_window(trace, -1, 5)
        with pytest.raises(ValueError):
            extract_window(trace, 0, 0)


class TestSampledSimulation:
    def test_warmed_windows_match_steady_state(self):
        trace = steady_trace(800)
        config = PROC_4WAY.with_memory(ME1)
        # Steady-state reference: the full trace with fully warm
        # structures (functional warmup over itself).
        steady = simulate(trace, config, warmup=trace)
        sampled = sampled_simulation(trace, config, windows=4)
        for ipc in sampled.per_window_ipc[1:]:  # window 0 is cold
            assert ipc == pytest.approx(steady.ipc, rel=0.15)

    def test_cold_window_slower_than_steady(self):
        trace = steady_trace(800)
        config = PROC_4WAY.with_memory(ME1)
        steady = simulate(trace, config, warmup=trace)
        sampled = sampled_simulation(trace, config, windows=4)
        assert sampled.per_window_ipc[0] < steady.ipc

    def test_homogeneous_trace_small_spread_once_warm(self):
        trace = steady_trace(800)
        sampled = sampled_simulation(
            trace, PROC_4WAY.with_memory(ME1), windows=4
        )
        warmed = sampled.per_window_ipc[1:]
        assert max(warmed) - min(warmed) < 0.2

    def test_fewer_instructions_simulated(self):
        trace = steady_trace(600)
        sampled = sampled_simulation(
            trace, PROC_4WAY.with_memory(ME1), windows=3
        )
        assert sampled.instructions < len(trace)

    def test_empty_trace(self):
        sampled = sampled_simulation(
            Trace("empty", []), PROC_4WAY.with_memory(ME1)
        )
        assert sampled.ipc == 0.0

    def test_workload_sampling_matches_trend(self, small_suite):
        """The paper's claim at miniature scale: a sampled run shows the
        same per-application trend as the full trace."""
        config = PROC_4WAY.with_memory(ME1)
        full_ipcs = {}
        sampled_ipcs = {}
        for name in ("ssearch34", "sw_vmx128"):
            trace = small_suite.trace(name)
            full_ipcs[name] = simulate(trace, config).ipc
            sampled_ipcs[name] = sampled_simulation(
                trace, config, windows=3
            ).ipc
        assert (full_ipcs["sw_vmx128"] > full_ipcs["ssearch34"]) == (
            sampled_ipcs["sw_vmx128"] > sampled_ipcs["ssearch34"]
        )
