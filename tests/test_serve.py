"""Tests for the ``repro.serve`` alignment-search service.

Covers the scheduler's edge cases (empty flush, deadline flush with a
single request, cancellation mid-batch, shed on a full queue), the
sharded scan's byte-identity with the unsharded search, and a full
loopback server/loadgen round trip.
"""

import asyncio
import json

from repro.align.batch import (
    ALGORITHMS,
    SearchParams,
    make_engine,
    make_query,
    merge_shards,
    result_to_dict,
    scan_shard,
    search_one,
)
from repro.bio.synthetic import SyntheticDatabaseConfig, generate_database
from repro.serve.admission import AdmissionController, QueueFull
from repro.serve.loadgen import LoopbackClient, main_loadgen
from repro.serve.protocol import ProtocolError, decode_line, decode_search
from repro.serve.scheduler import BatchPolicy, DynamicBatcher
from repro.serve.server import AlignmentService, ServeConfig, serve_tcp
from repro.serve.telemetry import Telemetry

#: Small database so service tests stay fast (jobs=1, no precompute).
SMALL_DATABASE = SyntheticDatabaseConfig(
    sequence_count=10,
    family_count=2,
    family_size=2,
    seed=91,
    mean_length=120.0,
)


def small_config(**overrides) -> ServeConfig:
    defaults = dict(
        database=SMALL_DATABASE,
        shard_count=2,
        jobs=1,
        queue_capacity=32,
        policy=BatchPolicy(max_batch=4, max_wait=0.005),
        default_timeout=30.0,
        precompute=False,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def db_queries(count: int, length: int = 48) -> list[tuple[str, str]]:
    """Query slices of the small database (guaranteed real hits)."""
    sequences = generate_database(SMALL_DATABASE)
    queries = []
    for index in range(count):
        subject = sequences[index % len(sequences)]
        queries.append((f"q{index}", subject.text[:length]))
    return queries


def search_payload(request_id: str, query_id: str, text: str) -> dict:
    return {
        "op": "search",
        "id": request_id,
        "query_id": query_id,
        "query": text,
        "algorithm": "blast",
    }


# -- scheduler edge cases ---------------------------------------------------


def run_scheduler_scenario(scenario):
    """Drive one batcher scenario; returns (executed batches, telemetry)."""

    async def main():
        telemetry = Telemetry()
        admission = AdmissionController(16, telemetry)
        executed: list[list[str]] = []

        async def execute(batch):
            executed.append([p.request.request_id for p in batch])
            for pending in batch:
                pending.resolve(
                    {"id": pending.request.request_id, "status": "ok"}
                )

        batcher = DynamicBatcher(
            admission, execute, BatchPolicy(max_batch=4, max_wait=0.01),
            telemetry,
        )
        loop = asyncio.get_running_loop()
        task = loop.create_task(batcher.run())
        try:
            await scenario(admission, loop)
            await asyncio.sleep(0.05)
        finally:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        return executed, telemetry

    return asyncio.run(main())


def make_request(request_id: str, timeout=None):
    data = search_payload(request_id, "q", "ACDEFGHIKLMNPQRSTVWY")
    if timeout is not None:
        data["timeout"] = timeout
    return decode_search(data)


class TestScheduler:
    def test_deadline_flush_with_one_request(self):
        # One lonely request: the batch flushes at max_wait with a
        # single member rather than waiting for a full batch.
        async def scenario(admission, loop):
            pending = admission.submit(make_request("solo"), loop.time())
            response = await pending.future
            assert response["status"] == "ok"

        executed, _ = run_scheduler_scenario(scenario)
        assert executed == [["solo"]]

    def test_full_batch_flushes_without_waiting(self):
        async def scenario(admission, loop):
            now = loop.time()
            pendings = [
                admission.submit(make_request(str(n)), now)
                for n in range(4)
            ]
            await asyncio.gather(*(p.future for p in pendings))

        executed, _ = run_scheduler_scenario(scenario)
        assert executed == [["0", "1", "2", "3"]]

    def test_cancelled_member_dropped_mid_batch(self):
        # A request cancelled while queued is pruned at flush time;
        # the rest of the batch still executes.
        async def scenario(admission, loop):
            now = loop.time()
            keep = admission.submit(make_request("keep"), now)
            drop = admission.submit(make_request("drop"), now)
            drop.cancelled = True
            response = await keep.future
            assert response["status"] == "ok"
            assert not drop.future.done()

        executed, _ = run_scheduler_scenario(scenario)
        assert executed == [["keep"]]

    def test_expired_member_resolved_with_timeout(self):
        async def scenario(admission, loop):
            now = loop.time()
            expired = admission.submit(
                make_request("late", timeout=0.001), now
            )
            await asyncio.sleep(0.005)
            live = admission.submit(make_request("live"), now)
            responses = await asyncio.gather(
                expired.future, live.future
            )
            assert responses[0]["status"] == "timeout"
            assert responses[1]["status"] == "ok"

        executed, telemetry = run_scheduler_scenario(scenario)
        assert executed == [["live"]]
        assert telemetry.counter("serve.requests.timeout").value == 1

    def test_empty_flush_executes_nothing(self):
        # Every member died while queued: the flush counts as empty
        # and the executor is never called.
        async def scenario(admission, loop):
            now = loop.time()
            for n in range(3):
                pending = admission.submit(make_request(str(n)), now)
                pending.cancelled = True
            await asyncio.sleep(0.05)

        executed, telemetry = run_scheduler_scenario(scenario)
        assert executed == []
        assert telemetry.counter("serve.batches.empty").value >= 1

    def test_shed_on_full_queue(self):
        async def main():
            telemetry = Telemetry()
            admission = AdmissionController(2, telemetry)
            now = 0.0
            admission.submit(make_request("a"), now)
            admission.submit(make_request("b"), now)
            try:
                admission.submit(make_request("c"), now)
            except QueueFull:
                return telemetry
            raise AssertionError("expected QueueFull")

        async def scenario():
            telemetry = await main()
            assert telemetry.counter("serve.requests.shed").value == 1
            assert telemetry.counter("serve.requests.admitted").value == 2

        asyncio.run(scenario())


# -- sharded scan determinism ----------------------------------------------


class TestShardMerge:
    def test_sharded_merge_byte_identical_to_unsharded(self):
        # For every algorithm and shard count: scanning shards
        # independently and merging must serialize byte-identically
        # to the unsharded reference search.
        database = generate_database(SMALL_DATABASE)
        query = make_query("probe", database[1].text[5:69])
        for algorithm in ALGORITHMS:
            params = SearchParams(algorithm=algorithm, best_count=50)
            reference = json.dumps(
                result_to_dict(search_one(params, query, database)),
                sort_keys=True,
            )
            for shard_count in (1, 2, 3):
                scans = []
                for shard in range(shard_count):
                    scans.extend(scan_shard(
                        params, [make_engine(params, query)],
                        database, shard, shard_count,
                    ))
                merged = json.dumps(
                    result_to_dict(merge_shards(
                        params, query, scans, database.name
                    )),
                    sort_keys=True,
                )
                assert merged == reference, (algorithm, shard_count)

    def test_batched_shard_scan_matches_solo(self):
        # A multi-query batched BLAST shard scan must produce each
        # query's scans exactly as a one-query scan would.
        database = generate_database(SMALL_DATABASE)
        params = SearchParams(algorithm="blast", best_count=50)
        queries = [
            make_query(name, text) for name, text in db_queries(5)
        ]
        for shard in range(2):
            batch_engines = [make_engine(params, q) for q in queries]
            batched = scan_shard(
                params, batch_engines, database, shard, 2
            )
            for query, scan in zip(queries, batched):
                solo = scan_shard(
                    params, [make_engine(params, query)],
                    database, shard, 2,
                )[0]
                assert scan.raw == solo.raw
                assert scan.residues == solo.residues


# -- protocol ---------------------------------------------------------------


class TestProtocol:
    def test_decode_rejects_bad_lines(self):
        for line in ("not json", '["list"]', '{"op": "bogus"}'):
            try:
                decode_line(line)
            except ProtocolError:
                continue
            raise AssertionError(f"expected ProtocolError for {line!r}")

    def test_decode_search_validates(self):
        for data in (
            {"op": "search"},                       # no query
            {"op": "search", "query": "ACD", "timeout": -1},
            {"op": "search", "query": "ACD", "algorithm": "hmmer"},
        ):
            try:
                decode_search(data)
            except ProtocolError:
                continue
            raise AssertionError(f"expected ProtocolError for {data!r}")


# -- loopback service round trip -------------------------------------------


class TestLoopback:
    def test_search_matches_unsharded_reference(self):
        async def main():
            async with AlignmentService(small_config()) as service:
                client = LoopbackClient(service)
                ping = await client.request({"op": "ping", "id": "p"})
                assert ping["status"] == "ok"

                queries = db_queries(6)
                responses = await asyncio.gather(*(
                    client.request(search_payload(str(n), name, text))
                    for n, (name, text) in enumerate(queries)
                ))
                database = generate_database(SMALL_DATABASE)
                params = SearchParams(algorithm="blast")
                for n, (name, text) in enumerate(queries):
                    response = responses[n]
                    assert response["id"] == str(n)
                    assert response["status"] == "ok"
                    assert response["shards"] == 2
                    reference = result_to_dict(search_one(
                        params, make_query(name, text), database
                    ))
                    assert response["result"] == reference
                    assert response["result"]["hits"]

                telemetry = await client.request(
                    {"op": "telemetry", "id": "t"}
                )
                counters = telemetry["telemetry"]["counters"]
                assert counters["serve.requests.completed"] == 6
                assert counters["serve.requests.shed"] == 0
        asyncio.run(main())

    def test_tcp_round_trip(self):
        async def main():
            async with AlignmentService(small_config()) as service:
                server = await serve_tcp(service, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                (name, text) = db_queries(1)[0]
                payload = search_payload("tcp-1", name, text)
                writer.write(
                    (json.dumps(payload) + "\n").encode()
                )
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["id"] == "tcp-1"
                assert response["status"] == "ok"
                assert response["result"]["hits"]
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
        asyncio.run(main())


class TestLoadgen:
    def test_loopback_loadgen_exits_clean(self, tmp_path):
        report_path = tmp_path / "loadgen.json"
        status = main_loadgen([
            "--requests", "12", "--concurrency", "4",
            "--jobs", "1", "--shards", "2", "--batch-size", "4",
            "--query-pool", "4", "--db-sequences", "10",
            "--db-seed", "91", "--no-precompute",
            "--fail-on-error", "--report", str(report_path),
        ])
        assert status == 0
        report = json.loads(report_path.read_text())
        assert report["statuses"]["ok"] == 12
        assert report["throughput_rps"] > 0
        assert "p95" in report["latency"]
        assert (
            report["telemetry"]["counters"]["serve.requests.completed"]
            == 12 + report["query_pool"]  # measured + warmup
        )

    def test_p99_deadline_gate_passes_and_fails(self, tmp_path):
        report_path = tmp_path / "deadline.json"
        base = [
            "--requests", "8", "--concurrency", "4",
            "--jobs", "1", "--shards", "2", "--batch-size", "4",
            "--query-pool", "4", "--db-sequences", "10",
            "--db-seed", "91", "--no-precompute",
        ]
        status = main_loadgen(base + [
            "--require-p99-ms", "60000", "--report", str(report_path),
        ])
        assert status == 0
        deadline = json.loads(report_path.read_text())["deadline"]
        assert deadline["compliant"] is True
        assert deadline["limit_ms"] == 60000
        assert deadline["within_pct"] == 100.0
        # An impossible deadline flips the exit code, nothing else.
        assert main_loadgen(base + ["--require-p99-ms", "0.00001"]) == 1


class TestMultiTargetLoadgen:
    def test_targets_round_robin_two_servers(self, tmp_path):
        import threading

        ports: list[int] = []
        ready = threading.Event()
        shared: dict = {}

        def serve_thread():
            async def main():
                shared["loop"] = asyncio.get_running_loop()
                shared["stop"] = asyncio.Event()
                async with AlignmentService(
                    small_config(replica="r0")
                ) as first, AlignmentService(
                    small_config(replica="r1")
                ) as second:
                    servers = [
                        await serve_tcp(first, "127.0.0.1", 0),
                        await serve_tcp(second, "127.0.0.1", 0),
                    ]
                    ports.extend(
                        s.sockets[0].getsockname()[1] for s in servers
                    )
                    ready.set()
                    await shared["stop"].wait()
                    for server in servers:
                        server.close()
                        await server.wait_closed()

            asyncio.run(main())

        thread = threading.Thread(target=serve_thread, daemon=True)
        thread.start()
        assert ready.wait(60), "servers never came up"
        try:
            report_path = tmp_path / "targets.json"
            targets = ",".join(f"127.0.0.1:{port}" for port in ports)
            status = main_loadgen([
                "--targets", targets,
                "--requests", "8", "--concurrency", "4",
                "--query-pool", "4", "--db-sequences", "10",
                "--db-seed", "91",
                "--require-p99-ms", "60000",
                "--fail-on-error", "--report", str(report_path),
            ])
            assert status == 0
            report = json.loads(report_path.read_text())
            assert report["statuses"]["ok"] == 8
            assert report["targets"] == [
                f"127.0.0.1:{port}" for port in ports
            ]
            assert report["deadline"]["compliant"] is True
            # Per-target telemetry keyed by address, each labelled
            # with the replica that produced it.
            assert set(report["telemetry"]) == set(report["targets"])
            labels = {
                view["labels"]["replica"]
                for view in report["telemetry"].values()
            }
            assert labels == {"r0", "r1"}
            # Round-robin: both servers actually served requests.
            for view in report["telemetry"].values():
                completed = view["counters"][
                    "serve.requests.completed"
                ]
                assert completed >= 1
        finally:
            shared["loop"].call_soon_threadsafe(shared["stop"].set)
            thread.join(30)


class TestDrain:
    def test_drain_sheds_new_requests_with_reason(self):
        async def main():
            queries = db_queries(1)
            async with AlignmentService(small_config()) as service:
                payload = search_payload("d1", *queries[0])
                first = await service.handle_line(json.dumps(payload))
                assert first["status"] == "ok"
                await service.drain(grace=2.0)
                assert service.draining
                late = await service.handle_line(
                    json.dumps(search_payload("d2", *queries[0]))
                )
                # The retryable busy signal a cluster router acts on.
                assert late["status"] == "shed"
                assert late["reason"] == "draining"

        asyncio.run(main())

    def test_drain_flushes_in_flight_requests(self):
        async def main():
            queries = db_queries(3)
            async with AlignmentService(small_config()) as service:
                loop = asyncio.get_running_loop()
                tasks = [
                    loop.create_task(service.handle_line(json.dumps(
                        search_payload(f"f{i}", *queries[i])
                    )))
                    for i in range(3)
                ]
                await asyncio.sleep(0)
                await service.drain(grace=30.0)
                responses = await asyncio.gather(*tasks)
                # Everything admitted before the drain still answers.
                assert all(
                    r["status"] in ("ok", "shed") for r in responses
                )
                admitted = [
                    r for r in responses if r["status"] == "ok"
                ]
                assert admitted, "drain dropped every in-flight request"
                assert service._inflight == 0

        asyncio.run(main())

    def test_status_op_reports_drain_state(self):
        async def main():
            async with AlignmentService(
                small_config(replica="r7")
            ) as service:
                status = await service.handle_line(
                    json.dumps({"op": "status", "id": "s"})
                )
                assert status["status"] == "ok"
                serve = status["serve"]
                assert serve["replica"] == "r7"
                assert serve["draining"] is False
                assert serve["queue_capacity"] == 32
                await service.drain(grace=1.0)
                drained = await service.handle_line(
                    json.dumps({"op": "status", "id": "s2"})
                )
                assert drained["serve"]["draining"] is True

        asyncio.run(main())
