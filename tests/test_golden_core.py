"""Golden equivalence tests for the out-of-order core.

``tests/golden/core_golden.json`` pins, for every paper workload:

* the content digest of the generated trace (and of a 6000-instruction
  slice) — these digests are the persistent result cache's keys, so
  they must never drift across refactors of the trace representation;
* the full ``SimulationResult`` (as ``result_to_dict``) under three
  processor/memory configurations.

The snapshots were generated with the pre-columnar implementation
(deque-based core, per-instruction ``Instruction`` objects), so these
tests prove the SoA trace + decode plane + timing-wheel core rewrite
is cycle-exact and cache-key-stable against the original model.  Do
not regenerate this file from current code to make a failure pass —
a mismatch means behaviour changed.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bio.synthetic import SyntheticDatabaseConfig
from repro.runtime.cache import result_to_dict
from repro.runtime.keys import trace_digest
from repro.uarch.config import ME1, ME2, ME3, PROC_4WAY, PROC_8WAY
from repro.uarch.simulator import simulate
from repro.workloads.suite import WorkloadSuite

_GOLDEN_PATH = Path(__file__).parent / "golden" / "core_golden.json"
_GOLDEN = json.loads(_GOLDEN_PATH.read_text())

#: label -> (configuration, track_occupancy), matching the snapshot run.
_CONFIGS = {
    "4-way/me1": (PROC_4WAY.with_memory(ME1), True),
    "4-way/me3": (PROC_4WAY.with_memory(ME3), False),
    "8-way/me2": (PROC_8WAY.with_memory(ME2), False),
}

_WORKLOADS = sorted(_GOLDEN["trace_digests"])


@pytest.fixture(scope="module")
def golden_suite() -> WorkloadSuite:
    parameters = _GOLDEN["suite"]
    return WorkloadSuite(
        database_config=SyntheticDatabaseConfig(
            sequence_count=parameters["sequence_count"],
            family_count=parameters["family_count"],
            family_size=parameters["family_size"],
            seed=parameters["seed"],
            mean_length=parameters["mean_length"],
        ),
        trace_budget=parameters["trace_budget"],
    )


@pytest.mark.parametrize("workload", _WORKLOADS)
def test_trace_digest_pinned(golden_suite, workload):
    """Generated traces hash to the pre-refactor cache keys."""
    trace = golden_suite.trace(workload)
    assert trace_digest(trace) == _GOLDEN["trace_digests"][workload]


@pytest.mark.parametrize("workload", _WORKLOADS)
def test_slice_digest_pinned(golden_suite, workload):
    """Zero-copy slices hash identically to materialized prefixes."""
    sliced = golden_suite.trace(workload).slice(_GOLDEN["suite"]["slice"])
    assert trace_digest(sliced) == _GOLDEN["slice_digests"][workload]


@pytest.mark.parametrize("label", sorted(_CONFIGS))
@pytest.mark.parametrize("workload", _WORKLOADS)
def test_simulation_result_matches_golden(golden_suite, workload, label):
    """The rewritten core is field-for-field identical to the original."""
    config, track_occupancy = _CONFIGS[label]
    sliced = golden_suite.trace(workload).slice(_GOLDEN["suite"]["slice"])
    result = simulate(sliced, config, track_occupancy=track_occupancy)
    assert result_to_dict(result) == _GOLDEN["results"][f"{workload}|{label}"]
