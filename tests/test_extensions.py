"""Tests for the beyond-the-paper ablation/sweep drivers."""

from repro.analysis.extensions import (
    blast_window_ablation,
    query_length_sweep,
    query_sweep_report,
    swat_ablation,
    swat_ablation_report,
    window_ablation_report,
)


class TestSwatAblation:
    def test_fast_path_shrinks_trace(self, context):
        result = swat_ablation(context)
        assert result.instruction_inflation > 1.1

    def test_fast_path_off_reduces_control_fraction(self, context):
        # Without the short path, the constant full update dilutes the
        # data-dependent branches.
        result = swat_ablation(context)
        assert result.control_without < result.control_with

    def test_report_renders(self, context):
        report = swat_ablation_report(swat_ablation(context))
        assert "fast path on" in report
        assert "fast path off" in report


class TestWindowAblation:
    def test_wider_window_more_seeds(self, context):
        rows = blast_window_ablation(context, windows=(10, 80), subjects=6)
        assert rows[1].two_hits >= rows[0].two_hits

    def test_extension_counters_monotone_with_seeds(self, context):
        rows = blast_window_ablation(context, windows=(10, 80), subjects=6)
        for row in rows:
            assert row.gapped_extensions <= row.ungapped_extensions
            assert row.ungapped_extensions <= row.two_hits

    def test_report_renders(self, context):
        rows = blast_window_ablation(context, windows=(20, 40), subjects=4)
        report = window_ablation_report(rows)
        assert "two-hit window" in report


class TestQuerySweep:
    def test_rows_cover_table2(self, context):
        rows = query_length_sweep(context, budget=8000)
        assert len(rows) == 10
        assert rows[0].length == 143
        assert rows[-1].length == 567

    def test_metrics_populated(self, context):
        rows = query_length_sweep(context, budget=8000)
        for row in rows:
            assert row.ipc > 0
            assert 0 < row.control_fraction < 0.5
            assert 0.5 < row.branch_accuracy <= 1.0

    def test_report_renders(self, context):
        rows = query_length_sweep(context, budget=6000)
        report = query_sweep_report(rows)
        assert "P14942" in report
