"""Unit tests for the standalone cache-only and predictor-only runs."""

from repro.isa.builder import TraceBuilder
from repro.uarch.config import KB, ME1, memory_with_dl1
from repro.uarch.simulator import simulate
from repro.uarch.config import PROC_4WAY
from repro.uarch.standalone import (
    run_cache_only,
    run_cache_only_batch,
    run_predictor_only,
    run_predictor_only_batch,
)


def memory_trace():
    builder = TraceBuilder("mem")
    for index in range(300):
        builder.iload("ld", 0x10000 + (index % 64) * 128)
        builder.ialu("op")
    return builder.build()


def branch_trace(pattern):
    builder = TraceBuilder("br")
    for taken in pattern:
        builder.ctrl("br", taken=taken)
    return builder.build()


class TestCacheOnly:
    def test_counts_match_full_simulation(self):
        trace = memory_trace()
        dl1, l2 = run_cache_only(trace, ME1)
        full = simulate(trace, PROC_4WAY.with_memory(ME1))
        assert dl1.accesses == full.dl1.accesses
        assert dl1.misses == full.dl1.misses

    def test_small_cache_misses_more(self):
        trace = memory_trace()
        small, _ = run_cache_only(trace, memory_with_dl1(1 * KB))
        large, _ = run_cache_only(trace, memory_with_dl1(32 * KB))
        assert small.miss_rate > large.miss_rate

    def test_working_set_fits(self):
        trace = memory_trace()  # 64 lines = 8KB working set
        dl1, _ = run_cache_only(trace, memory_with_dl1(16 * KB))
        assert dl1.misses == 64

    def test_non_memory_ops_ignored(self):
        builder = TraceBuilder("alu-only")
        for _ in range(100):
            builder.ialu("op")
        dl1, l2 = run_cache_only(builder.build(), ME1)
        assert dl1.accesses == 0


class TestPredictorOnly:
    def test_biased_stream_learned(self):
        result, predictor = run_predictor_only(
            branch_trace([True] * 300), "bimodal", 256
        )
        assert result.predictions == 300
        assert result.accuracy > 0.95

    def test_pattern_needs_history(self):
        pattern = [i % 2 == 0 for i in range(600)]
        bimodal, _ = run_predictor_only(branch_trace(pattern), "bimodal", 1024)
        gshare, _ = run_predictor_only(branch_trace(pattern), "gshare", 1024)
        assert gshare.accuracy > bimodal.accuracy

    def test_only_branches_counted(self):
        builder = TraceBuilder("mixed")
        builder.ialu("op")
        builder.ctrl("br", taken=True)
        builder.ialu("op2")
        result, _ = run_predictor_only(builder.build(), "gp", 64)
        assert result.predictions == 1


class TestBatchVariants:
    """The batch helpers equal N single runs, in order."""

    def test_cache_batch_matches_singles(self):
        trace = memory_trace()
        memories = [memory_with_dl1(size * KB) for size in (1, 4, 16, 64)]
        batch = run_cache_only_batch(trace, memories)
        singles = [run_cache_only(trace, memory) for memory in memories]
        assert batch == singles

    def test_predictor_batch_matches_singles(self):
        trace = branch_trace([i % 3 != 0 for i in range(400)])
        grid = [
            (kind, entries)
            for kind in ("bimodal", "gshare", "gp")
            for entries in (64, 1024)
        ]
        batch = run_predictor_only_batch(trace, grid)
        for (kind, entries), (result, predictor) in zip(grid, batch):
            single_result, _ = run_predictor_only(trace, kind, entries)
            assert result == single_result
            assert predictor.predictions == result.predictions

    def test_empty_batches(self):
        trace = memory_trace()
        assert run_cache_only_batch(trace, []) == []
        assert run_predictor_only_batch(trace, []) == []
