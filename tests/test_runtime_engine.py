"""End-to-end tests for the experiment runtime.

Covers the acceptance properties: parallel execution produces results
identical to the serial path, a warm persistent cache eliminates every
task execution, and a campaign survives workers killed mid-task.
"""

import pytest

from repro.analysis.context import ExperimentContext
from repro.analysis.stalls import fig2_report, fig2_stalls
from repro.bio.synthetic import SyntheticDatabaseConfig
from repro.runtime.engine import ExperimentRuntime
from repro.runtime.executor import KillFirstN
from repro.uarch.config import ME1, ME2, PROC_4WAY
from repro.uarch.simulator import simulate
from repro.workloads.suite import WorkloadSuite

TINY_DATABASE = SyntheticDatabaseConfig(
    sequence_count=20, family_count=2, family_size=2, seed=9, mean_length=150.0
)


def tiny_suite() -> WorkloadSuite:
    return WorkloadSuite(database_config=TINY_DATABASE, trace_budget=3000)


@pytest.fixture(scope="module")
def shared_suite() -> WorkloadSuite:
    return tiny_suite()


class TestSerialRuntime:
    def test_matches_direct_simulation(self, shared_suite):
        trace = shared_suite.trace("blast")
        config = PROC_4WAY.with_memory(ME1)
        with ExperimentRuntime() as runtime:
            result = runtime.simulate(trace, config)
        assert result == simulate(trace, config)

    def test_duplicate_requests_execute_once(self, shared_suite):
        trace = shared_suite.trace("blast")
        config = PROC_4WAY.with_memory(ME1)
        with ExperimentRuntime() as runtime:
            first, second = runtime.simulate_many(
                [(trace, config, False), (trace, config, False)]
            )
            assert first == second
            assert runtime.metrics.counts()["simulate_executions"] == 1

    def test_ephemeral_cache_hits_within_lifetime(self, shared_suite):
        trace = shared_suite.trace("blast")
        config = PROC_4WAY.with_memory(ME1)
        with ExperimentRuntime() as runtime:
            runtime.simulate(trace, config)
            runtime.simulate(trace, config)
            counts = runtime.metrics.counts()
        assert counts["simulate_executions"] == 1
        assert counts["cache_hits"] == 1


class TestParallelRuntime:
    def test_matches_serial_results(self, shared_suite):
        trace = shared_suite.trace("ssearch34")
        configs = [PROC_4WAY.with_memory(ME1), PROC_4WAY.with_memory(ME2)]
        serial = [simulate(trace, config) for config in configs]
        with ExperimentRuntime(jobs=2) as runtime:
            parallel = runtime.simulate_many(
                [(trace, config, False) for config in configs]
            )
        assert parallel == serial

    def test_run_workloads_matches_in_process_generation(self):
        reference = tiny_suite()
        expected = reference.run("blast")
        suite = tiny_suite()
        with ExperimentRuntime(jobs=2) as runtime:
            runs = runtime.run_workloads(suite, ("blast", "fasta34"))
        assert set(runs) == {"blast", "fasta34"}
        run = runs["blast"]
        assert run.mix == expected.mix
        assert run.subjects_processed == expected.subjects_processed
        assert run.truncated == expected.truncated
        assert len(run.trace) == len(expected.trace)
        # The suite's in-process cache was filled: no regeneration.
        assert suite.cached_run("blast") is run
        assert suite.trace("blast") is run.trace


class TestPersistentCache:
    def test_warm_cache_executes_nothing(self, tmp_path, shared_suite):
        trace = shared_suite.trace("sw_vmx128")
        config = PROC_4WAY.with_memory(ME1)
        with ExperimentRuntime(cache_dir=str(tmp_path)) as runtime:
            cold = runtime.simulate(trace, config)
            assert runtime.metrics.counts()["simulate_executions"] == 1
        with ExperimentRuntime(cache_dir=str(tmp_path)) as runtime:
            warm = runtime.simulate(trace, config)
            counts = runtime.metrics.counts()
        assert warm == cold
        assert counts["simulate_executions"] == 0
        assert counts["cache_hits"] == 1

    def test_warm_trace_cache_skips_generation(self, tmp_path):
        with ExperimentRuntime(cache_dir=str(tmp_path)) as runtime:
            cold = runtime.run_workloads(tiny_suite(), ("blast",))["blast"]
            assert runtime.metrics.counts()["trace_executions"] == 1
        with ExperimentRuntime(cache_dir=str(tmp_path)) as runtime:
            warm = runtime.run_workloads(tiny_suite(), ("blast",))["blast"]
            counts = runtime.metrics.counts()
        assert counts["trace_executions"] == 0
        assert counts["cache_hits"] == 1
        assert warm.mix == cold.mix
        assert len(warm.trace) == len(cold.trace)

    def test_report_written(self, tmp_path, shared_suite):
        trace = shared_suite.trace("blast")
        with ExperimentRuntime() as runtime:
            runtime.simulate(trace, PROC_4WAY.with_memory(ME1))
            report_path = tmp_path / "run.json"
            runtime.metrics.write_report(report_path, jobs=runtime.jobs)
        import json

        report = json.loads(report_path.read_text())
        assert report["jobs"] == 1
        assert report["totals"]["simulate_executions"] == 1
        assert len(report["tasks"]) == 1
        assert report["tasks"][0]["kind"] == "simulate"


class TestFaultTolerantCampaign:
    def test_killed_workers_retry_and_results_match_serial(self):
        serial_context = ExperimentContext(suite=tiny_suite())
        expected = fig2_stalls(serial_context)

        with ExperimentRuntime(
            jobs=2, retries=2, fault_hook=KillFirstN(2)
        ) as runtime:
            context = ExperimentContext(suite=tiny_suite(), runtime=runtime)
            observed = fig2_stalls(context)
            retries = runtime.metrics.counts()["retries"]

        assert observed.histograms == expected.histograms
        assert observed.cycles == expected.cycles
        assert fig2_report(observed) == fig2_report(expected)
        assert retries >= 1


class TestContextIntegration:
    def test_simulate_many_without_runtime(self, shared_suite):
        context = ExperimentContext(suite=shared_suite)
        trace = shared_suite.trace("blast")
        config = PROC_4WAY.with_memory(ME1)
        results = context.simulate_many(
            [(trace, config), (trace, config, True)]
        )
        assert results[0] == context.simulate_trace(trace, config)
        assert results[1].queue_occupancy

    def test_prefetch_workloads_without_runtime_is_noop(self, shared_suite):
        ExperimentContext(suite=shared_suite).prefetch_workloads()
