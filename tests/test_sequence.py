"""Unit tests for the Sequence value type."""

import pytest

from repro.bio.alphabet import PROTEIN
from repro.bio.sequence import Sequence, as_sequence


class TestSequence:
    def test_uppercases_text(self):
        seq = Sequence("s1", "acde")
        assert seq.text == "ACDE"

    def test_codes_match_alphabet(self):
        seq = Sequence("s1", "ARN")
        assert list(seq.codes) == [0, 1, 2]

    def test_len_and_residue_count(self):
        seq = Sequence("s1", "ACDEF")
        assert len(seq) == 5
        assert seq.residue_count == 5

    def test_indexing_and_iteration(self):
        seq = Sequence("s1", "ACDEF")
        assert seq[0] == "A"
        assert seq[1:3] == "CD"
        assert "".join(seq) == "ACDEF"

    def test_subsequence(self):
        seq = Sequence("s1", "ACDEFGH")
        sub = seq.subsequence(2, 5)
        assert sub.text == "DEF"
        assert "s1" in sub.identifier

    def test_composition(self):
        seq = Sequence("s1", "AABC")
        assert seq.composition() == {"A": 2, "B": 1, "C": 1}

    def test_empty_sequence_allowed(self):
        seq = Sequence("empty", "")
        assert len(seq) == 0
        assert seq.codes == ()

    def test_invalid_symbol_rejected(self):
        with pytest.raises(Exception):
            Sequence("bad", "AC-DE")

    def test_equality_ignores_codes(self):
        assert Sequence("s", "ACD") == Sequence("s", "acd")

    def test_alphabet_attached(self):
        assert Sequence("s", "ACD").alphabet is PROTEIN


class TestAsSequence:
    def test_passthrough(self):
        seq = Sequence("s1", "ACD")
        assert as_sequence(seq) is seq

    def test_string_coercion(self):
        seq = as_sequence("ACD", identifier="q")
        assert seq.identifier == "q"
        assert seq.text == "ACD"
