"""Digest stability across trace storage paths.

The persistent result cache addresses traces by content digest
(``repro.runtime.keys.trace_digest`` over the exact serialized column
bytes).  Three code paths produce a trace object: the kernel ->
``TraceBuilder`` path, ``load_trace`` on a saved archive, and
``Trace.slice`` (zero-copy column views).  All three must digest
byte-identically, otherwise cached results would silently miss (or
worse, collide) after a representation change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa.serialize import load_trace, save_trace, trace_columns
from repro.isa.trace import COLUMN_DTYPES, Trace
from repro.runtime.keys import trace_digest


@pytest.fixture(scope="module")
def built_trace(small_suite) -> Trace:
    return small_suite.trace("ssearch34")


def test_loaded_trace_digest_matches_built(built_trace, tmp_path_factory):
    """save -> load round trip preserves the content digest exactly."""
    path = tmp_path_factory.mktemp("digest") / "trace.npz"
    save_trace(built_trace, path)
    loaded = load_trace(path)
    assert loaded.name == built_trace.name
    assert trace_digest(loaded) == trace_digest(built_trace)


def test_sliced_trace_digest_stable(built_trace, tmp_path_factory):
    """Slices digest identically whether cut before or after a round trip."""
    limit = min(1000, len(built_trace))
    path = tmp_path_factory.mktemp("digest") / "trace.npz"
    save_trace(built_trace, path)
    loaded = load_trace(path)
    assert trace_digest(built_trace.slice(limit)) == trace_digest(
        loaded.slice(limit)
    )


def test_slice_digest_differs_from_full(built_trace):
    """A strict prefix is distinct content (and a distinct cache key)."""
    limit = len(built_trace) // 2
    assert trace_digest(built_trace.slice(limit)) != trace_digest(built_trace)


def test_trace_columns_bytes_identical_across_paths(
    built_trace, tmp_path_factory
):
    """The serialized column payloads are byte-identical, not just the hash."""
    path = tmp_path_factory.mktemp("digest") / "trace.npz"
    save_trace(built_trace, path)
    loaded = load_trace(path)
    built_columns = trace_columns(built_trace)
    loaded_columns = trace_columns(loaded)
    assert built_columns.keys() == loaded_columns.keys()
    for name, column in built_columns.items():
        other = loaded_columns[name]
        assert column.dtype == other.dtype, name
        assert column.tobytes() == other.tobytes(), name


def test_columns_use_canonical_dtypes(built_trace):
    """Column dtypes stay pinned to the serialization contract."""
    for name, column in built_trace.columns.items():
        assert column.dtype == np.dtype(COLUMN_DTYPES[name]), name
