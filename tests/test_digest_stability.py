"""Digest stability across trace storage paths.

The persistent result cache addresses traces by content digest
(``repro.runtime.keys.compute_trace_digest`` over the exact serialized
column bytes).  The byte-identity and round-trip assertions now live in
:mod:`repro.verify.tracelint` (rules TR007/TR008/TR009), shared with
``repro lint-trace``; this module drives those shared checks against a
real built trace and keeps the slice-identity properties that are
specific to ``Trace.slice``.
"""

from __future__ import annotations

import pytest

from repro.isa.serialize import load_trace, save_trace
from repro.isa.trace import Trace
from repro.runtime.keys import compute_trace_digest, trace_digest
from repro.verify.tracelint import check_digest, check_roundtrip, check_schema


@pytest.fixture(scope="module")
def built_trace(small_suite) -> Trace:
    return small_suite.trace("ssearch34")


def test_roundtrip_is_column_byte_identical(built_trace):
    """TR009 over a real trace: save -> load preserves name, dtypes,
    column bytes, and therefore the content digest."""
    assert check_roundtrip(built_trace) == []


def test_digest_check_accepts_the_built_digest(built_trace):
    assert check_digest(built_trace, trace_digest(built_trace)) == []


def test_digest_check_rejects_a_foreign_digest(built_trace):
    violations = check_digest(built_trace, "0" * 32)
    assert [violation.rule for violation in violations] == ["TR008"]


def test_memoized_digest_matches_pure_recomputation(built_trace):
    """``trace_digest`` (memoized) and ``compute_trace_digest`` (pure,
    used by TraceLint) are the same function on the same bytes."""
    assert trace_digest(built_trace) == compute_trace_digest(built_trace)


def test_loaded_trace_digest_matches_built(built_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("digest") / "trace.npz"
    save_trace(built_trace, path)
    loaded = load_trace(path)
    assert loaded.name == built_trace.name
    assert trace_digest(loaded) == trace_digest(built_trace)


def test_sliced_trace_digest_stable(built_trace, tmp_path_factory):
    """Slices digest identically whether cut before or after a round trip."""
    limit = min(1000, len(built_trace))
    path = tmp_path_factory.mktemp("digest") / "trace.npz"
    save_trace(built_trace, path)
    loaded = load_trace(path)
    assert trace_digest(built_trace.slice(limit)) == trace_digest(
        loaded.slice(limit)
    )


def test_slice_digest_differs_from_full(built_trace):
    """A strict prefix is distinct content (and a distinct cache key)."""
    limit = len(built_trace) // 2
    assert trace_digest(built_trace.slice(limit)) != trace_digest(built_trace)


def test_columns_use_canonical_dtypes(built_trace):
    """TR007: column dtypes stay pinned to the serialization contract."""
    assert check_schema(built_trace) == []
