"""Unit tests for alignment value types."""

import pytest

from repro.align.types import (
    AlignmentResult,
    GapPenalties,
    PAPER_GAPS,
    SearchHit,
    SearchResult,
)


class TestGapPenalties:
    def test_paper_values(self):
        assert PAPER_GAPS.open == 10
        assert PAPER_GAPS.extend == 1
        assert PAPER_GAPS.first_residue_cost == 11

    def test_cost_function(self):
        gaps = GapPenalties(open=10, extend=1)
        assert gaps.cost(0) == 0
        assert gaps.cost(1) == 11
        assert gaps.cost(5) == 15

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GapPenalties(open=-1, extend=1)
        with pytest.raises(ValueError):
            PAPER_GAPS.cost(-2)


class TestAlignmentResult:
    def make(self):
        return AlignmentResult(
            score=21,
            query_start=0, query_end=6,
            subject_start=0, subject_end=6,
            aligned_query="CS-TTP",
            aligned_subject="CSDT-N",
        )

    def test_length(self):
        assert self.make().length == 6

    def test_identities_exclude_gaps(self):
        result = self.make()
        assert result.identities == 3  # C, S, T
        assert result.identity == pytest.approx(0.5)

    def test_gaps_counted_both_sides(self):
        assert self.make().gaps == 2

    def test_midline(self):
        assert self.make().midline() == "|| |  "

    def test_pretty_contains_score(self):
        assert "score=21" in self.make().pretty()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            AlignmentResult(1, 0, 1, 0, 2, "A", "AB")

    def test_empty_alignment(self):
        empty = AlignmentResult(0, 0, 0, 0, 0)
        assert empty.identity == 0.0
        assert empty.length == 0


class TestSearchResult:
    def make(self):
        hits = tuple(
            SearchHit(score=s, subject_id=f"S{i}", subject_index=i,
                      subject_length=100)
            for i, s in enumerate((50, 42, 42, 7))
        )
        return SearchResult(
            query_id="q", database_name="db", hits=hits,
            sequences_searched=10, residues_searched=1000,
        )

    def test_best(self):
        assert self.make().best().score == 50

    def test_top(self):
        assert [h.score for h in self.make().top(2)] == [50, 42]

    def test_histogram(self):
        histogram = self.make().score_histogram(bin_width=4)
        assert histogram[40] == 2
        assert histogram[4] == 1
        assert histogram[48] == 1

    def test_histogram_bad_width(self):
        with pytest.raises(ValueError):
            self.make().score_histogram(bin_width=0)

    def test_best_of_empty_raises(self):
        empty = SearchResult("q", "db", (), 0, 0)
        with pytest.raises(ValueError):
            empty.best()

    def test_hit_ordering_by_score(self):
        low = SearchHit(score=5, subject_id="a", subject_index=0, subject_length=1)
        high = SearchHit(score=9, subject_id="b", subject_index=1, subject_length=1)
        assert low < high
