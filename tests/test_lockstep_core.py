"""Cycle-exactness of the lockstep multi-config core.

The lockstep engine (:class:`repro.uarch.pipeline.lockstep.LockstepCore`)
simulates one trace under many processor configurations at once,
sharing every configuration-independent plane across lanes.  Its whole
contract is *byte-identical results*: for every configuration in a
batch, the full :class:`~repro.uarch.results.SimulationResult` —
cycles, trauma accounting, branch and cache counters — must equal what
the scalar :class:`~repro.uarch.pipeline.core.OutOfOrderCore` produces
for that configuration alone.

Two layers of evidence:

* a golden matrix — every paper workload under the Table IV width
  sweep, the Table V memory-configuration sweep, and the Table VI
  perfect-predictor corner, compared field-for-field via
  ``result_to_dict``;
* property-based fuzzing in the style of ``test_pipeline_fuzz`` —
  random well-formed traces under randomly drawn configuration
  batches, plus the forked multi-process path and the ``max_cycles``
  runaway guard.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.cache import result_to_dict
from repro.uarch.config import (
    BP_PERFECT,
    ME1,
    ME2,
    ME3,
    ME4,
    MEINF,
    PROC_4WAY,
    PROC_8WAY,
    PROC_12WAY,
    PROC_16WAY,
)
from repro.uarch.pipeline.lockstep import LockstepCore, run_batch_forked
from repro.uarch.simulator import simulate, simulate_batch

from test_pipeline_fuzz import random_trace

#: The paper's configuration space: Table IV's width sweep, Table V's
#: memory-configuration sweep, and Table VI's perfect-predictor corner.
TABLE_PRESETS = (
    ("4-way/me1", PROC_4WAY.with_memory(ME1)),
    ("8-way/me1", PROC_8WAY.with_memory(ME1)),
    ("12-way/me1", PROC_12WAY.with_memory(ME1)),
    ("16-way/me1", PROC_16WAY.with_memory(ME1)),
    ("4-way/me2", PROC_4WAY.with_memory(ME2)),
    ("4-way/me3", PROC_4WAY.with_memory(ME3)),
    ("4-way/me4", PROC_4WAY.with_memory(ME4)),
    ("4-way/meinf", PROC_4WAY.with_memory(MEINF)),
    ("8-way/me2+bperf", PROC_8WAY.with_memory(ME2).with_branch(BP_PERFECT)),
)

#: Slice length for the golden matrix: long enough to exercise cache
#: misses, TLB walks, and branch recoveries on every workload, short
#: enough that 5 workloads x 9 configurations x 2 engines stays fast.
_SLICE = 12_000

_FUZZ_POOL = [config for _, config in TABLE_PRESETS]


class TestGoldenMatrix:
    """Every workload x every table preset: full result equality."""

    @pytest.mark.parametrize(
        "workload",
        ["ssearch34", "fasta34", "blast", "sw_vmx128", "sw_vmx256"],
    )
    def test_lockstep_matches_scalar(self, small_suite, workload):
        trace = small_suite.trace(workload).slice(_SLICE)
        configs = [config for _, config in TABLE_PRESETS]
        batch = LockstepCore(trace, configs).run()
        for (label, config), result in zip(TABLE_PRESETS, batch):
            scalar = simulate(trace, config)
            assert result_to_dict(result) == result_to_dict(scalar), label

    def test_simulate_batch_matches_scalar(self, small_suite):
        trace = small_suite.trace("ssearch34").slice(_SLICE)
        configs = [config for _, config in TABLE_PRESETS]
        batch = simulate_batch(trace, configs)
        for (label, config), result in zip(TABLE_PRESETS, batch):
            scalar = simulate(trace, config)
            assert result_to_dict(result) == result_to_dict(scalar), label

    def test_forked_batch_matches_in_process(self, small_suite):
        trace = small_suite.trace("ssearch34").slice(_SLICE)
        configs = [config for _, config in TABLE_PRESETS[:4]]
        forked = run_batch_forked(trace, configs, None, 2)
        if forked is None:
            pytest.skip("fork start method unavailable")
        in_process = LockstepCore(trace, configs).run()
        for result, expected in zip(forked, in_process):
            assert result_to_dict(result) == result_to_dict(expected)

    def test_duplicate_configs_in_one_batch(self, small_suite):
        trace = small_suite.trace("blast").slice(_SLICE)
        config = PROC_4WAY.with_memory(ME1)
        first, second = LockstepCore(trace, [config, config]).run()
        assert result_to_dict(first) == result_to_dict(second)
        assert result_to_dict(first) == result_to_dict(
            simulate(trace, config)
        )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    picks=st.lists(
        st.integers(min_value=0, max_value=len(_FUZZ_POOL) - 1),
        min_size=2, max_size=5,
    ),
)
def test_fuzz_lockstep_matches_scalar(seed, picks):
    trace = random_trace(seed, 400)
    configs = [_FUZZ_POOL[pick] for pick in picks]
    batch = LockstepCore(trace, configs, max_cycles=500_000).run()
    for config, result in zip(configs, batch):
        scalar = simulate(trace, config, max_cycles=500_000)
        assert result_to_dict(result) == result_to_dict(scalar)


def test_max_cycles_guard_matches_scalar():
    """The runaway guard fires in lockstep exactly as it does in the
    scalar core: an impossible cycle budget raises rather than
    returning a partial result."""
    trace = random_trace(1, 300)
    config = PROC_4WAY.with_memory(ME1)
    with pytest.raises(RuntimeError):
        simulate(trace, config, max_cycles=10)
    with pytest.raises(RuntimeError):
        LockstepCore(trace, [config, config], max_cycles=10).run()
