"""Shared fixtures: small deterministic inputs sized for fast tests."""

from __future__ import annotations

import pytest

from repro.analysis.context import ExperimentContext
from repro.bio.database import SequenceDatabase
from repro.bio.queries import default_query
from repro.bio.sequence import Sequence
from repro.bio.synthetic import SyntheticDatabaseConfig, generate_database
from repro.workloads.suite import WorkloadSuite


@pytest.fixture(scope="session")
def small_database() -> SequenceDatabase:
    """~25 sequences with two planted families."""
    return generate_database(
        SyntheticDatabaseConfig(
            sequence_count=25,
            family_count=2,
            family_size=3,
            seed=1234,
            mean_length=220.0,
        )
    )


@pytest.fixture(scope="session")
def tiny_database() -> SequenceDatabase:
    """6 short sequences for per-kernel correctness checks."""
    return generate_database(
        SyntheticDatabaseConfig(
            sequence_count=6,
            family_count=1,
            family_size=2,
            seed=77,
            mean_length=90.0,
        )
    )


@pytest.fixture(scope="session")
def query() -> Sequence:
    """The paper's default query stand-in (P14942, 222 aa)."""
    return default_query()


@pytest.fixture(scope="session")
def short_query() -> Sequence:
    """A short query for fast DP tests."""
    full = default_query()
    return full.subsequence(0, 60)


@pytest.fixture(scope="session")
def small_suite() -> WorkloadSuite:
    """Scaled-down workload suite shared across integration tests."""
    return WorkloadSuite(
        database_config=SyntheticDatabaseConfig(
            sequence_count=30,
            family_count=2,
            family_size=3,
            seed=2006,
            mean_length=200.0,
        ),
        trace_budget=50_000,
    )


@pytest.fixture(scope="session")
def context(small_suite: WorkloadSuite) -> ExperimentContext:
    """Experiment context with a shared simulation cache."""
    return ExperimentContext(suite=small_suite)
