"""Regression tests for the bench baseline gate (``repro bench --check``).

A missing or unparseable committed baseline must fail the check loudly
(non-zero exit, actionable message) instead of raising a traceback —
the CI smoke job depends on that exit code.
"""

from __future__ import annotations

import json

import repro.__main__ as cli
from repro.bench import check_baseline, check_lockstep_floor

REPORT = {
    "metrics": {
        "trace_generation": {"ips": 100, "repeats": 1},
        "load_trace": {"ips": 100, "repeats": 1},
        "simulate": {"ips": 100, "repeats": 1},
    },
}


class TestCheckBaseline:
    def test_missing_baseline_is_a_clear_failure(self, tmp_path):
        failures = check_baseline(
            REPORT, baseline_path=tmp_path / "absent.json"
        )
        assert len(failures) == 1
        assert "missing or unreadable" in failures[0]
        assert "repro bench --out" in failures[0]

    def test_corrupt_baseline_is_a_clear_failure(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        failures = check_baseline(REPORT, baseline_path=path)
        assert len(failures) == 1
        assert "not valid JSON" in failures[0]

    def test_non_object_baseline_is_a_clear_failure(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        failures = check_baseline(REPORT, baseline_path=path)
        assert len(failures) == 1
        assert "not a benchmark report" in failures[0]

    def test_disjoint_baseline_is_a_failure(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"metrics": {"foo": {"ips": 1}}}))
        failures = check_baseline(REPORT, baseline_path=path)
        assert failures and "no metrics" in failures[0]

    def test_matching_baseline_passes(self, tmp_path):
        path = tmp_path / "same.json"
        path.write_text(json.dumps(REPORT))
        assert check_baseline(REPORT, baseline_path=path) == []

    def test_new_metric_warns_instead_of_failing(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({
            "metrics": {
                "trace_generation": {"ips": 100},
                "load_trace": {"ips": 100},
            },
        }))
        warnings: list[str] = []
        assert check_baseline(
            REPORT, baseline_path=path, warnings=warnings
        ) == []
        assert len(warnings) == 1
        assert "simulate" in warnings[0]


class TestLockstepFloor:
    @staticmethod
    def _report(jobs: int, speedup: float) -> dict:
        return {
            "metrics": {
                "simulate_lockstep": {
                    "ips": 400, "scalar_ips": 100, "configs": 8,
                    "jobs": jobs, "speedup_vs_scalar": speedup,
                },
            },
        }

    def test_parallel_regime_enforces_the_25x_floor(self):
        failures = check_lockstep_floor(self._report(jobs=4, speedup=2.4))
        assert len(failures) == 1
        assert "2.50x floor" in failures[0]
        assert check_lockstep_floor(self._report(jobs=4, speedup=2.6)) == []

    def test_serial_regime_only_guards_against_slower_than_scalar(self):
        failures = check_lockstep_floor(self._report(jobs=1, speedup=0.8))
        assert len(failures) == 1
        assert "0.90x floor" in failures[0]
        assert check_lockstep_floor(self._report(jobs=1, speedup=1.1)) == []

    def test_reports_without_the_metric_pass_vacuously(self):
        assert check_lockstep_floor(REPORT) == []
        assert check_lockstep_floor({"metrics": {}}) == []


class TestBenchCheckCli:
    def test_check_exits_nonzero_when_baseline_missing(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.bench as bench

        monkeypatch.setattr(bench, "run_bench", lambda quick=False: {
            "mode": "quick", "workload": "ssearch34",
            "metrics": dict(REPORT["metrics"]),
            "speedup_vs_reference": {},
        })
        monkeypatch.setattr(
            bench, "COMMITTED_BASELINE", tmp_path / "absent.json"
        )
        assert cli.main(["bench", "--quick", "--check"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "missing or unreadable" in captured.err

    def test_check_passes_against_a_matching_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.bench as bench

        report = {
            "mode": "quick", "workload": "ssearch34",
            "metrics": dict(REPORT["metrics"]),
            "speedup_vs_reference": {},
        }
        baseline = tmp_path / "BENCH_core.json"
        baseline.write_text(json.dumps(report))
        monkeypatch.setattr(bench, "run_bench", lambda quick=False: report)
        monkeypatch.setattr(bench, "COMMITTED_BASELINE", baseline)
        assert cli.main(["bench", "--quick", "--check"]) == 0
        assert "no regression" in capsys.readouterr().out
