"""Tests for the trace-level characterization tools."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.trace_stats import (
    branch_statistics,
    dependency_profile,
    lru_miss_rate,
    reuse_distance_profile,
    working_set,
)
from repro.isa.builder import TraceBuilder


def trace_with_branches(pattern):
    builder = TraceBuilder("branches")
    for index, (site, taken) in enumerate(pattern):
        builder.ctrl(f"site{site}", taken=taken)
    return builder.build()


class TestBranchStatistics:
    def test_counts(self):
        trace = trace_with_branches([(0, True), (0, True), (1, False)])
        stats = branch_statistics(trace)
        assert stats.branches == 3
        assert stats.taken == 2
        assert stats.static_sites == 2
        assert stats.taken_fraction == pytest.approx(2 / 3)

    def test_bias_detection(self):
        pattern = [(0, True)] * 19 + [(0, False)]          # 95% biased
        pattern += [(1, i % 2 == 0) for i in range(20)]    # alternating
        stats = branch_statistics(trace_with_branches(pattern))
        assert stats.strongly_biased_sites == 1
        assert stats.biased_site_fraction == pytest.approx(0.5)

    def test_empty(self):
        builder = TraceBuilder("none")
        builder.ialu("op")
        stats = branch_statistics(builder.build())
        assert stats.branches == 0
        assert stats.taken_fraction == 0.0


class TestDependencyProfile:
    def test_chain_is_short_range(self):
        builder = TraceBuilder("chain")
        register = builder.ialu("a")
        for _ in range(50):
            register = builder.ialu("b", (register,))
        profile = dependency_profile(builder.build())
        assert profile.mean_distance == pytest.approx(1.0)
        assert profile.short_fraction == 1.0
        assert not profile.has_long_range_ilp

    def test_far_dependencies(self):
        builder = TraceBuilder("far")
        first = builder.ialu("a")
        for _ in range(30):
            builder.ialu("pad")
        builder.ialu("use", (first,))
        profile = dependency_profile(builder.build())
        assert profile.mean_distance > 30
        assert profile.has_long_range_ilp


class TestWorkingSet:
    def test_counts_distinct_lines(self):
        builder = TraceBuilder("ws")
        for index in range(64):
            builder.iload("ld", 0x1000 + (index % 16) * 128, size=4)
        stats = working_set(builder.build())
        assert stats["lines"] == 16
        assert stats["references"] == 64
        assert stats["bytes"] == 16 * 128

    def test_straddling_access_counts_both_lines(self):
        builder = TraceBuilder("span")
        builder.vload("vl", 0x1070, size=32)  # crosses a 128B boundary
        assert working_set(builder.build())["lines"] == 2


class TestReuseDistance:
    def _trace(self, line_sequence):
        builder = TraceBuilder("reuse")
        for line in line_sequence:
            builder.iload("ld", line * 128, size=4)
        return builder.build()

    def test_cold_misses_counted(self):
        profile = reuse_distance_profile(self._trace([0, 1, 2, 3]))
        assert profile == {-1: 4}

    def test_immediate_reuse_distance_zero(self):
        profile = reuse_distance_profile(self._trace([0, 0, 0]))
        assert profile[-1] == 1
        assert profile[0] == 2

    def test_classic_distance(self):
        # 0 1 2 0 : reuse of 0 sees 2 distinct lines in between.
        profile = reuse_distance_profile(self._trace([0, 1, 2, 0]))
        assert profile[2] == 1

    def test_miss_rate_matches_simulated_fully_associative(self):
        rng = random.Random(3)
        lines = [rng.randrange(32) for _ in range(400)]
        trace = self._trace(lines)
        profile = reuse_distance_profile(trace)
        for capacity in (4, 8, 16, 64):
            # Reference: simulate a fully associative LRU cache.
            stack = []
            misses = 0
            for line in lines:
                if line in stack:
                    stack.remove(line)
                else:
                    misses += 1
                    if len(stack) >= capacity:
                        stack.pop()
                stack.insert(0, line)
            expected = misses / len(lines)
            assert lru_miss_rate(profile, capacity) == pytest.approx(expected)

    def test_miss_rate_monotone_in_capacity(self):
        rng = random.Random(4)
        trace = self._trace([rng.randrange(64) for _ in range(500)])
        profile = reuse_distance_profile(trace)
        rates = [lru_miss_rate(profile, c) for c in (1, 4, 16, 64, 256)]
        assert rates == sorted(rates, reverse=True)


@settings(max_examples=25, deadline=None)
@given(lines=st.lists(st.integers(min_value=0, max_value=20),
                      min_size=1, max_size=150))
def test_reuse_profile_total_matches_references(lines):
    builder = TraceBuilder("p")
    for line in lines:
        builder.iload("ld", line * 128, size=4)
    profile = reuse_distance_profile(builder.build())
    assert sum(profile.values()) == len(lines)
    assert profile.get(-1, 0) == len(set(lines))
