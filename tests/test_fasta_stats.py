"""Tests for FASTA's length-regressed significance statistics."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.fasta.engine import fasta_search
from repro.align.fasta.stats import (
    LengthRegression,
    expectation,
    fit_length_regression,
    normal_tail,
)
from repro.bio.synthetic import MutationModel, homolog_of


class TestNormalTail:
    def test_symmetry(self):
        assert normal_tail(0.0) == pytest.approx(0.5)

    def test_known_values(self):
        assert normal_tail(1.6449) == pytest.approx(0.05, abs=1e-3)
        assert normal_tail(2.3263) == pytest.approx(0.01, abs=1e-3)

    def test_monotone(self):
        assert normal_tail(1.0) > normal_tail(2.0) > normal_tail(3.0)

    def test_expectation_scales_with_database(self):
        assert expectation(2.0, 1000) == pytest.approx(
            expectation(2.0, 100) * 10
        )


class TestRegression:
    def test_recovers_synthetic_trend(self):
        rng = random.Random(1)
        lengths = [rng.randint(50, 2000) for _ in range(300)]
        scores = [
            int(10 + 6 * math.log(length) + rng.gauss(0, 2))
            for length in lengths
        ]
        fit = fit_length_regression(scores, lengths)
        assert fit.slope == pytest.approx(6, abs=1.0)
        assert fit.intercept == pytest.approx(10, abs=5.0)
        assert fit.residual_sd == pytest.approx(2, abs=0.7)

    def test_outlier_does_not_pollute_fit(self):
        rng = random.Random(2)
        lengths = [rng.randint(50, 2000) for _ in range(200)]
        scores = [
            int(10 + 6 * math.log(length) + rng.gauss(0, 2))
            for length in lengths
        ]
        lengths.append(400)
        scores.append(5000)  # a true homolog
        fit = fit_length_regression(scores, lengths)
        assert fit.zscore(5000, 400) > 100

    def test_constant_lengths_flat_fit(self):
        fit = fit_length_regression([10, 12, 11, 13], [100, 100, 100, 100])
        assert fit.slope == 0.0

    def test_needs_three_samples(self):
        with pytest.raises(ValueError):
            fit_length_regression([1, 2], [10, 20])

    def test_mismatched_inputs(self):
        with pytest.raises(ValueError):
            fit_length_regression([1, 2, 3], [10, 20])

    def test_zscore_zero_at_baseline(self):
        fit = LengthRegression(intercept=5, slope=2, residual_sd=1.5,
                               samples=10)
        length = 300
        baseline = fit.expected_score(length)
        assert fit.zscore(int(baseline), length) == pytest.approx(0.0, abs=0.7)


class TestEngineAnnotation:
    def test_homolog_gets_extreme_zscore(self, query, small_database):
        homolog = homolog_of(query, seed=2,
                             mutation=MutationModel(substitution_rate=0.2))
        database = type(small_database)(
            list(small_database) + [homolog], name="plus"
        )
        result = fasta_search(query, database)
        best = result.best()
        assert best.subject_id == homolog.identifier
        assert best.bit_score > 5.0      # z-score far beyond background
        assert best.evalue < 0.001

    def test_background_hits_near_zero_z(self, query, small_database):
        result = fasta_search(query, small_database)
        background = [hit.bit_score for hit in result.hits[5:]]
        if background:
            assert all(z < 4.0 for z in background)
