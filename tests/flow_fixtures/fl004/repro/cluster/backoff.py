"""FL004 fixture helpers: blocking retry delay behind a sync helper."""

import time


def backoff(request):
    time.sleep(0.05)
    return request


def backoff_quiet(request):
    time.sleep(0.05)  # flowlint: disable=FL004
    return request
