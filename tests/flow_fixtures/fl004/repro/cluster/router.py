"""FL004 fixture: cluster router coroutines calling blocking helpers."""

import asyncio

from repro.cluster.backoff import backoff, backoff_quiet


async def dispatch(request):
    await asyncio.sleep(0)
    return backoff(request)


async def dispatch_quiet(request):
    return backoff_quiet(request)


async def probe():
    await asyncio.sleep(0.01)
    return True
