"""FL004 fixture: serve coroutines calling blocking synchronous helpers."""

import asyncio

from repro.serve.sync_ops import respond, respond_quiet


async def handle(request):
    await asyncio.sleep(0)
    return respond(request)


async def handle_quiet(request):
    return respond_quiet(request)


async def tick():
    await asyncio.sleep(0.01)
    return True
