"""FL004 fixture helpers: the sleep is invisible to a per-body check."""

import time


def respond(request):
    time.sleep(0.05)
    return request


def respond_quiet(request):
    time.sleep(0.05)  # flowlint: disable=FL004
    return request
