"""FL003 fixture Trace: writes inside the owner module are exempt."""


class Trace:
    def __init__(self):
        self.cols = ()
