"""FL003 fixture: the write hides one helper below the task body."""


def scrub(trace):
    _reset(trace)


def _reset(trace):
    trace.cols = ()


def scrub_quiet(trace):
    trace.cols = ()  # flowlint: disable=FL003
    return trace


def total(trace):
    return len(trace.cols)
