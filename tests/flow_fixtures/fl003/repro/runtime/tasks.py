"""FL003 fixture: fork-reachable code mutating a shared Trace."""

from repro.sim.mutate import scrub, scrub_quiet, total


def execute_simulate(payload):
    trace, flag = payload
    if flag:
        scrub(trace)
    return total(trace)


def execute_trace(payload):
    return scrub_quiet(payload)


TASK_KINDS = {
    "simulate": execute_simulate,
    "trace": execute_trace,
}
