"""FL002 fixture: simulate tasks reading config fields through helpers."""

from repro.uarch.core import run, run_quiet


def execute_simulate(payload):
    trace, config = payload
    return run(trace, config)


def execute_sweep_point(payload):
    trace, config = payload
    return run_quiet(trace, config)


TASK_KINDS = {
    "simulate": execute_simulate,
    "sweep_point": execute_sweep_point,
}
