"""FL002 fixture key builder: covers ``width`` but forgets ``depth``."""


def config_key(config):
    return ("v1", config.width)
