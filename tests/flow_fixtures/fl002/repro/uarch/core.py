"""FL002 fixture core: ``depth`` is read two calls below the task body."""


def run(trace, config):
    cycles = len(trace) * config.width
    return cycles + _drain(config)


def _drain(config):
    return config.depth


def run_quiet(trace, config):
    return config.depth  # flowlint: disable=FL002
