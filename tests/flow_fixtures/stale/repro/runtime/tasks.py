"""Stale-suppression fixture: one live disable, one dead one."""

import time


def execute_simulate(payload):
    return _now(payload)


def _now(payload):
    return (payload, time.time())  # flowlint: disable=FL001


def plain(value):
    return value + 1  # repolint: disable=REP001


TASK_KINDS = {"simulate": execute_simulate}
