"""FL001 fixture: cached tasks whose bodies call nondeterministic helpers."""

from repro.analysis.stats import summarize, summarize_quiet


def execute_simulate(payload):
    return summarize(payload)


def execute_trace(payload):
    return summarize_quiet(payload)


def execute_clean(payload):
    return payload * 2


TASK_KINDS = {
    "simulate": execute_simulate,
    "trace": execute_trace,
    "clean": execute_clean,
}
