"""FL001 fixture helpers: the wall-clock read hides two calls deep."""

import time


def summarize(payload):
    return _stamp(payload)


def _stamp(payload):
    return (payload, time.time())


def summarize_quiet(payload):
    return _stamp_quiet(payload)


def _stamp_quiet(payload):
    return (payload, time.time())  # flowlint: disable=FL001
