"""FL005 store fixture: the trusted storage layer itself."""


def artifact_key(name):
    return ("code-salt", name)


class ArtifactStore:
    def load_arrays(self, key):
        return key

    def ensure_table(self, name):
        # Reads inside the storage layer are exempt by construction.
        return self.load_arrays(artifact_key(name))
