"""FL005 fixture key builder: salts REPRO_SCALE (and nothing else)."""

import os


def simulate_key(config):
    return (config, os.environ.get("REPRO_SCALE", "1"))
