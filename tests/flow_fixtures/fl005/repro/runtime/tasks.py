"""FL005 fixture: cached tasks influenced by env vars through helpers."""

from repro.env.scale import scale_factor, secret_mode, secret_mode_quiet
from repro.runtime.compile import load_raw, load_raw_quiet, load_salted
from repro.store.artifacts import ArtifactStore


def execute_simulate(payload):
    return payload * scale_factor() * (2 if secret_mode() else 1)


def execute_trace(payload):
    return payload if secret_mode_quiet() else None


def execute_search_shard(payload):
    store = ArtifactStore()
    return (
        load_raw(store, payload),
        load_salted(store, payload),
        load_raw_quiet(store, payload),
    )


TASK_KINDS = {
    "simulate": execute_simulate,
    "trace": execute_trace,
    "search_shard": execute_search_shard,
}
