"""FL005 fixture: cached tasks influenced by env vars through helpers."""

from repro.env.scale import scale_factor, secret_mode, secret_mode_quiet


def execute_simulate(payload):
    return payload * scale_factor() * (2 if secret_mode() else 1)


def execute_trace(payload):
    return payload if secret_mode_quiet() else None


TASK_KINDS = {
    "simulate": execute_simulate,
    "trace": execute_trace,
}
