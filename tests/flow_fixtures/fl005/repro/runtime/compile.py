"""FL005 fixture: store reads one call below the cached task body."""

from repro.store.artifacts import ArtifactStore, artifact_key


def load_raw(store, name):
    return store.load_arrays(("raw", name))


def load_salted(store, name):
    return store.load_arrays(artifact_key(name))


def load_raw_quiet(store, name):
    return store.load_arrays(("raw", name))  # flowlint: disable=FL005
