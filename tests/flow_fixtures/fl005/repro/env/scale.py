"""FL005 fixture helpers: one salted env read, one escaping, one quiet."""

import os


def scale_factor():
    return float(os.environ.get("REPRO_SCALE", "1"))


def secret_mode():
    return os.environ.get("REPRO_SECRET") == "1"


def secret_mode_quiet():
    return os.environ.get("REPRO_SECRET") == "1"  # flowlint: disable=FL005
