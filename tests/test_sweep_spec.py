"""Unit tests for sweep specs: parsing, validation, expansion, knees."""

from __future__ import annotations

import json

import pytest

from repro.sweep import (
    SweepSpecError,
    detect_knee,
    expand_spec,
    load_spec,
    parse_spec,
)
from repro.sweep.plan import build_config, point_id
from repro.uarch.config import (
    BP_PERFECT,
    KB,
    ME1,
    ME3,
    PROC_4WAY,
    PROC_8WAY,
    memory_with_dl1,
)


def minimal(**overrides) -> dict:
    data = {
        "sweep": {"name": "unit", "description": "unit grid"},
        "axes": {"width": ["4-way", "8-way"]},
        "workloads": {"names": ["ssearch34"]},
    }
    data.update(overrides)
    return data


class TestParse:
    def test_minimal_spec_and_defaults(self):
        spec = parse_spec(minimal())
        assert spec.name == "unit"
        assert spec.axis_names() == ("width",)
        assert spec.workloads == ("ssearch34",)
        assert spec.point_count == 2
        assert spec.metrics  # defaults applied
        assert spec.knee_axes == ()

    def test_workloads_default_to_the_full_suite(self):
        from repro.kernels.registry import WORKLOAD_NAMES

        data = minimal()
        del data["workloads"]
        assert parse_spec(data).workloads == tuple(WORKLOAD_NAMES)

    def test_knee_axes_default_to_swept_numeric_axes(self):
        data = minimal(axes={"dl1_size_kb": [8, 16, 32, 64]})
        assert parse_spec(data).knee_axes == ("dl1_size_kb",)
        # Two points cannot bend.
        data = minimal(axes={"dl1_size_kb": [8, 16]})
        assert parse_spec(data).knee_axes == ()

    def test_digest_ignores_report_section(self):
        plain = parse_spec(minimal())
        reported = parse_spec(minimal(report={"metrics": ["cycles"]}))
        assert plain.digest() == reported.digest()
        widened = parse_spec(
            minimal(axes={"width": ["4-way", "8-way", "16-way"]})
        )
        assert widened.digest() != plain.digest()

    def test_digest_is_stable_across_processes(self):
        # Pure function of the grid contents: documented by pinning.
        spec = parse_spec(minimal())
        assert spec.digest() == parse_spec(minimal()).digest()
        assert len(spec.digest()) == 16


class TestValidation:
    def check(self, data, *needles):
        with pytest.raises(SweepSpecError) as error:
            parse_spec(data)
        text = str(error.value)
        for needle in needles:
            assert needle in text
        return text

    def test_unknown_axis(self):
        self.check(minimal(axes={"frequency": [1, 2]}), "frequency")

    def test_unknown_axis_value(self):
        self.check(minimal(axes={"width": ["4-way", "64-way"]}), "64-way")

    def test_empty_axis(self):
        self.check(minimal(axes={"width": []}), "width")

    def test_unknown_workload(self):
        self.check(minimal(workloads={"names": ["hmmer"]}), "hmmer")

    def test_unknown_metric(self):
        self.check(
            minimal(report={"metrics": ["flops"]}), "flops"
        )

    def test_memory_preset_crossed_with_parametric_axis(self):
        self.check(minimal(axes={
            "memory": ["me1", "me2"],
            "dl1_size_kb": [16, 32],
        }), "memory")

    def test_missing_name(self):
        self.check({"axes": {"width": ["4-way"]}})

    def test_error_lists_every_violation(self):
        text = self.check(minimal(
            axes={"width": ["64-way"], "frequency": [1]},
            workloads={"names": ["hmmer"]},
        ))
        assert text.count("SW") >= 3


class TestLoadSpec:
    def test_toml_roundtrip(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            '[sweep]\nname = "t"\n[axes]\nwidth = ["4-way"]\n'
            '[workloads]\nnames = ["blast"]\n'
        )
        spec = load_spec(path)
        assert spec.name == "t"
        assert spec.source == str(path)

    def test_json_spec(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(minimal()))
        assert load_spec(path).name == "unit"

    def test_yaml_spec(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "grid.yaml"
        path.write_text(yaml.safe_dump(minimal()))
        assert load_spec(path).name == "unit"

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "grid.ini"
        path.write_text("x")
        with pytest.raises(SweepSpecError, match="unknown spec format"):
            load_spec(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SweepSpecError, match="cannot read"):
            load_spec(tmp_path / "absent.toml")

    def test_parse_error_rejected(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text("[sweep\nname=")
        with pytest.raises(SweepSpecError, match="parse error"):
            load_spec(path)

    def test_committed_specs_are_valid(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1] / "examples" / "sweeps"
        specs = sorted(root.glob("*.toml"))
        assert len(specs) >= 4
        for path in specs:
            spec = load_spec(path)
            assert spec.point_count > 0


class TestExpansion:
    def test_deterministic_order_and_ids(self):
        spec = parse_spec(minimal(
            axes={"width": ["4-way", "8-way"], "memory": ["me1", "me3"]},
            workloads={"names": ["ssearch34", "blast"]},
        ))
        points = expand_spec(spec)
        assert len(points) == 8
        assert points[0].point_id == "ssearch34|width=4-way|memory=me1"
        assert points[1].point_id == "ssearch34|width=4-way|memory=me3"
        assert points[-1].point_id == "blast|width=8-way|memory=me3"
        assert points[0].coord("memory") == "me1"
        assert expand_spec(spec) == points  # stable

    def test_point_id_format(self):
        assert point_id(
            "blast", (("width", "8-way"), ("dl1_size_kb", 32))
        ) == "blast|width=8-way|dl1_size_kb=32"


class TestBuildConfig:
    def test_preset_axes_match_figure_construction(self):
        # Figures 3/4: width.with_memory(memory preset).
        assert build_config(
            {"width": "8-way", "memory": "me3"}
        ) == PROC_8WAY.with_memory(ME3)

    def test_parametric_axes_match_memory_with_dl1_defaults(self):
        # Figure 5: PROC_4WAY with memory_with_dl1(size), defaults.
        assert build_config(
            {"dl1_size_kb": 32}
        ) == PROC_4WAY.with_memory(memory_with_dl1(32 * KB))
        # Figure 7: latency sweep against a 1 MB L2.
        assert build_config(
            {"dl1_latency": 4, "dl1_size_kb": 32, "l2_mb": 1}
        ) == PROC_4WAY.with_memory(
            memory_with_dl1(32 * KB, latency=4, l2_mb=1)
        )

    def test_inf_values_build_ideal_levels(self):
        config = build_config({"dl1_size_kb": "inf"})
        assert config == PROC_4WAY.with_memory(memory_with_dl1(None))

    def test_predictor_axis_matches_fig9(self):
        real = build_config({"width": "4-way", "memory": "me1"})
        perfect = build_config(
            {"width": "4-way", "memory": "me1", "predictor": "perfect"}
        )
        assert real == PROC_4WAY.with_memory(ME1)
        assert perfect == PROC_4WAY.with_memory(ME1).with_branch(BP_PERFECT)

    def test_defaults_are_the_paper_baseline(self):
        assert build_config({}) == PROC_4WAY.with_memory(ME1)


class TestKneeDetection:
    def test_saturating_curve_knees_at_the_bend(self):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        ys = [0.2, 0.4, 0.8, 0.95, 0.97, 0.98]
        assert detect_knee(xs, ys) == 8.0

    def test_straight_line_has_no_knee(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert detect_knee(xs, [2 * x for x in xs]) is None

    def test_flat_series_has_no_knee(self):
        assert detect_knee([1.0, 2.0, 3.0], [5.0, 5.0, 5.0]) is None

    def test_short_series_has_no_knee(self):
        assert detect_knee([1.0, 2.0], [1.0, 9.0]) is None
