"""Tests for the 2-bit packed DNA storage (paper listing 1 substrate)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bio.alphabet import DNA
from repro.bio.packed import (
    BASES_PER_BYTE,
    PackedSequence,
    pack_dna,
    unpack_base,
    unpack_dna,
)
from repro.bio.sequence import Sequence

dna_text = st.text(alphabet="ACGT", min_size=0, max_size=120)
dna_with_n = st.text(alphabet="ACGTN", min_size=0, max_size=120)


class TestPacking:
    def test_four_bases_per_byte(self):
        packed, _ = pack_dna("ACGT")
        assert len(packed) == 1
        assert packed[0] == 0b00_01_10_11

    def test_partial_byte_zero_padded(self):
        packed, _ = pack_dna("TT")
        assert len(packed) == 1
        assert packed[0] == 0b11_11_00_00

    def test_unpack_base_macro(self):
        byte = 0b00_01_10_11  # A C G T
        assert [unpack_base(byte, slot) for slot in range(4)] == list("ACGT")

    def test_unpack_base_slot_range(self):
        with pytest.raises(ValueError):
            unpack_base(0, 4)

    def test_ambiguity_positions_recorded(self):
        packed, ambiguous = pack_dna("ACNNGT")
        assert ambiguous == (2, 3)
        assert unpack_dna(packed, 6, ambiguous) == "ACNNGT"

    def test_invalid_symbol_rejected(self):
        with pytest.raises(ValueError):
            pack_dna("ACGU")

    def test_length_check(self):
        packed, _ = pack_dna("ACGT")
        with pytest.raises(ValueError):
            unpack_dna(packed, 5)


class TestPackedSequence:
    def test_roundtrip(self):
        sequence = Sequence("chr", "ACGTACGTNNACGT", alphabet=DNA)
        packed = PackedSequence.from_sequence(sequence)
        assert packed.unpack().text == sequence.text
        assert packed.length == len(sequence)

    def test_compression_ratio(self):
        sequence = Sequence("chr", "ACGT" * 100, alphabet=DNA)
        packed = PackedSequence.from_sequence(sequence)
        assert packed.packed_bytes == 100

    def test_base_at(self):
        sequence = Sequence("chr", "ACGTN", alphabet=DNA)
        packed = PackedSequence.from_sequence(sequence)
        assert [packed.base_at(i) for i in range(5)] == list("ACGTN")
        with pytest.raises(IndexError):
            packed.base_at(5)

    def test_protein_rejected(self):
        with pytest.raises(ValueError):
            PackedSequence.from_sequence(Sequence("p", "ACDEF"))


@settings(max_examples=60, deadline=None)
@given(text=dna_with_n)
def test_pack_unpack_roundtrip(text):
    packed, ambiguous = pack_dna(text)
    assert unpack_dna(packed, len(text), ambiguous) == text
    assert len(packed) == (len(text) + BASES_PER_BYTE - 1) // BASES_PER_BYTE


@settings(max_examples=40, deadline=None)
@given(text=dna_text)
def test_random_access_matches_sequential(text):
    if not text:
        return
    sequence = Sequence("s", text, alphabet=DNA)
    packed = PackedSequence.from_sequence(sequence)
    rng = random.Random(0)
    for _ in range(10):
        position = rng.randrange(len(text))
        assert packed.base_at(position) == text[position]
