"""Unit tests for the branch target buffer (NFA)."""

import pytest

from repro.uarch.branch.btb import BranchTargetBuffer


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, 4, miss_penalty=2)
        assert btb.lookup(0x40) is None
        btb.install(0x40, 0x100)
        assert btb.lookup(0x40) == 0x100

    def test_reinstall_updates_target(self):
        btb = BranchTargetBuffer(64, 4, miss_penalty=2)
        btb.install(0x40, 0x100)
        btb.install(0x40, 0x200)
        assert btb.lookup(0x40) == 0x200

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(2, 2, miss_penalty=2)  # one set, 2 ways
        btb.install(0x10, 0x1)
        btb.install(0x20, 0x2)
        btb.lookup(0x10)            # 0x10 MRU
        btb.install(0x30, 0x3)      # evicts 0x20
        assert btb.lookup(0x10) == 0x1
        assert btb.lookup(0x20) is None

    def test_miss_rate(self):
        btb = BranchTargetBuffer(64, 4, miss_penalty=2)
        btb.lookup(0x40)
        btb.install(0x40, 0x80)
        btb.lookup(0x40)
        assert btb.miss_rate == pytest.approx(0.5)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(2, 4, miss_penalty=2)

    def test_different_sets_do_not_conflict(self):
        btb = BranchTargetBuffer(8, 1, miss_penalty=2)  # 8 direct sets
        for i in range(8):
            btb.install(0x40 + 4 * i, i)
        for i in range(8):
            assert btb.lookup(0x40 + 4 * i) == i
