"""Tests for trace save/load."""

import pytest

from repro.isa.builder import TraceBuilder
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.isa.serialize import load_trace, save_trace
from repro.isa.trace import Trace
from repro.uarch.config import ME1, PROC_4WAY
from repro.uarch.simulator import simulate


def build_mixed_trace():
    builder = TraceBuilder("mixed")
    register = builder.ialu("a")
    load = builder.iload("ld", 0x1000, (register,), size=8)
    builder.vload("vl", 0x2000, (register,), size=32)
    builder.vsimple("vs", (2,))
    builder.ctrl("br", taken=True, sources=(load,), backward=True)
    builder.istore("st", 0x3000, (register, load), size=4)
    return builder.build()


class TestRoundTrip:
    def test_fields_preserved(self, tmp_path):
        trace = build_mixed_trace()
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        for original, restored in zip(trace.instructions, loaded.instructions):
            assert restored.op == original.op
            assert restored.pc == original.pc
            assert restored.sources == original.sources
            assert restored.has_dest == original.has_dest
            assert restored.address == original.address
            assert restored.size == original.size
            assert restored.taken == original.taken
            assert restored.target == original.target

    def test_loaded_trace_validates(self, tmp_path):
        trace = build_mixed_trace()
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        load_trace(path).validate()

    def test_simulation_identical(self, tmp_path, small_suite):
        trace = small_suite.trace("blast").slice(5000)
        path = tmp_path / "blast.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        config = PROC_4WAY.with_memory(ME1)
        original = simulate(trace, config)
        restored = simulate(loaded, config)
        assert original.cycles == restored.cycles
        assert original.traumas == restored.traumas

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_trace(Trace("empty", []), path)
        assert len(load_trace(path)) == 0

    def test_too_many_sources_rejected(self, tmp_path):
        trace = Trace("bad", [
            Instruction(OpClass.IALU, pc=0x10, has_dest=True),
            Instruction(OpClass.IALU, pc=0x14, has_dest=True),
            Instruction(OpClass.IALU, pc=0x18, has_dest=True),
            Instruction(OpClass.IALU, pc=0x1C, has_dest=True),
            Instruction(OpClass.IALU, pc=0x20, sources=(0, 1, 2, 3),
                        has_dest=True),
        ])
        with pytest.raises(ValueError):
            save_trace(trace, tmp_path / "bad.npz")

    def test_compression_is_compact(self, tmp_path, small_suite):
        trace = small_suite.trace("ssearch34").slice(20_000)
        path = tmp_path / "s.npz"
        save_trace(trace, path)
        # Far below a naive 60+ bytes/instruction text encoding.
        assert path.stat().st_size < 25 * len(trace)


class TestWorkloadRoundTrip:
    """Round-trip real suite traces: counts, mix, deps, addresses."""

    @pytest.fixture(scope="class")
    def round_tripped(self, tmp_path_factory, small_suite):
        trace = small_suite.trace("blast").slice(10_000)
        path = tmp_path_factory.mktemp("serialize") / "blast.npz"
        save_trace(trace, path)
        return trace, load_trace(path)

    def test_instruction_count(self, round_tripped):
        original, restored = round_tripped
        assert len(restored) == len(original)

    def test_mix_fractions(self, round_tripped):
        original, restored = round_tripped
        original_mix = original.mix()
        restored_mix = restored.mix()
        assert restored_mix == original_mix
        assert restored_mix.fraction(OpClass.IALU) == pytest.approx(
            original_mix.fraction(OpClass.IALU)
        )
        assert restored_mix.load_fraction() == pytest.approx(
            original_mix.load_fraction()
        )
        assert restored_mix.store_fraction() == pytest.approx(
            original_mix.store_fraction()
        )
        assert restored_mix.control_fraction() == pytest.approx(
            original_mix.control_fraction()
        )

    def test_register_dependencies(self, round_tripped):
        original, restored = round_tripped
        dependent = 0
        for before, after in zip(original.instructions,
                                 restored.instructions):
            assert after.sources == before.sources
            assert after.has_dest == before.has_dest
            dependent += bool(before.sources)
        assert dependent > 0  # the workload has real register deps

    MEMORY_OPS = (OpClass.ILOAD, OpClass.ISTORE, OpClass.VLOAD,
                  OpClass.VSTORE)

    def test_memory_addresses(self, round_tripped):
        original, restored = round_tripped
        original_addresses = [
            instruction.address for instruction in original.instructions
            if instruction.op in self.MEMORY_OPS
        ]
        restored_addresses = [
            instruction.address for instruction in restored.instructions
            if instruction.op in self.MEMORY_OPS
        ]
        assert restored_addresses == original_addresses
        assert original_addresses  # the workload touches memory

    def test_branch_outcomes(self, round_tripped):
        original, restored = round_tripped
        for before, after in zip(original.instructions,
                                 restored.instructions):
            if before.op == OpClass.CTRL:
                assert after.taken == before.taken
                assert after.target == before.target

    def test_columns_match_saved_bytes(self, tmp_path):
        # trace_columns() is what both save_trace and the runtime's
        # content digest hash; they must see identical arrays.
        import numpy as np

        from repro.isa.serialize import trace_columns

        trace = build_mixed_trace()
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        columns = trace_columns(trace)
        with np.load(path) as archive:
            for name, array in columns.items():
                stored = archive[name]
                assert stored.dtype == array.dtype
                assert np.array_equal(stored, array)
