"""Tests for translation and the translated (blastx-style) search."""

import random

import pytest

from repro.align.blast.translated import BlastxEngine
from repro.bio.alphabet import DNA
from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence
from repro.bio.synthetic import random_protein
from repro.bio.translate import (
    CODON_TABLE,
    STOP,
    reverse_complement,
    six_frame_translation,
    translate,
)

#: Reverse-translate a protein with fixed codons (for test fixtures).
_CODON_OF = {}
for codon, amino in CODON_TABLE.items():
    _CODON_OF.setdefault(amino, codon)


def encode_protein_as_dna(protein: str) -> str:
    return "".join(_CODON_OF[a] for a in protein)


class TestCodonTable:
    def test_size(self):
        assert len(CODON_TABLE) == 64

    def test_canonical_codons(self):
        assert CODON_TABLE["ATG"] == "M"
        assert CODON_TABLE["TGG"] == "W"
        assert CODON_TABLE["TTT"] == "F"
        assert CODON_TABLE["GGG"] == "G"
        assert CODON_TABLE["AAA"] == "K"

    def test_stop_codons(self):
        assert CODON_TABLE["TAA"] == STOP
        assert CODON_TABLE["TAG"] == STOP
        assert CODON_TABLE["TGA"] == STOP

    def test_composition(self):
        from collections import Counter

        counts = Counter(CODON_TABLE.values())
        assert counts[STOP] == 3
        assert counts["L"] == 6
        assert counts["R"] == 6
        assert counts["S"] == 6
        assert counts["M"] == 1
        assert counts["W"] == 1


class TestTranslate:
    def test_simple(self):
        assert translate("ATGTGGTTT") == "MWF"

    def test_frames(self):
        text = "AATGTGG"
        assert translate(text, 1) == "MW"

    def test_n_becomes_wildcard(self):
        assert translate("ATGNNN") == "MX"

    def test_invalid_frame(self):
        with pytest.raises(ValueError):
            translate("ATG", 3)

    def test_reverse_complement(self):
        assert reverse_complement("ATGC") == "GCAT"
        assert reverse_complement("AANN") == "NNTT"
        with pytest.raises(ValueError):
            reverse_complement("ATGU")


class TestSixFrames:
    def test_six_frames_produced(self):
        sequence = Sequence("d", "ATGTGGTTTAAACCC", alphabet=DNA)
        frames = six_frame_translation(sequence)
        assert len(frames) == 6
        assert sorted(f.frame for f in frames) == [-3, -2, -1, 1, 2, 3]

    def test_forward_frame_one_matches_translate(self):
        sequence = Sequence("d", "ATGTGGTTTAAACCC", alphabet=DNA)
        frames = {f.frame: f for f in six_frame_translation(sequence)}
        assert frames[1].protein.text == translate(sequence.text).replace(
            STOP, "X"
        )

    def test_protein_input_rejected(self):
        with pytest.raises(ValueError):
            six_frame_translation(Sequence("p", "ACDEF"))

    def test_reverse_frames_flagged(self):
        sequence = Sequence("d", "ATGTGGTTTAAACCC", alphabet=DNA)
        for frame in six_frame_translation(sequence):
            assert frame.is_reverse == (frame.frame < 0)


class TestBlastx:
    def test_finds_protein_from_encoding_dna(self, small_database):
        rng = random.Random(9)
        target = small_database[0]
        # DNA that encodes residues 30..110 of the target protein.
        fragment = target.text[30:110].replace("B", "N").replace(
            "Z", "Q"
        ).replace("X", "A")
        dna = Sequence(
            "read", encode_protein_as_dna(fragment), alphabet=DNA
        )
        engine = BlastxEngine(dna)
        framed = engine.search(small_database)
        assert framed
        assert framed[0].hit.subject_id == target.identifier
        assert framed[0].frame == 1

    def test_reverse_strand_detected(self, small_database):
        from repro.bio.translate import reverse_complement

        target = small_database[1]
        fragment = target.text[10:90].replace("B", "N").replace(
            "Z", "Q"
        ).replace("X", "A")
        dna_forward = encode_protein_as_dna(fragment)
        dna = Sequence(
            "read", reverse_complement(dna_forward), alphabet=DNA
        )
        framed = BlastxEngine(dna).search(small_database)
        assert framed
        assert framed[0].hit.subject_id == target.identifier
        assert framed[0].frame < 0

    def test_search_result_packaging(self, small_database):
        fragment = small_database[0].text[20:80].replace("B", "N").replace(
            "Z", "Q"
        ).replace("X", "A")
        dna = Sequence("read", encode_protein_as_dna(fragment), alphabet=DNA)
        engine = BlastxEngine(dna)
        framed = engine.search(small_database)
        result = engine.as_search_result(small_database, framed)
        assert result.sequences_searched == len(small_database)
        assert result.best().score == framed[0].hit.score
