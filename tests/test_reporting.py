"""Unit tests for the plain-text report renderers."""

from repro.analysis.reporting import render_histogram, render_series, render_table


class TestRenderTable:
    def test_contains_everything(self):
        text = render_table("Title", ["a", "b"], [(1, "xy"), (22, "z")])
        assert "Title" in text
        assert "22" in text
        assert "xy" in text

    def test_column_alignment(self):
        text = render_table("T", ["col"], [("longvalue",), ("s",)])
        lines = text.splitlines()
        assert len(lines[2]) == len("longvalue")  # separator width

    def test_empty_rows(self):
        text = render_table("T", ["a"], [])
        assert "T" in text


class TestRenderSeries:
    def test_layout(self):
        text = render_series(
            "S", "x", [1, 2, 3], {"app": [0.5, 1.0, 1.5]}
        )
        assert "0.500" in text
        assert "app" in text

    def test_custom_format(self):
        text = render_series("S", "x", [1], {"app": [1234.0]},
                             value_format="{:.0f}")
        assert "1234" in text


class TestRenderHistogram:
    def test_sorted_and_limited(self):
        histogram = {f"k{i}": i for i in range(20)}
        text = render_histogram("H", histogram, limit=3)
        lines = text.splitlines()
        assert len(lines) == 4  # title + 3 entries
        assert "k19" in lines[1]

    def test_zero_entries_skipped(self):
        text = render_histogram("H", {"a": 0, "b": 5})
        assert "a" not in text.replace("H", "")
        assert "b" in text

    def test_bars_proportional(self):
        text = render_histogram("H", {"big": 100, "small": 10}, bar_width=10)
        big_line = next(line for line in text.splitlines() if "big" in line)
        small_line = next(line for line in text.splitlines() if "small" in line)
        assert big_line.count("#") > small_line.count("#")
