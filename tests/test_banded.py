"""Unit and property tests for banded local alignment."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.banded import banded_sw_score
from repro.align.smith_waterman import sw_score
from repro.bio.synthetic import MutationModel, random_protein

proteins = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=0, max_size=40)


class TestBandedBasics:
    def test_empty_inputs(self):
        assert banded_sw_score("", "ACD", center=0, width=5) == 0
        assert banded_sw_score("ACD", "", center=0, width=5) == 0

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            banded_sw_score("ACD", "ACD", center=0, width=-1)

    def test_band_off_matrix_scores_zero(self):
        # A band placed entirely past the sequences covers no cells.
        assert banded_sw_score("ACD", "ACD", center=100, width=2) == 0

    def test_diagonal_identity_alignment(self):
        text = "ACDEFGHIKLMNPQRSTVWY"
        assert banded_sw_score(text, text, center=0, width=0) == sw_score(
            text, text
        )

    def test_narrow_band_misses_shifted_match(self):
        # The match lies on diagonal +5; a width-1 band at 0 misses it.
        query = "AAAAAWWWWWWWWWW"
        subject = "CCCCCCCCCCWWWWWWWWWW"
        wide = banded_sw_score(query, subject, center=5, width=10)
        narrow = banded_sw_score(query, subject, center=0, width=1)
        assert wide > narrow

    def test_band_centered_on_true_diagonal_recovers_score(self):
        rng = random.Random(5)
        base = random_protein(60, rng)
        related = MutationModel(
            substitution_rate=0.2, indel_rate=0.0
        ).mutate(base, rng)
        full = sw_score(base, related)
        banded = banded_sw_score(base, related, center=0, width=3)
        assert banded == full


@settings(max_examples=50, deadline=None)
@given(a=proteins, b=proteins)
def test_full_band_equals_smith_waterman(a, b):
    width = len(a) + len(b) + 1
    assert banded_sw_score(a, b, center=0, width=width) == sw_score(a, b)


@settings(max_examples=40, deadline=None)
@given(
    a=proteins,
    b=proteins,
    center=st.integers(min_value=-10, max_value=10),
    width=st.integers(min_value=0, max_value=12),
)
def test_band_never_exceeds_full_score(a, b, center, width):
    assert banded_sw_score(a, b, center=center, width=width) <= sw_score(a, b)


@settings(max_examples=40, deadline=None)
@given(
    a=proteins,
    b=proteins,
    center=st.integers(min_value=-5, max_value=5),
    width=st.integers(min_value=0, max_value=8),
)
def test_wider_band_never_worse(a, b, center, width):
    narrow = banded_sw_score(a, b, center=center, width=width)
    wide = banded_sw_score(a, b, center=center, width=width + 3)
    assert wide >= narrow


@settings(max_examples=40, deadline=None)
@given(a=proteins, b=proteins, width=st.integers(min_value=0, max_value=10))
def test_band_score_non_negative(a, b, width):
    assert banded_sw_score(a, b, center=0, width=width) >= 0
