"""Tests for the serial and pool executors (timeouts, retries, faults)."""

import pytest

from repro.runtime.executor import (
    KillFirstN,
    PoolExecutor,
    SerialExecutor,
    TaskError,
)
from repro.runtime.tasks import Task


def squares(count):
    return [Task("selftest", ("square", value), label=f"sq{value}")
            for value in range(count)]


class TestSerialExecutor:
    def test_runs_in_order(self):
        outcomes = SerialExecutor().run_many(squares(5))
        assert [outcome.value for outcome in outcomes] == [0, 1, 4, 9, 16]
        assert all(outcome.where == "inline" for outcome in outcomes)

    def test_failure_raises_task_error(self):
        with pytest.raises(TaskError):
            SerialExecutor().run_many([Task("selftest", ("raise",))])

    def test_empty(self):
        assert SerialExecutor().run_many([]) == []


class TestPoolExecutor:
    def test_computes_results_in_order(self):
        with PoolExecutor(2) as pool:
            outcomes = pool.run_many(squares(8))
        assert [outcome.value for outcome in outcomes] == [
            value * value for value in range(8)
        ]
        assert all(outcome.where == "pool" for outcome in outcomes)

    def test_pool_survives_multiple_batches(self):
        with PoolExecutor(2) as pool:
            first = pool.run_many(squares(3))
            second = pool.run_many(squares(4))
        assert [outcome.value for outcome in first] == [0, 1, 4]
        assert [outcome.value for outcome in second] == [0, 1, 4, 9]

    def test_task_exception_degrades_then_raises(self):
        # The task fails in every worker attempt and in the in-process
        # fallback, so the campaign-level error survives.
        with PoolExecutor(2, retries=1) as pool:
            with pytest.raises(TaskError):
                pool.run_many([Task("selftest", ("raise",))])

    def test_killed_worker_is_retried(self, tmp_path):
        marker = tmp_path / "struck"
        with PoolExecutor(2, retries=2) as pool:
            outcomes = pool.run_many(
                [Task("selftest", ("exit_once", str(marker)))] + squares(4)
            )
        assert outcomes[0].value == "recovered"
        assert outcomes[0].retries >= 1
        assert [outcome.value for outcome in outcomes[1:]] == [0, 1, 4, 9]

    def test_stuck_worker_times_out_and_retries(self, tmp_path):
        marker = tmp_path / "slow"
        with PoolExecutor(1, task_timeout=0.5, retries=2) as pool:
            outcomes = pool.run_many(
                [Task("selftest", ("sleep_once", str(marker), 60.0))]
            )
        assert outcomes[0].value == "recovered"
        assert outcomes[0].retries >= 1

    def test_kill_first_n_fault_hook(self, tmp_path):
        hook = KillFirstN(2)
        with PoolExecutor(2, retries=2, fault_hook=hook) as pool:
            outcomes = pool.run_many(squares(6))
        assert [outcome.value for outcome in outcomes] == [
            value * value for value in range(6)
        ]
        assert sum(outcome.retries for outcome in outcomes) >= 2

    def test_fault_hook_respects_kind_filter(self):
        hook = KillFirstN(1, kind="simulate")  # never matches selftest
        with PoolExecutor(2, fault_hook=hook) as pool:
            outcomes = pool.run_many(squares(3))
        assert sum(outcome.retries for outcome in outcomes) == 0

    def test_broken_pool_degrades_to_inline(self, monkeypatch):
        pool = PoolExecutor(2)
        monkeypatch.setattr(
            pool, "_ensure_started",
            lambda: (_ for _ in ()).throw(OSError("no processes")),
        )
        outcomes = pool.run_many(squares(3))
        assert [outcome.value for outcome in outcomes] == [0, 1, 4]
        assert all(outcome.where == "inline" for outcome in outcomes)
        pool.close()
