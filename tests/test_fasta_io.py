"""Unit tests for FASTA reading/writing."""

import pytest

from repro.bio.fasta_io import (
    FastaFormatError,
    format_fasta,
    parse_fasta_text,
    read_fasta,
    write_fasta,
)
from repro.bio.sequence import Sequence


SAMPLE = """>P1 first protein
ACDEFG
HIKLMN
>P2
PQRST
"""


class TestParsing:
    def test_parses_records(self):
        records = parse_fasta_text(SAMPLE)
        assert [r.identifier for r in records] == ["P1", "P2"]

    def test_joins_wrapped_lines(self):
        records = parse_fasta_text(SAMPLE)
        assert records[0].text == "ACDEFGHIKLMN"

    def test_description(self):
        records = parse_fasta_text(SAMPLE)
        assert records[0].description == "first protein"
        assert records[1].description == ""

    def test_blank_lines_ignored(self):
        records = parse_fasta_text(">A x\n\nACD\n\nEFG\n")
        assert records[0].text == "ACDEFG"

    def test_data_before_header_rejected(self):
        with pytest.raises(FastaFormatError):
            parse_fasta_text("ACDEFG\n>A\nACD\n")

    def test_empty_header_rejected(self):
        with pytest.raises(FastaFormatError):
            parse_fasta_text(">\nACD\n")

    def test_empty_input(self):
        assert parse_fasta_text("") == []


class TestFormatting:
    def test_wraps_lines(self):
        seq = Sequence("S", "A" * 130)
        text = format_fasta([seq], line_width=60)
        lines = text.strip().splitlines()
        assert lines[0] == ">S"
        assert [len(line) for line in lines[1:]] == [60, 60, 10]

    def test_header_includes_description(self):
        seq = Sequence("S", "ACD", description="some protein")
        assert format_fasta([seq]).startswith(">S some protein\n")

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            format_fasta([Sequence("S", "ACD")], line_width=0)


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        sequences = [
            Sequence("A1", "ACDEFGHIKLMNPQRSTVWY" * 5, description="alpha"),
            Sequence("B2", "WYVA"),
        ]
        path = tmp_path / "db.fasta"
        write_fasta(sequences, path)
        loaded = read_fasta(path)
        assert loaded == sequences
        assert loaded[0].description == "alpha"
