"""Tests for the traced blastn kernel (paper listing 1 code path)."""

import random

import pytest

from repro.align.blast.nucleotide import BlastnEngine
from repro.bio.alphabet import DNA
from repro.bio.database import SequenceDatabase
from repro.bio.packed import PackedSequence
from repro.bio.sequence import Sequence
from repro.bio.synthetic import random_dna
from repro.isa.opcodes import OpClass
from repro.kernels.blastn_kernel import BlastnKernel


@pytest.fixture(scope="module")
def dna_database():
    rng = random.Random(8)
    query_text = random_dna(80, rng)
    subjects = []
    for index in range(6):
        text = random_dna(300, rng)
        if index % 3 == 0:
            text = text[:80] + query_text[10:60] + text[130:]
        subjects.append(Sequence(f"S{index}", text, alphabet=DNA))
    return Sequence("q", query_text, alphabet=DNA), SequenceDatabase(
        subjects, alphabet=DNA, name="dna-db"
    )


class TestBlastnKernel:
    def test_scores_match_engine(self, dna_database):
        query, database = dna_database
        run = BlastnKernel().run(query, database, record=True)
        engine = BlastnEngine(query)
        for sid, score in run.scores.items():
            packed = PackedSequence.from_sequence(database.get(sid))
            assert score == engine.score_subject(packed), sid

    def test_trace_wellformed(self, dna_database):
        query, database = dna_database
        run = BlastnKernel().run(query, database, record=True)
        run.trace.validate()

    def test_unpack_heavy_mix(self, dna_database):
        query, database = dna_database
        run = BlastnKernel().run(query, database, record=True)
        mix = run.mix
        # The unpack shift/mask chain makes this the most ALU-heavy
        # kernel of all; no vector work.
        assert mix.fraction(OpClass.IALU) > 0.45
        assert mix.count(OpClass.VSIMPLE) == 0
        assert 0.10 < mix.control_fraction() < 0.30

    def test_packed_scan_is_compact(self, dna_database):
        query, database = dna_database
        run = BlastnKernel().run(query, database, record=False)
        # Four bases per byte load: far fewer instructions per residue
        # than the protein scan.
        assert run.mix.total / database.residue_count < 20

    def test_budget_truncation(self, dna_database):
        query, database = dna_database
        run = BlastnKernel().run(query, database, record=True, limit=3000)
        assert run.truncated
        run.trace.validate()
