"""Tests validating empirical score statistics against theory."""

import math
import random

import pytest

from repro.align.blast.karlin import solve_lambda
from repro.align.statistics import (
    EULER_GAMMA,
    UNGAPPED,
    empirical_lambda,
    empirical_score_survey,
    fit_gumbel,
)
from repro.align.types import PAPER_GAPS
from repro.bio.matrices import BLOSUM62


class TestGumbelFit:
    def test_recovers_known_parameters(self):
        # Sample from a known Gumbel and refit.
        rng = random.Random(1)
        mu, beta = 20.0, 4.0
        sample = [
            mu - beta * math.log(-math.log(rng.random()))
            for _ in range(20_000)
        ]
        fit = fit_gumbel(sample)
        assert fit.location == pytest.approx(mu, abs=0.4)
        assert fit.scale == pytest.approx(beta, abs=0.3)

    def test_survival_function(self):
        fit = fit_gumbel([10, 12, 14, 11, 13, 15, 12, 13, 11, 14, 12, 13])
        assert fit.survival(-100) == pytest.approx(1.0)
        assert fit.survival(1000) == pytest.approx(0.0, abs=1e-9)
        assert fit.survival(12) > fit.survival(14)

    def test_small_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_gumbel([1, 2, 3])

    def test_degenerate_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_gumbel([5] * 50)

    def test_gamma_constant(self):
        assert EULER_GAMMA == pytest.approx(0.57722, abs=1e-5)


class TestEmpiricalLambda:
    def test_ungapped_scores_match_karlin_lambda(self):
        """The headline validation: the empirically fitted decay rate of
        ungapped local scores matches the analytic Karlin-Altschul
        lambda of BLOSUM62 within sampling error."""
        fit = empirical_lambda(pair_count=150, sequence_length=120, seed=7)
        analytic = solve_lambda(BLOSUM62)
        assert fit.decay_rate == pytest.approx(analytic, rel=0.30)

    def test_gapped_lambda_smaller_than_ungapped(self):
        # Allowing gaps fattens the score tail: decay rate drops.
        scores_gapped = empirical_score_survey(
            100, 100, seed=3, gaps=PAPER_GAPS
        )
        scores_ungapped = empirical_score_survey(
            100, 100, seed=3, gaps=UNGAPPED
        )
        gapped = fit_gumbel(scores_gapped)
        ungapped = fit_gumbel(scores_ungapped)
        assert gapped.decay_rate < ungapped.decay_rate

    def test_scores_grow_with_length(self):
        short = empirical_score_survey(60, 60, seed=4)
        long = empirical_score_survey(60, 240, seed=4)
        assert sum(long) / len(long) > sum(short) / len(short)

    def test_invalid_survey_parameters(self):
        with pytest.raises(ValueError):
            empirical_score_survey(0, 100)
        with pytest.raises(ValueError):
            empirical_score_survey(10, 1)
