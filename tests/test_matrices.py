"""Unit and property tests for substitution matrices."""

import pytest
from hypothesis import given, strategies as st

from repro.bio.alphabet import PROTEIN
from repro.bio.matrices import (
    BLOSUM50,
    BLOSUM62,
    PAM250,
    ScoringMatrix,
    get_matrix,
)

ALL_MATRICES = (BLOSUM62, BLOSUM50, PAM250)


class TestKnownValues:
    """Spot checks against published BLOSUM62 entries."""

    def test_identities(self):
        assert BLOSUM62.score_symbols("W", "W") == 11
        assert BLOSUM62.score_symbols("C", "C") == 9
        assert BLOSUM62.score_symbols("A", "A") == 4

    def test_substitutions(self):
        assert BLOSUM62.score_symbols("A", "R") == -1
        assert BLOSUM62.score_symbols("I", "L") == 2
        assert BLOSUM62.score_symbols("W", "G") == -2

    def test_max_and_min(self):
        assert BLOSUM62.max_score() == 11  # W-W
        assert BLOSUM62.min_score() == -4


@pytest.mark.parametrize("matrix", ALL_MATRICES, ids=lambda m: m.name)
class TestMatrixInvariants:
    def test_symmetric(self, matrix):
        assert matrix.is_symmetric()

    def test_diagonal_positive(self, matrix):
        # Self-substitution of standard residues always scores > 0.
        for code in range(20):
            assert matrix.score(code, code) > 0

    def test_diagonal_is_row_maximum_mostly(self, matrix):
        # A residue's best match is itself (or a close relative).
        for code in range(20):
            assert matrix.score(code, code) == max(matrix.row(code)[:20])

    def test_flat_layout(self, matrix):
        size = matrix.size
        for a in range(size):
            for b in range(size):
                assert matrix.flat[a * size + b] == matrix.score(a, b)


class TestLookup:
    def test_aliases(self):
        assert get_matrix("BL62") is BLOSUM62
        assert get_matrix("blosum62") is BLOSUM62
        assert get_matrix("bl50") is BLOSUM50
        assert get_matrix("PAM250") is PAM250

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_matrix("BLOSUM999")

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            ScoringMatrix(name="bad", alphabet=PROTEIN, rows=((1, 2), (3, 4)))


@given(
    a=st.integers(min_value=0, max_value=22),
    b=st.integers(min_value=0, max_value=22),
)
def test_symmetry_property(a, b):
    for matrix in ALL_MATRICES:
        assert matrix.score(a, b) == matrix.score(b, a)


@given(
    a=st.sampled_from("ARNDCQEGHILKMFPSTWYV"),
    b=st.sampled_from("ARNDCQEGHILKMFPSTWYV"),
)
def test_symbol_and_code_paths_agree(a, b):
    code_a, code_b = PROTEIN.code_of(a), PROTEIN.code_of(b)
    assert BLOSUM62.score_symbols(a, b) == BLOSUM62.score(code_a, code_b)
