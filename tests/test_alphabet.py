"""Unit tests for residue alphabets and encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.bio.alphabet import DNA, PROTEIN, Alphabet, AlphabetError


class TestProteinAlphabet:
    def test_has_23_symbols(self):
        assert PROTEIN.size == 23

    def test_twenty_standard_amino_acids_lead(self):
        assert PROTEIN.symbols[:20] == "ARNDCQEGHILKMFPSTWYV"

    def test_wildcard_is_x(self):
        assert PROTEIN.wildcard == "X"
        assert PROTEIN.wildcard_code == PROTEIN.code_of("X")

    def test_code_roundtrip(self):
        for code, symbol in enumerate(PROTEIN.symbols):
            assert PROTEIN.code_of(symbol) == code
            assert PROTEIN.symbol_of(code) == symbol

    def test_lowercase_accepted(self):
        assert PROTEIN.code_of("a") == PROTEIN.code_of("A")

    def test_unknown_letter_maps_to_wildcard(self):
        assert PROTEIN.code_of("J") == PROTEIN.wildcard_code
        assert PROTEIN.code_of("O") == PROTEIN.wildcard_code

    def test_non_letter_rejected(self):
        with pytest.raises(AlphabetError):
            PROTEIN.code_of("1")
        with pytest.raises(AlphabetError):
            PROTEIN.code_of("-")

    def test_symbol_of_out_of_range(self):
        with pytest.raises(AlphabetError):
            PROTEIN.symbol_of(23)
        with pytest.raises(AlphabetError):
            PROTEIN.symbol_of(-1)

    def test_contains(self):
        assert "A" in PROTEIN
        assert "a" in PROTEIN
        assert "-" not in PROTEIN

    def test_encode_decode_roundtrip(self):
        text = "ACDEFGHIKLMNPQRSTVWY"
        assert PROTEIN.decode(PROTEIN.encode(text)) == text


class TestDnaAlphabet:
    def test_symbols(self):
        assert DNA.symbols == "ACGTN"

    def test_wildcard(self):
        assert DNA.wildcard == "N"


class TestAlphabetValidation:
    def test_duplicate_symbols_rejected(self):
        with pytest.raises(ValueError):
            Alphabet(name="bad", symbols="AAB", wildcard="B")

    def test_missing_wildcard_rejected(self):
        with pytest.raises(ValueError):
            Alphabet(name="bad", symbols="ABC", wildcard="Z")


@given(st.text(alphabet="ARNDCQEGHILKMFPSTWYVBZX", max_size=200))
def test_encode_decode_identity(text):
    assert PROTEIN.decode(PROTEIN.encode(text)) == text.upper()


@given(st.lists(st.integers(min_value=0, max_value=22), max_size=100))
def test_decode_encode_identity(codes):
    assert PROTEIN.encode(PROTEIN.decode(codes)) == codes
