"""Unit tests for the abstract ISA layer: opcodes, instructions, traces."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    FIG1_ORDER,
    FU_OF_OPCLASS,
    LATENCY_OF_OPCLASS,
    LOAD_OPS,
    MEMORY_OPS,
    STORE_OPS,
    FunctionalUnit,
    OpClass,
)
from repro.isa.trace import Trace


class TestOpcodes:
    def test_every_class_has_unit_and_latency(self):
        for op in OpClass:
            assert op in FU_OF_OPCLASS
            assert op in LATENCY_OF_OPCLASS

    def test_memory_class_partition(self):
        assert LOAD_OPS | STORE_OPS == MEMORY_OPS
        assert not (LOAD_OPS & STORE_OPS)

    def test_vector_ops_use_vector_units(self):
        assert FU_OF_OPCLASS[OpClass.VSIMPLE] == FunctionalUnit.VI
        assert FU_OF_OPCLASS[OpClass.VPERM] == FunctionalUnit.VPER
        assert FU_OF_OPCLASS[OpClass.VCMPLX] == FunctionalUnit.VCMPLX

    def test_memory_ops_share_lsu(self):
        for op in MEMORY_OPS:
            assert FU_OF_OPCLASS[op] == FunctionalUnit.LDST

    def test_fig1_order_covers_main_classes(self):
        assert OpClass.IALU in FIG1_ORDER
        assert OpClass.CTRL in FIG1_ORDER
        assert len(set(FIG1_ORDER)) == len(FIG1_ORDER)


class TestInstruction:
    def test_load_properties(self):
        load = Instruction(OpClass.ILOAD, pc=0x100, address=0x2000, size=8,
                           has_dest=True)
        assert load.is_load and load.is_memory and not load.is_store
        assert not load.is_branch

    def test_store_properties(self):
        store = Instruction(OpClass.VSTORE, pc=0x104, address=0x3000, size=16)
        assert store.is_store and store.is_memory and not store.is_load

    def test_branch_properties(self):
        branch = Instruction(OpClass.CTRL, pc=0x108, taken=True, target=0x80)
        assert branch.is_branch and not branch.is_memory

    def test_repr_contains_class(self):
        alu = Instruction(OpClass.IALU, pc=0x10, has_dest=True)
        assert "IALU" in repr(alu)


def _make_trace():
    return Trace("t", [
        Instruction(OpClass.IALU, pc=0x10, has_dest=True),
        Instruction(OpClass.ILOAD, pc=0x14, sources=(0,), has_dest=True,
                    address=0x1000, size=8),
        Instruction(OpClass.CTRL, pc=0x18, sources=(1,), taken=True,
                    target=0x40),
    ])


class TestTrace:
    def test_len_iter_getitem(self):
        trace = _make_trace()
        assert len(trace) == 3
        assert trace[0].op == OpClass.IALU
        assert [i.op for i in trace] == [OpClass.IALU, OpClass.ILOAD,
                                         OpClass.CTRL]

    def test_mix(self):
        mix = _make_trace().mix()
        assert mix.total == 3
        assert mix.count(OpClass.IALU) == 1
        assert mix.control_fraction() == pytest.approx(1 / 3)
        assert mix.load_fraction() == pytest.approx(1 / 3)
        assert mix.store_fraction() == 0.0

    def test_branch_count(self):
        assert _make_trace().branch_count() == 1

    def test_slice_is_wellformed(self):
        sliced = _make_trace().slice(2)
        assert len(sliced) == 2
        sliced.validate()

    def test_validate_accepts_wellformed(self):
        _make_trace().validate()

    def test_validate_rejects_forward_dependency(self):
        bad = Trace("bad", [
            Instruction(OpClass.IALU, pc=0x10, sources=(1,), has_dest=True),
            Instruction(OpClass.IALU, pc=0x14, has_dest=True),
        ])
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_destless_producer(self):
        bad = Trace("bad", [
            Instruction(OpClass.ISTORE, pc=0x10, address=0x100, size=4),
            Instruction(OpClass.IALU, pc=0x14, sources=(0,), has_dest=True),
        ])
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_addressless_memory_op(self):
        bad = Trace("bad", [
            Instruction(OpClass.ILOAD, pc=0x10, has_dest=True),
        ])
        with pytest.raises(ValueError):
            bad.validate()

    def test_empty_mix(self):
        mix = Trace("empty", []).mix()
        assert mix.total == 0
        assert mix.fraction(OpClass.IALU) == 0.0

    def test_breakdown_keys(self):
        breakdown = _make_trace().mix().breakdown()
        assert set(breakdown) == {op.name.lower() for op in FIG1_ORDER}
