"""Behavioural tests for the out-of-order core on hand-built traces."""

import pytest

from repro.isa.builder import TraceBuilder
from repro.uarch.config import (
    BP_PERFECT,
    ME1,
    MEINF,
    PROC_4WAY,
    PROC_8WAY,
)
from repro.uarch.simulator import simulate


def alu_chain(length):
    """Serial dependency chain of ALU ops."""
    builder = TraceBuilder("chain")
    register = builder.ialu("start")
    for _ in range(length - 1):
        register = builder.ialu("link", (register,))
    return builder.build()


def independent_alus(count):
    builder = TraceBuilder("wide")
    for index in range(count):
        builder.ialu(f"op{index % 8}")
    return builder.build()


class TestConservation:
    def test_everything_retires(self):
        result = simulate(independent_alus(500), PROC_4WAY)
        assert result.instructions == 500
        assert result.cycles > 0

    def test_ipc_bounded_by_dispatch_width(self):
        result = simulate(independent_alus(2000), PROC_4WAY)
        assert result.ipc <= PROC_4WAY.dispatch_width + 1e-9

    def test_empty_trace(self):
        from repro.isa.trace import Trace

        result = simulate(Trace("empty", []), PROC_4WAY)
        assert result.cycles == 0
        assert result.instructions == 0

    def test_trauma_cycles_bounded(self):
        result = simulate(alu_chain(500), PROC_4WAY)
        assert sum(result.traumas.values()) <= result.cycles

    def test_max_cycles_guard(self):
        with pytest.raises(RuntimeError):
            simulate(alu_chain(5000), PROC_4WAY, max_cycles=10)


class TestDependencyChains:
    def test_serial_chain_runs_near_one_ipc(self):
        result = simulate(alu_chain(1000), PROC_4WAY.with_memory(MEINF))
        # One-cycle ALU ops in a serial chain: ~1 instruction/cycle.
        assert 0.8 <= result.ipc <= 1.1

    def test_independent_ops_exploit_width(self):
        result = simulate(independent_alus(2000), PROC_4WAY.with_memory(MEINF))
        # Bounded by 3 FX units on the 4-way config.
        assert result.ipc > 2.0

    def test_wider_machine_helps_independent_work(self):
        narrow = simulate(independent_alus(2000), PROC_4WAY.with_memory(MEINF))
        wide = simulate(independent_alus(2000), PROC_8WAY.with_memory(MEINF))
        assert wide.cycles < narrow.cycles

    def test_chain_blames_fix_dependencies(self):
        result = simulate(alu_chain(2000), PROC_4WAY.with_memory(MEINF))
        assert result.traumas["rg_fix"] > 0


class TestMemoryBehaviour:
    def test_cold_load_miss_costs_memory_latency(self):
        builder = TraceBuilder("one-load")
        register = builder.iload("ld", 0x1000)
        for _ in range(3):
            register = builder.ialu("use", (register,))
        result = simulate(builder.build(), PROC_4WAY.with_memory(ME1))
        assert result.cycles > ME1.memory_latency

    def test_ideal_memory_fast(self):
        builder = TraceBuilder("one-load")
        register = builder.iload("ld", 0x1000)
        for _ in range(3):
            register = builder.ialu("use", (register,))
        result = simulate(builder.build(), PROC_4WAY.with_memory(MEINF))
        assert result.cycles < 30

    def test_repeated_line_hits_after_first(self):
        builder = TraceBuilder("hot-loop")
        for index in range(200):
            builder.iload("ld", 0x1000 + (index % 16) * 8)
        result = simulate(builder.build(), PROC_4WAY.with_memory(ME1))
        assert result.dl1.misses == 1  # a single 128-byte line
        assert result.dl1.accesses == 200

    def test_streaming_misses_counted(self):
        builder = TraceBuilder("stream")
        for index in range(256):
            builder.iload("ld", 0x100000 + index * 128)
        result = simulate(builder.build(), PROC_4WAY.with_memory(ME1))
        assert result.dl1.misses == 256

    def test_mshr_limit_slows_misses(self):
        def stream():
            builder = TraceBuilder("stream")
            for index in range(64):
                builder.iload("ld", 0x100000 + index * 128)
            return builder.build()

        from dataclasses import replace

        few = replace(PROC_4WAY, max_outstanding_misses=1)
        many = replace(PROC_4WAY, max_outstanding_misses=16)
        slow = simulate(stream(), few.with_memory(ME1))
        fast = simulate(stream(), many.with_memory(ME1))
        assert slow.cycles > fast.cycles * 2

    def test_store_updates_cache_for_later_load(self):
        builder = TraceBuilder("st-ld")
        value = builder.ialu("v")
        builder.istore("st", 0x4000, (value,), size=8)
        # Pad so the load issues after the store completed.
        pad = value
        for _ in range(40):
            pad = builder.ialu("pad", (pad,))
        builder.iload("ld", 0x4000, (pad,))
        result = simulate(builder.build(), PROC_4WAY.with_memory(ME1))
        assert result.dl1.misses == 1  # only the store's allocation


class TestBranchBehaviour:
    def make_branchy(self, pattern):
        builder = TraceBuilder("branchy")
        register = builder.ialu("init")
        for index, taken in enumerate(pattern):
            register = builder.ialu("work", (register,))
            builder.ctrl("br", taken=taken, sources=(register,))
        return builder.build()

    def test_predictable_branches_cheap(self):
        steady = self.make_branchy([True] * 400)
        result = simulate(steady, PROC_4WAY.with_memory(MEINF))
        assert result.branch.accuracy > 0.95

    def test_random_branches_cause_if_pred(self):
        import random

        rng = random.Random(3)
        noisy = self.make_branchy([rng.random() < 0.5 for _ in range(400)])
        result = simulate(noisy, PROC_4WAY.with_memory(MEINF))
        assert result.branch.accuracy < 0.8
        assert result.traumas["if_pred"] > 0

    def test_mispredictions_cost_cycles(self):
        import random

        rng = random.Random(4)
        steady = self.make_branchy([True] * 400)
        noisy = self.make_branchy([rng.random() < 0.5 for _ in range(400)])
        fast = simulate(steady, PROC_4WAY.with_memory(MEINF))
        slow = simulate(noisy, PROC_4WAY.with_memory(MEINF))
        assert slow.cycles > fast.cycles * 1.5

    def test_perfect_predictor_removes_penalty(self):
        import random

        rng = random.Random(5)
        noisy = self.make_branchy([rng.random() < 0.5 for _ in range(400)])
        real = simulate(noisy, PROC_4WAY.with_memory(MEINF))
        perfect = simulate(
            noisy, PROC_4WAY.with_memory(MEINF).with_branch(BP_PERFECT)
        )
        assert perfect.cycles < real.cycles
        assert perfect.branch.accuracy == 1.0
        assert perfect.traumas["if_pred"] == 0

    def test_btb_miss_penalty_charged_once_trained(self):
        steady = self.make_branchy([True] * 100)
        result = simulate(steady, PROC_4WAY.with_memory(MEINF))
        assert result.branch.btb_misses <= 2


class TestOccupancyTracking:
    def test_histograms_cover_every_cycle(self):
        trace = alu_chain(500)
        result = simulate(trace, PROC_4WAY, track_occupancy=True)
        for name, histogram in result.queue_occupancy.items():
            assert sum(histogram.values()) == result.cycles, name

    def test_disabled_by_default(self):
        result = simulate(alu_chain(100), PROC_4WAY)
        assert result.queue_occupancy == {}

    def test_mean_occupancy_sane(self):
        result = simulate(alu_chain(500), PROC_4WAY, track_occupancy=True)
        assert 0 <= result.occupancy_mean("FIX-Q") <= PROC_4WAY.issue_queue_size
