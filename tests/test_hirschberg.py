"""Tests for Hirschberg linear-space global alignment."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.hirschberg import hirschberg, nw_linear_score
from repro.bio.matrices import BLOSUM62
from repro.bio.synthetic import MutationModel, random_protein

proteins = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=0, max_size=45)
gaps = st.integers(min_value=1, max_value=12)


def quadratic_reference(a: str, b: str, gap: int) -> int:
    """Straightforward quadratic-space linear-gap global DP."""
    from repro.bio.alphabet import PROTEIN

    ca, cb = PROTEIN.encode(a), PROTEIN.encode(b)
    rows = BLOSUM62.rows
    table = [[0] * (len(cb) + 1) for _ in range(len(ca) + 1)]
    for i in range(1, len(ca) + 1):
        table[i][0] = -gap * i
    for j in range(1, len(cb) + 1):
        table[0][j] = -gap * j
    for i in range(1, len(ca) + 1):
        for j in range(1, len(cb) + 1):
            table[i][j] = max(
                table[i - 1][j - 1] + rows[ca[i - 1]][cb[j - 1]],
                table[i - 1][j] - gap,
                table[i][j - 1] - gap,
            )
    return table[len(ca)][len(cb)]


class TestLinearScore:
    def test_identical(self):
        text = "ACDEFGHIKLMNPQRSTVWY"
        expected = sum(BLOSUM62.score_symbols(c, c) for c in text)
        assert nw_linear_score(text, text) == expected

    def test_empty(self):
        assert nw_linear_score("", "ACD", gap=8) == -24
        assert nw_linear_score("ACD", "", gap=8) == -24

    def test_against_quadratic_reference(self):
        rng = random.Random(1)
        for _ in range(10):
            a = random_protein(rng.randint(1, 40), rng)
            b = random_protein(rng.randint(1, 40), rng)
            assert nw_linear_score(a, b) == quadratic_reference(a, b, 8)


class TestHirschberg:
    def test_alignment_strips_to_inputs(self):
        rng = random.Random(2)
        a = random_protein(60, rng)
        b = MutationModel().mutate(a, rng)
        result = hirschberg(a, b)
        assert result.aligned_query.replace("-", "") == a
        assert result.aligned_subject.replace("-", "") == b

    def test_score_matches_linear_dp(self):
        rng = random.Random(3)
        for _ in range(8):
            a = random_protein(rng.randint(1, 50), rng)
            b = random_protein(rng.randint(1, 50), rng)
            result = hirschberg(a, b)
            assert result.score == nw_linear_score(a, b)

    def test_related_sequences_align_tightly(self):
        rng = random.Random(4)
        a = random_protein(80, rng)
        b = MutationModel(substitution_rate=0.1, indel_rate=0.01).mutate(a, rng)
        result = hirschberg(a, b)
        assert result.identity > 0.7


@settings(max_examples=50, deadline=None)
@given(a=proteins, b=proteins, gap=gaps)
def test_hirschberg_score_optimal(a, b, gap):
    result = hirschberg(a, b, gap=gap)
    assert result.score == nw_linear_score(a, b, gap=gap)
    assert result.aligned_query.replace("-", "") == a
    assert result.aligned_subject.replace("-", "") == b


@settings(max_examples=30, deadline=None)
@given(a=proteins, b=proteins, gap=gaps)
def test_linear_score_symmetric(a, b, gap):
    assert nw_linear_score(a, b, gap=gap) == nw_linear_score(b, a, gap=gap)
