"""Unit/integration tests for the BLAST engine."""

from repro.align.blast.engine import BlastEngine, BlastOptions, blast_search
from repro.align.smith_waterman import sw_score
from repro.bio.synthetic import MutationModel, homolog_of


class TestBlastEngine:
    def test_finds_planted_homolog(self, query, small_database):
        homolog = homolog_of(query, seed=1,
                             mutation=MutationModel(substitution_rate=0.2))
        small_database_plus = type(small_database)(
            list(small_database) + [homolog], name="plus"
        )
        result = blast_search(query, small_database_plus)
        assert result.best().subject_id == homolog.identifier

    def test_scores_bounded_by_smith_waterman(self, query, tiny_database):
        engine = BlastEngine(query)
        for subject in tiny_database:
            score = engine.score_subject(subject)
            assert 0 <= score <= sw_score(query, subject)

    def test_statistics_populated(self, query, tiny_database):
        engine = BlastEngine(query)
        engine.search(tiny_database)
        stats = engine.statistics
        assert stats.words_scanned > 0
        assert stats.lookup_entries > 0
        assert stats.single_hits >= stats.two_hits

    def test_extension_counters_consistent(self, query, tiny_database):
        engine = BlastEngine(query)
        engine.search(tiny_database)
        stats = engine.statistics
        assert stats.gapped_extensions <= stats.ungapped_extensions
        assert stats.ungapped_extensions <= stats.two_hits

    def test_hits_annotated_with_evalues(self, query, small_database):
        result = blast_search(query, small_database)
        for hit in result.hits:
            assert hit.evalue >= 0
            # Higher scores always mean lower E-values.
        scores = [hit.score for hit in result.hits]
        evalues = [hit.evalue for hit in result.hits]
        assert scores == sorted(scores, reverse=True)
        assert evalues == sorted(evalues)

    def test_zero_score_subjects_omitted(self, query, tiny_database):
        result = blast_search(query, tiny_database)
        assert all(hit.score > 0 for hit in result.hits)

    def test_best_count_enforced(self, query, small_database):
        options = BlastOptions(best_count=3)
        result = blast_search(query, small_database, options)
        assert len(result.hits) <= 3

    def test_threshold_controls_sensitivity(self, query, small_database):
        sensitive = BlastEngine(query, BlastOptions(threshold=9))
        strict = BlastEngine(query, BlastOptions(threshold=13))
        assert sensitive.lookup.entry_count > strict.lookup.entry_count

    def test_high_identity_hit_recovers_sw_score(self, query, small_database):
        homolog = homolog_of(query, seed=3,
                             mutation=MutationModel(substitution_rate=0.1,
                                                    indel_rate=0.01))
        engine = BlastEngine(query)
        blast_score = engine.score_subject(homolog)
        full = sw_score(query, homolog)
        # The banded gapped extension should recover most of the score.
        assert blast_score >= 0.9 * full
