"""Unit tests for the sequence database container."""

import pytest

from repro.bio.alphabet import DNA
from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence


def make_db():
    return SequenceDatabase(
        [Sequence("A", "ACDE"), Sequence("B", "FGHIK"), Sequence("C", "LM")],
        name="test-db",
    )


class TestDatabase:
    def test_len_and_iteration_order(self):
        db = make_db()
        assert len(db) == 3
        assert [s.identifier for s in db] == ["A", "B", "C"]

    def test_indexing(self):
        db = make_db()
        assert db[1].identifier == "B"

    def test_get_by_identifier(self):
        db = make_db()
        assert db.get("C").text == "LM"
        with pytest.raises(KeyError):
            db.get("Z")

    def test_contains(self):
        db = make_db()
        assert "A" in db
        assert "Z" not in db

    def test_duplicate_identifier_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.add(Sequence("A", "ACD"))

    def test_alphabet_mismatch_rejected(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.add(Sequence("D", "ACGT", alphabet=DNA))

    def test_residue_count(self):
        assert make_db().residue_count == 4 + 5 + 2

    def test_slice_preserves_order(self):
        db = make_db()
        sliced = db.slice(2)
        assert [s.identifier for s in sliced] == ["A", "B"]
        assert "test-db" in sliced.name

    def test_slice_larger_than_db(self):
        assert len(make_db().slice(10)) == 3

    def test_stats(self):
        stats = make_db().stats()
        assert stats.sequence_count == 3
        assert stats.residue_count == 11
        assert stats.shortest == 2
        assert stats.longest == 5
        assert stats.mean_length == pytest.approx(11 / 3)

    def test_empty_stats(self):
        stats = SequenceDatabase().stats()
        assert stats.sequence_count == 0
        assert stats.mean_length == 0.0

    def test_fasta_roundtrip(self, tmp_path):
        db = make_db()
        path = tmp_path / "db.fa"
        db.to_fasta(path)
        loaded = SequenceDatabase.from_fasta(path, name="loaded")
        assert [s.text for s in loaded] == [s.text for s in db]
