"""CLI contract for ``repro lint-trace`` / ``repro lint-code``.

Exit codes (0 clean, 1 violations, 2 usage), the machine-readable
``--json`` shapes, and the acceptance fixture: a corrupted trace
archive must fail naming the violated rule.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.isa.serialize import save_trace
from tracelint_corruptions import CORRUPTIONS, build_sample_trace, fresh_copy

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_cli(*arguments: str) -> subprocess.CompletedProcess:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=environment,
        timeout=300,
    )


@pytest.fixture(scope="module")
def clean_archive(tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("lint-cli") / "clean.npz"
    save_trace(build_sample_trace(), path)
    return path


@pytest.fixture(scope="module")
def corrupted_archive(tmp_path_factory) -> Path:
    trace = fresh_copy(build_sample_trace())
    CORRUPTIONS["forward-dependency"][0](trace)
    path = tmp_path_factory.mktemp("lint-cli") / "corrupted.npz"
    save_trace(trace, path)
    return path


class TestLintTrace:
    def test_clean_archive_exits_zero(self, clean_archive):
        completed = run_cli("lint-trace", str(clean_archive))
        assert completed.returncode == 0, completed.stderr
        assert "1/1 traces clean" in completed.stdout

    def test_corrupted_archive_fails_naming_the_rule(
        self, corrupted_archive
    ):
        completed = run_cli("lint-trace", str(corrupted_archive))
        assert completed.returncode == 1
        assert "TR002" in completed.stdout
        assert "0/1 traces clean" in completed.stdout

    def test_json_report_shape(self, corrupted_archive):
        completed = run_cli("lint-trace", str(corrupted_archive), "--json")
        assert completed.returncode == 1
        payload = json.loads(completed.stdout)
        assert payload["ok"] is False
        (report,) = payload["traces"]
        failing = [
            check["rule"]
            for check in report["checks"]
            if not check["passed"]
        ]
        assert failing == ["TR002"]

    def test_no_targets_is_a_usage_error(self):
        completed = run_cli("lint-trace")
        assert completed.returncode == 2
        assert "--all" in completed.stderr

    def test_unknown_target_is_a_usage_error(self):
        completed = run_cli("lint-trace", "not-a-workload")
        assert completed.returncode == 2
        assert "not-a-workload" in completed.stderr


class TestLintCode:
    def test_repo_is_clean(self):
        completed = run_cli("lint-code")
        assert completed.returncode == 0, completed.stdout
        assert "repolint: clean" in completed.stdout

    def test_json_report_shape(self):
        completed = run_cli("lint-code", "--json")
        assert completed.returncode == 0
        payload = json.loads(completed.stdout)
        assert payload["ok"] is True
        assert payload["violations"] == []
        assert set(payload["rules"]) == {
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007", "REP008", "REP009",
        }

    def test_single_path_scope(self, tmp_path):
        offender = tmp_path / "runtime" / "offender.py"
        offender.parent.mkdir()
        offender.write_text(
            "def f(q):\n"
            "    try:\n"
            "        q.get()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        completed = run_cli("lint-code", str(offender))
        assert completed.returncode == 1
        assert "REP005" in completed.stdout


class TestLintFlow:
    def test_repo_is_clean(self):
        completed = run_cli("lint-flow")
        assert completed.returncode == 0, completed.stdout
        assert "flowlint: clean" in completed.stdout

    def test_json_report_shape(self):
        completed = run_cli("lint-flow", "--json")
        assert completed.returncode == 0
        payload = json.loads(completed.stdout)
        assert payload["ok"] is True
        assert payload["violations"] == []
        assert set(payload["rules"]) == {
            "FL001", "FL002", "FL003", "FL004", "FL005",
        }
        assert payload["graph"]["functions"] > 500
        assert payload["graph"]["edges"] > 1000

    def test_rule_subset_and_unknown_rule(self):
        completed = run_cli("lint-flow", "--rules", "FL001,FL004")
        assert completed.returncode == 0
        completed = run_cli("lint-flow", "--rules", "FL999")
        assert completed.returncode == 2
        assert "unknown flow rule" in completed.stderr

    def test_graph_json_dump(self, tmp_path):
        target = tmp_path / "graph.json"
        completed = run_cli("lint-flow", "--graph-json", str(target))
        assert completed.returncode == 0
        payload = json.loads(target.read_text())
        assert {"digest", "functions", "edges", "tables"} <= set(payload)
        names = {entry["qualname"] for entry in payload["functions"]}
        assert "repro.runtime.tasks.run_task" in names

    def test_graph_json_stdout_is_pure_json(self):
        # With `--graph-json -` the document owns stdout; the human
        # report must land on stderr or the stream is unparseable.
        completed = run_cli("lint-flow", "--graph-json", "-")
        assert completed.returncode == 0
        payload = json.loads(completed.stdout)
        assert {"digest", "functions", "edges", "tables"} <= set(payload)
        assert "flowlint: clean" in completed.stderr

    def test_warm_cache_run(self, tmp_path):
        cold = run_cli("lint-flow", "--cache-dir", str(tmp_path))
        assert cold.returncode == 0
        assert "cold scan" in cold.stdout
        warm = run_cli("lint-flow", "--cache-dir", str(tmp_path))
        assert warm.returncode == 0
        assert "warm cache" in warm.stdout


class TestStaleSuppressionsCli:
    def test_repo_suppressions_all_live(self):
        completed = run_cli("lint-code", "--stale-suppressions")
        assert completed.returncode == 0, completed.stdout
        assert "suppressions: all live" in completed.stdout
