"""Unit tests for the Table II query set."""

import pytest

from repro.bio.queries import (
    DEFAULT_QUERY_ACCESSION,
    TABLE2_QUERIES,
    all_queries,
    default_query,
    make_query,
    query_by_accession,
)


class TestTable2:
    def test_row_count(self):
        assert len(TABLE2_QUERIES) == 10

    def test_lengths_match_paper(self):
        lengths = {d.accession: d.length for d in TABLE2_QUERIES}
        assert lengths["P02232"] == 143
        assert lengths["P14942"] == 222
        assert lengths["P03435"] == 567

    def test_length_range(self):
        assert min(d.length for d in TABLE2_QUERIES) == 143
        assert max(d.length for d in TABLE2_QUERIES) == 567


class TestQueryGeneration:
    def test_default_query_is_glutathione(self):
        query = default_query()
        assert query.identifier == DEFAULT_QUERY_ACCESSION == "P14942"
        assert len(query) == 222

    def test_deterministic(self):
        assert default_query().text == default_query().text

    def test_all_queries_lengths(self):
        queries = all_queries()
        assert [len(q) for q in queries] == [d.length for d in TABLE2_QUERIES]

    def test_distinct_sequences(self):
        texts = {q.text for q in all_queries()}
        assert len(texts) == len(TABLE2_QUERIES)

    def test_unknown_accession(self):
        with pytest.raises(KeyError):
            query_by_accession("P99999")

    def test_make_query_matches_lookup(self):
        descriptor = TABLE2_QUERIES[0]
        assert make_query(descriptor) == query_by_accession(descriptor.accession)
