"""FlowLint engine tests: fixtures per rule, graph construction, fuzz.

Each FL rule has a committed fixture package under
``tests/flow_fixtures/<rule>/repro`` shaped like a miniature of the
real repo (a ``runtime/tasks.py`` dispatch table, helpers a call or
two deep).  Every fixture proves three things: the rule fires
*interprocedurally* (the violation is at least one call below the
root), a ``flowlint: disable`` comment on the offending line
suppresses it, and clean code stays clean.
"""

from __future__ import annotations

import ast
import pickle
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify import flow
from repro.verify.flow import TaintSpec

FIXTURES = Path(__file__).parent / "flow_fixtures"

PROCESSOR = "repro.uarch.config.ProcessorConfig"


def fixture_graph(name: str, spec: TaintSpec | None = None) -> flow.FlowGraph:
    return flow.build_graph(
        FIXTURES / name / "repro", spec=spec or TaintSpec()
    )


def fl002_spec() -> TaintSpec:
    return TaintSpec(
        config_fields={PROCESSOR: {"width": None, "depth": None}},
        name_seeds={"config": PROCESSOR},
    )


class TestFL001:
    def test_fires_two_calls_deep(self):
        graph = fixture_graph("fl001")
        violations = flow.lint_flow(graph=graph)
        assert [v.rule for v in violations] == ["FL001"]
        violation = violations[0]
        assert violation.path == "repro/analysis/stats.py"
        assert "time.time" in violation.message
        # Interprocedural: task body -> summarize -> _stamp.
        assert len(violation.chain) == 3
        assert violation.chain[0].endswith("execute_simulate")
        assert violation.chain[-1].endswith("_stamp")

    def test_suppression_and_clean(self):
        graph = fixture_graph("fl001")
        raw = flow.lint_flow(graph=graph, honor_suppressions=False)
        # The suppressed twin fires raw but is filtered when honored.
        assert len([v for v in raw if v.rule == "FL001"]) == 2
        kept = flow.lint_flow(graph=graph)
        assert all("_stamp_quiet" not in v.chain[-1] for v in kept)
        assert all(
            "execute_clean" not in v.chain[0] for v in kept
        )


class TestFL002:
    def test_uncovered_field_read_fires(self):
        graph = fixture_graph("fl002", fl002_spec())
        violations = flow.lint_flow(graph=graph)
        assert [v.rule for v in violations] == ["FL002"]
        violation = violations[0]
        assert violation.path == "repro/uarch/core.py"
        assert "ProcessorConfig.depth" in violation.message
        assert len(violation.chain) == 3  # execute_simulate -> run -> _drain
        assert violation.chain[-1].endswith("_drain")

    def test_covered_field_is_silent(self):
        graph = fixture_graph("fl002", fl002_spec())
        violations = flow.lint_flow(graph=graph)
        assert not any("width" in v.message for v in violations)

    def test_suppressed_read_filtered(self):
        graph = fixture_graph("fl002", fl002_spec())
        raw = flow.lint_flow(graph=graph, honor_suppressions=False)
        assert len(raw) == 2
        assert len(flow.lint_flow(graph=graph)) == 1


class TestFL003:
    SPEC = TaintSpec(name_seeds={"trace": "repro.isa.trace.Trace"})

    def test_worker_write_fires_one_call_deep(self):
        graph = fixture_graph("fl003", self.SPEC)
        violations = flow.lint_flow(graph=graph)
        assert [v.rule for v in violations] == ["FL003"]
        violation = violations[0]
        assert violation.path == "repro/sim/mutate.py"
        assert "Trace.cols" in violation.message
        assert len(violation.chain) == 3
        assert violation.chain[-1].endswith("_reset")

    def test_owner_module_write_exempt(self):
        graph = fixture_graph("fl003", self.SPEC)
        raw = flow.lint_flow(graph=graph, honor_suppressions=False)
        assert not any(v.path == "repro/isa/trace.py" for v in raw)

    def test_suppressed_write_filtered(self):
        graph = fixture_graph("fl003", self.SPEC)
        raw = flow.lint_flow(graph=graph, honor_suppressions=False)
        assert len(raw) == 2
        assert len(flow.lint_flow(graph=graph)) == 1


class TestFL004:
    def test_blocking_call_one_helper_deep(self):
        graph = fixture_graph("fl004")
        violations = flow.lint_flow(graph=graph)
        assert [v.rule for v in violations] == ["FL004", "FL004"]
        violation = next(
            v for v in violations
            if v.path == "repro/serve/sync_ops.py"
        )
        assert "time.sleep" in violation.message
        assert "handle" in violation.message  # names the coroutine
        assert violation.chain[0].endswith("handle")
        assert violation.chain[-1].endswith("respond")

    def test_cluster_coroutines_are_roots(self):
        """Regression: repro.cluster coroutines count as serve roots."""
        graph = fixture_graph("fl004")
        violations = flow.lint_flow(graph=graph)
        violation = next(
            v for v in violations
            if v.path == "repro/cluster/backoff.py"
        )
        assert "time.sleep" in violation.message
        assert "dispatch" in violation.message
        assert violation.chain[0].endswith("dispatch")
        assert violation.chain[-1].endswith("backoff")

    def test_prefix_opt_out_narrows_roots(self):
        # A caller passing the classic single prefix sees only the
        # serve-side finding — the cluster coroutine is not a root.
        graph = fixture_graph("fl004")
        narrowed = flow.fl004(graph, serve_prefix="repro.serve")
        assert {v.path for v in narrowed} == {
            "repro/serve/sync_ops.py"
        }

    def test_awaited_asyncio_sleep_clean(self):
        graph = fixture_graph("fl004")
        raw = flow.lint_flow(graph=graph, honor_suppressions=False)
        assert not any("tick" in v.chain[0] for v in raw)
        assert not any("probe" in v.chain[0] for v in raw)

    def test_rep006_routes_through_graph(self):
        """Satellite: the classic rule id gains call-graph depth."""
        graph = fixture_graph("fl004")
        findings = flow.rep006_violations(graph)
        assert [f.rule for f in findings] == ["REP006", "REP006"]
        assert {f.path for f in findings} == {
            "repro/cluster/backoff.py", "repro/serve/sync_ops.py"
        }
        # The flowlint FL004 disables quiet the REP006 spelling too
        # (one suppressed twin per package stays suppressed).
        assert len(findings) == 2


class TestFL005:
    def test_unsalted_env_read_fires(self):
        graph = fixture_graph("fl005")
        violations = flow.lint_flow(graph=graph)
        assert [v.rule for v in violations] == ["FL005", "FL005"]
        violation = next(
            v for v in violations if v.path == "repro/env/scale.py"
        )
        assert "REPRO_SECRET" in violation.message
        assert len(violation.chain) == 2
        assert violation.chain[-1].endswith("secret_mode")

    def test_unsalted_store_read_fires(self):
        graph = fixture_graph("fl005")
        violations = flow.lint_flow(graph=graph)
        violation = next(
            v for v in violations
            if v.path == "repro/runtime/compile.py"
        )
        assert "artifact_key" in violation.message
        assert "load_arrays" in violation.message
        # Interprocedural: task body -> load_raw -> store read.
        assert violation.chain[0].endswith("execute_search_shard")
        assert violation.chain[-1].endswith("load_raw")

    def test_salted_env_read_clean(self):
        graph = fixture_graph("fl005")
        raw = flow.lint_flow(graph=graph, honor_suppressions=False)
        assert not any("REPRO_SCALE" in v.message for v in raw)

    def test_salted_store_read_clean(self):
        graph = fixture_graph("fl005")
        raw = flow.lint_flow(graph=graph, honor_suppressions=False)
        assert not any(
            v.chain and v.chain[-1].endswith("load_salted")
            for v in raw
        )
        # The storage layer's own read helpers are exempt.
        assert not any(
            v.path == "repro/store/artifacts.py" for v in raw
        )

    def test_suppressed_read_filtered(self):
        graph = fixture_graph("fl005")
        raw = flow.lint_flow(graph=graph, honor_suppressions=False)
        assert len(raw) == 4
        assert len(flow.lint_flow(graph=graph)) == 2


@pytest.fixture(scope="module")
def repo_graph() -> flow.FlowGraph:
    return flow.build_graph()


class TestRealGraph:
    """Call-graph construction pinned against hand-written edge sets."""

    def test_table_dispatch_edges(self, repo_graph):
        # run_task resolves TASK_KINDS[kind](payload) to every entry.
        callees = repo_graph.callees("repro.runtime.tasks.run_task")
        expected = {
            f"repro.runtime.tasks.execute_{kind}"
            for kind in (
                "simulate", "simulate_batch", "sweep_point",
                "sweep_batch", "trace", "lint", "search_shard",
                "precompute_words", "flow_facts", "selftest",
            )
        }
        assert set(callees) == expected

    def test_exact_edge_set_execute_simulate(self, repo_graph):
        callees = repo_graph.callees(
            "repro.runtime.tasks.execute_simulate"
        )
        assert callees == [
            "repro.isa.serialize.load_trace",
            "repro.uarch.simulator.simulate",
        ]

    def test_lazy_import_and_reexport_resolution(self, repo_graph):
        # execute_lint imports lint_trace *inside* the function body,
        # and the name re-exports through repro.verify's __init__.
        callees = set(repo_graph.callees(
            "repro.runtime.tasks.execute_lint"
        ))
        assert "repro.verify.tracelint.lint_trace" in callees
        assert "repro.isa.serialize.load_trace" in callees

    def test_repo_is_flow_clean(self, repo_graph):
        assert flow.lint_flow(graph=repo_graph) == []

    def test_graph_pickles(self, repo_graph):
        clone = pickle.loads(pickle.dumps(repo_graph))
        assert clone.digest == repo_graph.digest
        assert len(clone.functions) == len(repo_graph.functions)

    def test_graph_json_shape(self, repo_graph):
        dump = flow.graph_json(repo_graph)
        assert set(dump) >= {"digest", "functions", "edges", "tables"}
        names = {entry["qualname"] for entry in dump["functions"]}
        assert "repro.runtime.tasks.run_task" in names
        assert any(
            caller == "repro.runtime.tasks.run_task"
            for caller, _, _ in dump["edges"]
        )

    def test_check_flow_clean_and_memoized(self, repo_graph):
        flow.check_flow()
        flow.check_flow()  # second call is a digest-memo hit

    def test_flowlint_error_formats_violations(self):
        graph = fixture_graph("fl001")
        violations = flow.lint_flow(graph=graph)
        error = flow.FlowLintError(violations)
        assert "FL001" in str(error)
        assert "stats.py" in str(error)


class TestGraphCache:
    def test_warm_run_uses_pickle(self, tmp_path):
        root = FIXTURES / "fl001" / "repro"
        cold = flow.build_graph(root, spec=TaintSpec(), cache_dir=tmp_path)
        assert not cold.from_cache
        warm = flow.build_graph(root, spec=TaintSpec(), cache_dir=tmp_path)
        assert warm.from_cache
        assert warm.digest == cold.digest
        assert len(warm.functions) == len(cold.functions)

    def test_source_change_invalidates(self, tmp_path):
        package = tmp_path / "repro"
        package.mkdir()
        module = package / "mod.py"
        module.write_text("def f():\n    return 1\n")
        first = flow.build_graph(
            package, spec=TaintSpec(), cache_dir=tmp_path / "cache"
        )
        module.write_text("def f():\n    return 2\n")
        second = flow.build_graph(
            package, spec=TaintSpec(), cache_dir=tmp_path / "cache"
        )
        assert not second.from_cache
        assert second.digest != first.digest


class TestParallelScan:
    def test_pool_scan_matches_serial(self):
        from repro.runtime.engine import ExperimentRuntime

        serial = flow.build_graph()
        runtime = ExperimentRuntime(jobs=2)
        try:
            pooled = flow.build_graph(runtime=runtime)
        finally:
            runtime.close()
        assert pooled.digest == serial.digest
        assert set(pooled.functions) == set(serial.functions)
        assert pooled.edges == serial.edges


class TestStaleSuppressions:
    def test_dead_disable_flagged_live_one_kept(self):
        stale = flow.stale_suppressions(FIXTURES / "stale" / "repro")
        assert len(stale) == 1
        finding = stale[0]
        assert finding.path == "repro/runtime/tasks.py"
        assert "REP001" in finding.message
        # The live FL001 disable (suppressing a real reachable
        # finding) is not reported.
        assert not any("FL001" in v.message for v in stale)

    def test_docstring_examples_are_not_suppressions(self):
        from repro.verify.repolint import suppression_maps

        source = (
            '"""Docs show `# repolint: disable=REP001` usage."""\n'
            "import time\n"
            "def f():\n"
            "    return time.time()  # repolint: disable=REP001\n"
        )
        per_line, whole_file = suppression_maps(source)
        assert per_line == {4: {"REP001"}}
        assert whole_file == set()


# ----------------------------------------------------------------------
# Fuzz: graph construction never crashes on syntactically valid modules
# ----------------------------------------------------------------------

_NAMES = st.sampled_from(
    ["alpha", "beta", "config", "trace", "run", "helper", "value"]
)

_SNIPPETS = [
    "import time",
    "import numpy as np",
    "from repro.other import {a}",
    "from dataclasses import replace",
    "GLOBAL_TABLE = {{'one': {a}, 'two': {b}}}",
    "def {a}({b}):\n    return {b}",
    "def {a}(config):\n    return config.width + config.depth",
    "def {a}(trace):\n    trace.cols = ()\n    trace.rows.append(1)",
    "def {a}():\n    return time.time()",
    "async def {a}():\n    import asyncio\n    await asyncio.sleep(0)",
    "def {a}(x):\n    y = GLOBAL_TABLE[x]\n    return y(x)",
    "def {a}(x):\n    return GLOBAL_TABLE[x](x)",
    "def {a}(pool, x):\n    return pool.map({b}, x)",
    "def {a}(x):\n    for item in {{1, 2, 3}}:\n        x += item\n"
    "    return x",
    "def {a}(x):\n    return sorted({{'z', 'y'}})",
    "class {A}:\n    def __init__(self, config):\n"
    "        self.config = config\n"
    "    def go(self):\n        return self.config.width",
    "class {A}:\n    def run(self):\n        return self",
    "def {a}():\n    import os\n    return os.environ.get('X')",
    "def {a}(x):\n    global COUNT\n    COUNT = x",
    "def {a}(x):\n    def inner(config):\n        return config.depth\n"
    "    return inner(x)",
    "def {a}(x):\n    if (y := x):\n        return y\n    return None",
    "def {a}(*args, **kwargs):\n    first, *rest = args\n    return rest",
    "def {a}(x):\n    try:\n        return x.get()\n"
    "    except Exception:\n        return None",
    "def {a}(x):\n    with open(x) as stream:\n        return stream.read()",
]


@st.composite
def module_sources(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    parts = []
    for _ in range(count):
        template = draw(st.sampled_from(_SNIPPETS))
        a = draw(_NAMES)
        b = draw(_NAMES)
        parts.append(template.format(a=a, b=b, A=a.capitalize()))
    return "\n\n".join(parts)


class TestFuzz:
    @settings(max_examples=60, deadline=None)
    @given(source=module_sources())
    def test_scan_and_link_never_crash(self, source):
        ast.parse(source)  # the strategy only emits valid modules
        spec = TaintSpec(
            config_fields={PROCESSOR: {"width": None, "depth": None}},
            name_seeds={
                "config": PROCESSOR,
                "trace": "repro.isa.trace.Trace",
            },
        )
        facts = flow.scan_module(
            source, "repro/fuzzed.py", "repro.fuzzed", spec=spec
        )
        graph = flow._link(
            [facts], Path("src"), "repro", "fuzz-digest"
        )
        for rule in flow.FLOW_RULE_IMPLS.values():
            rule(graph)
