"""Unit tests for BLAST word finding."""

from repro.align.blast.wordfinder import (
    LookupTable,
    TwoHitScanner,
    word_index,
)
from repro.bio.alphabet import PROTEIN
from repro.bio.matrices import BLOSUM62


def encode(text: str):
    return PROTEIN.encode(text)


class TestWordIndex:
    def test_base20_encoding(self):
        codes = encode("ARN")  # 0, 1, 2
        assert word_index(codes, 0, 3) == 0 * 400 + 1 * 20 + 2

    def test_offset(self):
        codes = encode("AARN")
        assert word_index(codes, 1, 3) == word_index(encode("ARN"), 0, 3)

    def test_ambiguity_codes_rejected(self):
        codes = encode("AXA")  # X is outside the standard 20
        assert word_index(codes, 0, 3) == -1

    def test_word_size_two(self):
        codes = encode("RN")
        assert word_index(codes, 0, 2) == 1 * 20 + 2


class TestLookupTable:
    def test_exact_word_always_in_neighborhood(self):
        query = encode("ARNDCQEGHILK")
        table = LookupTable(query, threshold=11)
        for position in range(len(query) - 2):
            index = word_index(query, position, 3)
            assert position in table.lookup(index)

    def test_high_threshold_shrinks_neighborhood(self):
        query = encode("ARNDCQEGHILKMFPSTWYV")
        low = LookupTable(query, threshold=9)
        high = LookupTable(query, threshold=13)
        assert low.entry_count > high.entry_count

    def test_impossible_threshold_empty(self):
        query = encode("ARNDCQEG")
        table = LookupTable(query, threshold=100)
        assert table.entry_count == 0

    def test_lookup_of_negative_index_empty(self):
        table = LookupTable(encode("ARNDCQEG"))
        assert table.lookup(-1) == ()

    def test_table_spans_full_word_space(self):
        table = LookupTable(encode("ARNDCQEG"), word_size=3)
        assert len(table) == 20**3

    def test_neighborhood_scores_reach_threshold(self):
        query = encode("WWW")
        table = LookupTable(query, threshold=11)
        for index in range(len(table)):
            for position in table.lookup(index):
                # Decode the word back and rescore against the query word.
                codes = []
                value = index
                for _ in range(3):
                    codes.append(value % 20)
                    value //= 20
                codes.reverse()
                score = sum(
                    BLOSUM62.score(q, c)
                    for q, c in zip(query[position:position + 3], codes)
                )
                assert score >= 11

    def test_invalid_word_size(self):
        import pytest

        with pytest.raises(ValueError):
            LookupTable(encode("ARN"), word_size=0)


class TestTwoHitScanner:
    def test_identical_sequence_produces_seeds(self):
        query = encode("ARNDCQEGHILKMFPSTVWY" * 3)
        table = LookupTable(query, threshold=11)
        scanner = TwoHitScanner(table, len(query))
        seeds = list(scanner.scan(query))
        assert seeds, "self-scan must produce two-hit seeds"
        assert scanner.single_hits >= len(seeds)

    def test_seeds_lie_on_matching_diagonals(self):
        query = encode("ARNDCQEGHILKMFPSTVWY" * 3)
        table = LookupTable(query, threshold=12)
        scanner = TwoHitScanner(table, len(query))
        for seed in scanner.scan(query):
            assert 0 <= seed.query_offset < len(query)
            assert 0 <= seed.subject_offset < len(query)
            assert seed.diagonal == seed.subject_offset - seed.query_offset

    def test_short_subject_no_seeds(self):
        query = encode("ARNDCQEGHILK")
        table = LookupTable(query)
        scanner = TwoHitScanner(table, len(query))
        assert list(scanner.scan(encode("AR"))) == []

    def test_window_controls_pairing(self):
        query = encode("ARNDCQEGHILKMFPSTVWY" * 2)
        table = LookupTable(query, threshold=12)
        tight = TwoHitScanner(table, len(query), window=3)
        loose = TwoHitScanner(table, len(query), window=60)
        subject = query
        assert len(list(loose.scan(subject))) >= len(list(tight.scan(subject)))
