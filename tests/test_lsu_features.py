"""Behavioural tests for the LSU details: store queue, aliasing, TLBs,
and the optional sequential prefetcher."""

from dataclasses import replace

from repro.isa.builder import TraceBuilder
from repro.uarch.config import ME1, PROC_4WAY, TlbConfig
from repro.uarch.simulator import simulate


class TestStoreQueue:
    def _store_burst(self, count):
        builder = TraceBuilder("stores")
        value = builder.ialu("v")
        # A long-latency load clogs the ROB head so stores cannot
        # retire and the store queue must absorb them.
        blocker = builder.iload("blocker", 0x900000)
        for index in range(count):
            builder.istore("st", 0x10000 + index * 8, (value,), size=8)
        builder.ialu("tail", (blocker,))
        return builder.build()

    def test_small_store_queue_slower(self):
        trace = self._store_burst(60)
        small = replace(PROC_4WAY, store_queue_size=2).with_memory(ME1)
        large = replace(PROC_4WAY, store_queue_size=64).with_memory(ME1)
        slow = simulate(self._store_burst(60), small)
        fast = simulate(trace, large)
        assert slow.cycles > fast.cycles

    def test_store_queue_full_trauma_charged(self):
        config = replace(PROC_4WAY, store_queue_size=2).with_memory(ME1)
        result = simulate(self._store_burst(60), config)
        assert result.traumas["mm_stqf"] > 0


class TestStoreLoadAliasing:
    def test_dependent_load_waits_for_store(self):
        builder = TraceBuilder("alias")
        value = builder.ialu("v")
        builder.istore("st", 0x5000, (value,), size=8)
        load = builder.iload("ld", 0x5000)
        builder.ialu("use", (load,))
        result = simulate(builder.build(), PROC_4WAY.with_memory(ME1))
        assert result.instructions == 4

    def _ping_pong(self, load_offset):
        builder = TraceBuilder(f"pingpong-{load_offset}")
        value = builder.ialu("v")
        for index in range(40):
            value = builder.ialu("work", (value,))
            builder.istore("st", 0x6000, (value,), size=8)
            load = builder.iload("ld", 0x6000 + load_offset)
            value = builder.ialu("use", (load,))
        return builder.build()

    def test_alias_stall_costs_cycles(self):
        # Same cache line either way; only the word overlap differs.
        aliased = simulate(self._ping_pong(0), PROC_4WAY.with_memory(ME1))
        disjoint = simulate(self._ping_pong(8), PROC_4WAY.with_memory(ME1))
        assert aliased.cycles >= disjoint.cycles

    def test_different_words_do_not_alias(self):
        builder = TraceBuilder("no-alias")
        value = builder.ialu("v")
        builder.istore("st", 0x7000, (value,), size=8)
        builder.iload("ld", 0x7008)
        result = simulate(builder.build(), PROC_4WAY.with_memory(ME1))
        assert result.instructions == 3


class TestTlb:
    def _page_walk_trace(self, pages, stride=4096):
        builder = TraceBuilder("pages")
        for index in range(pages):
            builder.iload("ld", 0x100000 + index * stride, size=4)
            builder.ialu("op")
        return builder.build()

    def test_tiny_tlb_slower_than_large(self):
        trace = self._page_walk_trace(200)
        tiny = replace(
            ME1, dtlb=TlbConfig(entries=4, associativity=2, miss_penalty=30)
        )
        result_tiny = simulate(
            self._page_walk_trace(400), PROC_4WAY.with_memory(tiny)
        )
        result_big = simulate(trace, PROC_4WAY.with_memory(ME1))
        # Per-access cost is strictly higher with the tiny TLB.
        assert (result_tiny.cycles / 400) > (result_big.cycles / 200) * 0.9

    def test_within_page_locality_no_extra_misses(self):
        builder = TraceBuilder("one-page")
        for index in range(100):
            builder.iload("ld", 0x200000 + (index % 500) * 8, size=8)
        result = simulate(builder.build(), PROC_4WAY.with_memory(ME1))
        # All accesses in one page: at most one dtlb miss worth of cost.
        assert result.cycles < 1500


class TestPrefetch:
    def _stream(self, lines):
        builder = TraceBuilder("stream")
        register = builder.ialu("base")
        for index in range(lines):
            load = builder.iload("ld", 0x300000 + index * 128, (register,))
            register = builder.ialu("use", (load,))
        return builder.build()

    def test_prefetch_speeds_streaming(self):
        baseline = simulate(self._stream(128), PROC_4WAY.with_memory(ME1))
        prefetching = replace(ME1, sequential_prefetch=True)
        accelerated = simulate(
            self._stream(128), PROC_4WAY.with_memory(prefetching)
        )
        assert accelerated.cycles < baseline.cycles

    def test_prefetch_halves_demand_misses(self):
        prefetching = replace(ME1, sequential_prefetch=True)
        result = simulate(
            self._stream(128), PROC_4WAY.with_memory(prefetching)
        )
        # Every other line comes from the prefetcher.
        demand_misses = result.dl1.misses
        assert demand_misses <= 128
