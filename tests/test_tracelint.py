"""TraceLint: clean traces pass, every corruption class is named.

The golden workloads must lint clean (the CI ``lint-trace --all`` gate
depends on it), and each corruption operator in
``tracelint_corruptions.CORRUPTIONS`` must be flagged under exactly the
rule that owns its invariant.
"""

from __future__ import annotations

import pytest

from repro.isa.builder import TraceBuilder
from repro.runtime.cache import ResultCache
from repro.runtime.keys import trace_digest
from repro.verify import TraceLintError, check_trace, lint_trace
from repro.verify.tracelint import TRACE_RULES
from tracelint_corruptions import CORRUPTIONS, build_sample_trace, fresh_copy


@pytest.fixture(scope="module")
def sample_trace():
    return build_sample_trace()


def violated_rules(report) -> set[str]:
    return {violation.rule for violation in report.violations}


class TestCleanTraces:
    def test_sample_trace_is_clean(self, sample_trace):
        report = lint_trace(
            sample_trace, expected_digest=trace_digest(sample_trace)
        )
        assert report.ok, report.format_table()

    def test_every_rule_ran(self, sample_trace):
        report = lint_trace(
            sample_trace, expected_digest=trace_digest(sample_trace)
        )
        assert {check.rule for check in report.checks} == set(TRACE_RULES)

    @pytest.mark.parametrize(
        "name", ["ssearch34", "sw_vmx128", "sw_vmx256", "fasta34", "blast"]
    )
    def test_golden_workloads_lint_clean(self, small_suite, name):
        trace = small_suite.trace(name)
        report = lint_trace(trace, expected_digest=trace_digest(trace))
        assert report.ok, report.format_table()

    def test_empty_trace_is_clean(self):
        report = lint_trace(TraceBuilder("empty").build())
        assert report.ok, report.format_table()


class TestCorruptions:
    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_corruption_flagged_under_its_rule(self, sample_trace, name):
        mutate, rule = CORRUPTIONS[name]
        corrupted = fresh_copy(sample_trace)
        mutate(corrupted)
        report = lint_trace(corrupted, include_roundtrip=False)
        assert not report.ok, f"{name} went undetected"
        assert rule in violated_rules(report), (
            f"{name} should be flagged under {rule}, "
            f"got {sorted(violated_rules(report))}"
        )

    def test_digest_mismatch_is_tr008(self, sample_trace):
        report = lint_trace(sample_trace, expected_digest="0" * 32)
        assert violated_rules(report) == {"TR008"}

    def test_violations_carry_an_anchor_index(self, sample_trace):
        corrupted = fresh_copy(sample_trace)
        CORRUPTIONS["forward-dependency"][0](corrupted)
        report = lint_trace(corrupted, include_roundtrip=False)
        violation = report.violations[0]
        assert violation.index == 10
        assert "instruction 10" in str(violation)


class TestStrictHooks:
    def test_check_trace_returns_the_trace(self, sample_trace):
        assert check_trace(sample_trace) is sample_trace

    def test_check_trace_raises_on_corruption(self, sample_trace):
        corrupted = fresh_copy(sample_trace)
        CORRUPTIONS["forward-dependency"][0](corrupted)
        with pytest.raises(TraceLintError) as excinfo:
            check_trace(corrupted)
        assert "TR002" in str(excinfo.value)
        assert not excinfo.value.report.ok

    def test_builder_strict_build_lints(self):
        builder = TraceBuilder("strict")
        value = builder.ialu("seed")
        builder.istore("out", builder.alloc("cell", 8), sources=(value,))
        assert len(builder.build(strict=True)) == 2

    def test_cache_refuses_misaddressed_trace(self, sample_trace, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(TraceLintError) as excinfo:
            cache.store_trace("f" * 32, sample_trace, strict=True)
        assert "TR008" in str(excinfo.value)

    def test_cache_strict_roundtrip_accepts_good_trace(
        self, sample_trace, tmp_path
    ):
        cache = ResultCache(tmp_path)
        digest = trace_digest(sample_trace)
        cache.store_trace(digest, sample_trace, strict=True)
        loaded = cache.load_trace(digest, strict=True)
        assert loaded is not None
        assert trace_digest(loaded) == digest

    def test_cache_strict_load_rejects_tampered_entry(
        self, sample_trace, tmp_path
    ):
        import numpy as np

        from repro.isa.opcodes import OpClass
        from repro.isa.serialize import save_trace

        cache = ResultCache(tmp_path)
        digest = trace_digest(sample_trace)
        tampered = fresh_copy(sample_trace)
        # Flip one branch outcome: structurally legal, so only the
        # content-address check (TR008) can catch the tampering.
        ctrl = int(np.flatnonzero(
            tampered.columns["ops"] == int(OpClass.CTRL)
        )[0])
        tampered.columns["takens"][ctrl] ^= 1
        target = cache.trace_path(digest)
        target.parent.mkdir(parents=True, exist_ok=True)
        save_trace(tampered, target)
        assert cache.load_trace(digest) is not None  # lax load misses it
        with pytest.raises(TraceLintError):
            cache.load_trace(digest, strict=True)
