"""Tests for the nucleotide BLAST engine."""

import random

import pytest

from repro.align.blast.nucleotide import (
    BlastnEngine,
    BlastnOptions,
    NucleotideLookup,
)
from repro.bio.alphabet import DNA
from repro.bio.database import SequenceDatabase
from repro.bio.packed import PackedSequence
from repro.bio.sequence import Sequence


def rand_dna(rng, length):
    return "".join(rng.choice("ACGT") for _ in range(length))


def dna_seq(identifier, text):
    return Sequence(identifier, text, alphabet=DNA)


class TestNucleotideLookup:
    def test_exact_words_found(self):
        lookup = NucleotideLookup(dna_seq("q", "ACGTACGT"), word_size=4)
        acgt = 0b00_01_10_11
        assert lookup.lookup(acgt) == (0, 4)

    def test_ambiguous_bases_break_words(self):
        lookup = NucleotideLookup(dna_seq("q", "ACGNTACG"), word_size=4)
        # No 4-mer fully inside either side of the N except TACG.
        assert len(lookup) == 1

    def test_short_query_empty(self):
        lookup = NucleotideLookup(dna_seq("q", "ACG"), word_size=8)
        assert len(lookup) == 0


class TestBlastnOptions:
    def test_word_size_bounds(self):
        with pytest.raises(ValueError):
            BlastnOptions(word_size=2)
        with pytest.raises(ValueError):
            BlastnOptions(word_size=20)

    def test_scoring_signs(self):
        with pytest.raises(ValueError):
            BlastnOptions(match=-1)
        with pytest.raises(ValueError):
            BlastnOptions(mismatch=1)


class TestBlastnEngine:
    def test_finds_planted_match(self):
        rng = random.Random(3)
        query = rand_dna(rng, 80)
        subject_text = rand_dna(rng, 150) + query[20:60] + rand_dna(rng, 150)
        database = SequenceDatabase(
            [
                dna_seq("PLANTED", subject_text),
                dna_seq("NOISE", rand_dna(rng, 400)),
            ],
            alphabet=DNA,
        )
        engine = BlastnEngine(dna_seq("q", query))
        result = engine.search(database)
        assert result.best().subject_id == "PLANTED"
        assert result.best().score >= 40 * engine.options.match - 10

    def test_identical_sequence_scores_full_match(self):
        rng = random.Random(4)
        text = rand_dna(rng, 120)
        engine = BlastnEngine(dna_seq("q", text))
        packed = PackedSequence.from_sequence(dna_seq("s", text))
        assert engine.score_subject(packed) == 120 * engine.options.match

    def test_statistics_counted(self):
        rng = random.Random(5)
        engine = BlastnEngine(dna_seq("q", rand_dna(rng, 60)))
        packed = PackedSequence.from_sequence(
            dna_seq("s", rand_dna(rng, 300))
        )
        engine.score_subject(packed)
        assert engine.words_scanned >= 300 - 8
        assert engine.extensions <= max(engine.word_hits, 1)

    def test_ambiguous_subject_handled(self):
        rng = random.Random(6)
        query = rand_dna(rng, 40)
        subject = dna_seq("s", "N" * 10 + query + "N" * 10)
        engine = BlastnEngine(dna_seq("q", query))
        packed = PackedSequence.from_sequence(subject)
        assert engine.score_subject(packed) == 40 * engine.options.match

    def test_no_hits_scores_zero(self):
        engine = BlastnEngine(dna_seq("q", "A" * 30))
        packed = PackedSequence.from_sequence(dna_seq("s", "C" * 300))
        assert engine.score_subject(packed) == 0
