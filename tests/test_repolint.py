"""RepoLint: rule units on synthetic sources, suppression, repo gate.

The final class is the tier-1 gate the ISSUE requires: the shipped
package must be clean under every REP rule, so any regression (a new
wall-clock read in library code, a column mutation outside repro.isa, a
config knob missing from the cache key, a serialization edit without a
version bump, a swallowed except in the runtime) fails the suite.
"""

from __future__ import annotations

import json
import textwrap

from repro.verify import lint_paths, lint_source
from repro.verify.repolint import (
    MANIFEST_PATH,
    config_key_coverage,
    serialization_fingerprint,
    write_manifest,
)

LIB = "repro/analysis/synthetic_module.py"
RUNTIME = "repro/runtime/synthetic_module.py"
SERVE = "repro/serve/synthetic_module.py"


def rules_of(violations) -> list[str]:
    return [violation.rule for violation in violations]


def lint(source: str, relative: str = LIB):
    return lint_source(textwrap.dedent(source), relative)


class TestRep001Nondeterminism:
    def test_wall_clock_and_global_random_flagged(self):
        violations = lint(
            """
            import random
            import time

            def jitter():
                return random.random() + time.time()
            """
        )
        assert rules_of(violations) == ["REP001", "REP001"]
        messages = " ".join(violation.message for violation in violations)
        assert "random.random" in messages
        assert "time.time" in messages

    def test_seeded_rng_and_duration_timers_are_legal(self):
        assert lint(
            """
            import random
            import time
            from numpy.random import default_rng

            def sample(seed):
                rng = random.Random(seed)
                generator = default_rng(seed)
                start = time.perf_counter()
                return rng.random(), generator.random(), start
            """
        ) == []

    def test_unseeded_generators_flagged(self):
        violations = lint(
            """
            import random
            import numpy as np
            from numpy.random import default_rng

            def entropy():
                return random.Random(), np.random.rand(), default_rng()
            """
        )
        assert rules_of(violations) == ["REP001"] * 3

    def test_uuid_and_secrets_flagged(self):
        violations = lint(
            """
            import os
            import secrets
            import uuid

            def token():
                return uuid.uuid4(), secrets.token_hex(), os.urandom(8)
            """
        )
        assert rules_of(violations) == ["REP001"] * 3

    def test_cli_and_bench_modules_exempt(self):
        source = """
        import time

        def stamp():
            return time.time()
        """
        assert lint(source, "repro/__main__.py") == []
        assert lint(source, "repro/bench.py") == []
        assert rules_of(lint(source, LIB)) == ["REP001"]


class TestRep002ColumnMutation:
    def test_column_write_flagged_outside_owners(self):
        violations = lint(
            """
            def clamp(trace):
                trace.columns["sizes"][0] = 8
                trace.columns["ops"][:10] += 1
            """
        )
        assert rules_of(violations) == ["REP002", "REP002"]

    def test_decode_plane_write_flagged(self):
        violations = lint(
            """
            def invalidate(trace):
                trace._decoded = None
            """
        )
        assert rules_of(violations) == ["REP002"]

    def test_owning_modules_may_mutate(self):
        source = """
        def build(trace):
            trace.columns["sizes"][0] = 8
            trace._decoded = None
        """
        assert lint(source, "repro/isa/trace.py") == []
        assert lint(source, "repro/uarch/pipeline/decode.py") == []

    def test_reads_and_fresh_dicts_are_legal(self):
        assert lint(
            """
            def window(trace, limit):
                columns = {
                    name: column[:limit]
                    for name, column in trace.columns.items()
                }
                first = trace.columns["ops"][0]
                return columns, first
            """
        ) == []


class TestRep005ExceptionHygiene:
    def test_bare_and_swallowed_broad_except_flagged(self):
        violations = lint(
            """
            def drain(queue):
                try:
                    queue.get()
                except:
                    pass
                try:
                    queue.put(None)
                except Exception:
                    pass
            """,
            RUNTIME,
        )
        assert rules_of(violations) == ["REP005", "REP005"]

    def test_handled_or_narrow_excepts_are_legal(self):
        assert lint(
            """
            def drain(queue, log):
                try:
                    queue.get()
                except Exception as error:
                    log(error)
                try:
                    queue.put(None)
                except (OSError, ValueError):
                    pass
            """,
            RUNTIME,
        ) == []

    def test_rule_scoped_to_runtime(self):
        source = """
        def best_effort(callback):
            try:
                callback()
            except Exception:
                pass
        """
        assert rules_of(lint(source, RUNTIME)) == ["REP005"]
        assert lint(source, LIB) == []


class TestSuppression:
    def test_line_suppression(self):
        violations = lint(
            """
            import time

            def stamps():
                first = time.time()  # repolint: disable=REP001
                second = time.time()
                return first, second
            """
        )
        assert len(violations) == 1
        assert violations[0].line == 6

    def test_file_suppression(self):
        assert lint(
            """
            # repolint: disable-file=REP001
            import time

            def stamps():
                return time.time(), time.time()
            """
        ) == []

    def test_suppression_is_per_rule(self):
        violations = lint(
            """
            import time

            def touch(trace):
                trace.columns["ops"][0] = 1  # repolint: disable=REP001
                return time.time()
            """
        )
        assert rules_of(violations) == ["REP001", "REP002"]


class TestRep003Coverage:
    def test_uncovered_field_reported_with_line(self):
        config_source = textwrap.dedent(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class FooConfig:
                width: int
                depth: int
            """
        )
        keys_source = textwrap.dedent(
            """
            def config_key(config):
                return ("w", config.width)
            """
        )
        coverage = config_key_coverage(config_source, keys_source)
        assert list(coverage) == ["FooConfig"]
        [(field, line)] = coverage["FooConfig"]
        assert field == "depth"
        assert config_source.splitlines()[line - 1].strip() == "depth: int"

    def test_fully_read_dataclass_is_clean(self):
        config_source = "from dataclasses import dataclass\n" \
            "@dataclass\nclass Foo:\n    width: int\n"
        keys_source = "def config_key(c):\n    return (c.width,)\n"
        assert config_key_coverage(config_source, keys_source) == {}


class TestRep004Manifest:
    def test_fingerprint_is_deterministic(self):
        assert serialization_fingerprint() == serialization_fingerprint()

    def test_pinned_manifest_matches_current_sources(self):
        pinned = json.loads(MANIFEST_PATH.read_text())
        assert pinned == serialization_fingerprint(), (
            "digest-relevant serialization code changed; bump "
            "CACHE_SCHEMA_VERSION and run "
            "`python -m repro lint-code --update-manifest`"
        )

    def test_write_manifest_to_explicit_path(self, tmp_path):
        target = tmp_path / "manifest.json"
        manifest = write_manifest(target)
        assert json.loads(target.read_text()) == manifest
        assert set(manifest) == {"schema_version", "digest"}

    def test_drift_names_the_version_bump(self, monkeypatch, tmp_path):
        from repro.verify import repolint

        stale = serialization_fingerprint()
        stale["digest"] = "0" * 32
        target = tmp_path / "manifest.json"
        target.write_text(json.dumps(stale))
        monkeypatch.setattr(repolint, "MANIFEST_PATH", target)
        violations = repolint._rep004()
        assert rules_of(violations) == ["REP004"]
        assert "CACHE_SCHEMA_VERSION" in violations[0].message

    def test_missing_manifest_reported(self, monkeypatch, tmp_path):
        from repro.verify import repolint

        monkeypatch.setattr(
            repolint, "MANIFEST_PATH", tmp_path / "absent.json"
        )
        violations = repolint._rep004()
        assert rules_of(violations) == ["REP004"]
        assert "--update-manifest" in violations[0].message


class TestRep006BlockingCalls:
    def test_time_sleep_in_coroutine_flagged(self):
        violations = lint(
            """
            import time

            async def handle():
                time.sleep(0.1)
            """,
            SERVE,
        )
        assert rules_of(violations) == ["REP006"]
        assert "asyncio.sleep" in violations[0].message

    def test_untimed_sync_get_in_coroutine_flagged(self):
        violations = lint(
            """
            async def pump(results):
                return results.get()
            """,
            SERVE,
        )
        assert rules_of(violations) == ["REP006"]
        assert "timeout" in violations[0].message

    def test_awaited_get_and_timed_get_are_legal(self):
        violations = lint(
            """
            async def pump(queue, results, data):
                item = await queue.get()
                safe = results.get(timeout=1.0)
                keyed = data.get("op", "search")
                return item, safe, keyed
            """,
            SERVE,
        )
        assert violations == []

    def test_sync_functions_and_other_layers_exempt(self):
        source = """
            import time

            def warmup(results):
                time.sleep(0.1)
                return results.get()
        """
        assert lint(source, SERVE) == []
        async_source = """
            import time

            async def handle():
                time.sleep(0.1)
        """
        assert lint(async_source, RUNTIME) == []

    def test_asyncio_sleep_is_legal(self):
        violations = lint(
            """
            import asyncio

            async def pace():
                await asyncio.sleep(0.1)
            """,
            SERVE,
        )
        assert violations == []


class TestRep007AdHocGrids:
    def test_multi_axis_comprehension_into_simulate_many_flagged(self):
        violations = lint(
            """
            def sweep(context, widths, memories):
                context.simulate_many([
                    (context.suite.trace(name), width.with_memory(memory))
                    for name in context.suite.names
                    for width in widths
                    for memory in memories
                ])
            """
        )
        assert rules_of(violations) == ["REP007"]
        assert "repro.sweep" in violations[0].message

    def test_nested_loop_simulate_calls_flagged(self):
        violations = lint(
            """
            def sweep(context, widths):
                out = {}
                for name in context.suite.names:
                    for width in widths:
                        out[name] = context.simulate_app(name, width)
                return out
            """
        )
        assert rules_of(violations) == ["REP007"]
        assert "loop nest" in violations[0].message

    def test_single_axis_work_is_legal(self):
        assert lint(
            """
            def stalls(context, config):
                context.simulate_many([
                    (context.suite.trace(name), config)
                    for name in context.suite.names
                ])
                results = []
                for name in context.suite.names:
                    results.append(context.simulate_app(name, config))
                return results
            """
        ) == []

    def test_other_layers_are_exempt(self):
        grid = """
            def sweep(context, widths):
                for name in context.suite.names:
                    for width in widths:
                        context.simulate_trace(name, width)
        """
        assert lint(grid, RUNTIME) == []
        assert rules_of(lint(grid, LIB)) == ["REP007"]

    def test_suppression_for_intentional_oracles(self):
        assert lint(
            """
            def oracle(context, widths):
                for name in context.suite.names:
                    for width in widths:
                        context.simulate_trace(name, width)  # repolint: disable=REP007
            """
        ) == []

    def test_loop_depth_resets_at_nested_functions(self):
        # The call is inside a helper with no loops of its own.
        assert lint(
            """
            def driver(context, widths):
                for name in context.suite.names:
                    for width in widths:
                        def probe():
                            return context.simulate_trace(name, width)
            """
        ) == []


class TestRep008PerCycleAllocation:
    UARCH = "repro/uarch/pipeline/synthetic_module.py"

    def test_container_literal_inside_cycle_loop_flagged(self):
        violations = lint(
            """
            def run(n):
                cycle = 0
                while cycle < n:
                    ready = []
                    seen = {}
                    cycle += 1
                return ready, seen
            """,
            self.UARCH,
        )
        assert rules_of(violations) == ["REP008", "REP008"]
        assert "hoist" in violations[0].message

    def test_dict_keyed_by_cycle_counter_flagged(self):
        violations = lint(
            """
            def run(n, latency):
                events = {}
                cycle = 0
                while cycle < n:
                    events[cycle + latency] = 1
                    cycle += 1
            """,
            self.UARCH,
        )
        assert rules_of(violations) == ["REP008"]
        assert "timing wheel" in violations[0].message

    def test_class_instantiation_inside_cycle_loop_flagged(self):
        violations = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class Slot:
                index: int

            def run(n):
                cycle = 0
                while cycle < n:
                    slot = Slot(cycle)
                    cycle += 1
                return slot
            """,
            self.UARCH,
        )
        assert rules_of(violations) == ["REP008"]
        assert "Slot" in violations[0].message

    def test_raise_and_preallocated_reuse_are_legal(self):
        assert lint(
            """
            def run(n, wheel):
                cycle = 0
                while cycle < n:
                    finishing = wheel[cycle & 63]
                    finishing.clear()
                    cycle += 1
                    if cycle > 10 * n:
                        raise RuntimeError(f"runaway at {cycle}")
            """,
            self.UARCH,
        ) == []

    def test_other_layers_are_exempt(self):
        hot_loop = """
            def run(n):
                cycle = 0
                while cycle < n:
                    ready = []
                    cycle += 1
                return ready
        """
        assert lint(hot_loop, LIB) == []
        assert lint(hot_loop, RUNTIME) == []
        assert rules_of(lint(hot_loop, self.UARCH)) == ["REP008"]

    def test_suppression_for_deliberate_scalar_core_sites(self):
        assert lint(
            """
            def run(n, wheel):
                cycle = 0
                while cycle < n:
                    wheel[cycle & 63] = []  # repolint: disable=REP008
                    cycle += 1
            """,
            self.UARCH,
        ) == []


class TestRep009AdHocPersistence:
    """Satellite: on-disk caches must route through the storage layer."""

    def test_pickle_dump_flagged_outside_owners(self):
        violations = lint(
            """
            import pickle

            def memoize(table, path):
                with open(path, "wb") as stream:
                    pickle.dump(table, stream)
            """
        )
        assert rules_of(violations) == ["REP009"]
        assert "repro.store" in violations[0].message

    def test_numpy_saves_flagged_under_alias(self):
        violations = lint(
            """
            import numpy as np

            def spill(arrays, path):
                np.save(path, arrays["a"])
                np.savez(path, **arrays)
                np.savez_compressed(path, **arrays)
            """
        )
        assert rules_of(violations) == ["REP009"] * 3

    def test_bare_name_import_and_shelve_flagged(self):
        violations = lint(
            """
            import shelve
            from marshal import dump

            def persist(table, path):
                with shelve.open(path) as store:
                    store["t"] = table
                with open(path + ".m", "wb") as stream:
                    dump(table, stream)
            """
        )
        assert rules_of(violations) == ["REP009", "REP009"]

    def test_in_memory_serialization_is_legal(self):
        assert lint(
            """
            import pickle

            def wire_bytes(table):
                return pickle.dumps(table)

            def rebuild(blob):
                return pickle.loads(blob)
            """
        ) == []

    def test_storage_layer_owners_exempt(self):
        source = """
            import pickle

            def write(table, path):
                with open(path, "wb") as stream:
                    pickle.dump(table, stream)
            """
        for owner in (
            "repro/store/artifacts.py",
            "repro/runtime/cache.py",
            "repro/isa/serialize.py",
        ):
            assert lint(source, owner) == []
        assert rules_of(lint(source, LIB)) == ["REP009"]

    def test_suppression_honored(self):
        assert lint(
            """
            import pickle

            def write(graph, stream):
                pickle.dump(graph, stream)  # repolint: disable=REP009
            """
        ) == []


class TestSyntaxErrors:
    def test_unparsable_source_is_rep000(self):
        violations = lint_source("def broken(:\n", LIB)
        assert rules_of(violations) == ["REP000"]


class TestRepoGate:
    def test_shipped_package_is_clean(self):
        violations = lint_paths()
        assert violations == [], "\n".join(
            str(violation) for violation in violations
        )


class TestRep006FlowRouting:
    """Satellite: REP006 re-routed through the flow engine's call graph.

    The classic direct-body check cannot see a ``time.sleep`` hidden
    one synchronous helper below a serve coroutine; the flow-routed
    REP006 (``repro.verify.flow.rep006_violations``) can, while the
    per-file check remains the fallback when flow analysis is
    unavailable.
    """

    def test_blocking_call_one_helper_deep(self):
        from pathlib import Path

        from repro.verify import flow

        fixture = (
            Path(__file__).parent / "flow_fixtures" / "fl004" / "repro"
        )
        graph = flow.build_graph(fixture, spec=flow.TaintSpec())
        findings = flow.rep006_violations(graph)
        assert rules_of(findings) == ["REP006", "REP006"]
        # Both serving layers are covered: the single server and the
        # cluster router tier.
        assert {f.path for f in findings} == {
            "repro/cluster/backoff.py", "repro/serve/sync_ops.py"
        }
        assert all("time.sleep" in f.message for f in findings)

    def test_flow_errors_degrade_to_fallback(self, monkeypatch):
        from repro.verify import flow, repolint

        def boom(*args, **kwargs):
            raise RuntimeError("scan failed")

        monkeypatch.setattr(flow, "rep006_violations", boom)
        assert repolint._flow_rep006() is None
        # The full-package run still completes (per-file fallback).
        assert repolint.lint_paths() == []


class TestSuppressionInventory:
    def test_comments_enumerated_per_rule(self):
        from repro.verify.repolint import suppression_comments

        source = (
            "x = 1  # repolint: disable=REP001,REP002\n"
            "# flowlint: disable-file=FL003\n"
        )
        entries = suppression_comments(source)
        assert (1, "repolint", "REP001", False) in entries
        assert (1, "repolint", "REP002", False) in entries
        assert (2, "flowlint", "FL003", True) in entries

    def test_docstring_mentions_are_not_comments(self):
        from repro.verify.repolint import suppression_comments

        source = (
            '"""Shows `# repolint: disable=REP001` in docs."""\n'
            "x = 1\n"
        )
        assert suppression_comments(source) == []
