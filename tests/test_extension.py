"""Unit tests for BLAST extension stages."""

from repro.align.blast.extension import (
    UngappedExtension,
    extend_gapped,
    extend_ungapped,
)
from repro.align.smith_waterman import sw_score
from repro.align.types import PAPER_GAPS
from repro.bio.alphabet import PROTEIN
from repro.bio.matrices import BLOSUM62
from repro.bio.sequence import Sequence


def encode(text: str):
    return PROTEIN.encode(text)


class TestUngappedExtension:
    def test_identical_sequences_extend_fully(self):
        text = "ARNDCQEGHILKMFPSTVWY"
        codes = encode(text)
        result = extend_ungapped(codes, codes, 8, 8, 3, BLOSUM62)
        assert result.query_start == 0
        assert result.query_end == len(codes)
        assert result.score == sum(BLOSUM62.score(c, c) for c in codes)

    def test_extension_stays_on_diagonal(self):
        text = "ARNDCQEGHILKMFPSTVWY"
        codes = encode(text)
        result = extend_ungapped(codes, codes, 5, 5, 3, BLOSUM62)
        assert result.query_start == result.subject_start
        assert result.query_end == result.subject_end

    def test_xdrop_stops_extension(self):
        # Identical word in the middle of hostile context.
        query = encode("PPPPPP" + "WWWW" + "PPPPPP")
        subject = encode("GGGGGG" + "WWWW" + "GGGGGG")
        result = extend_ungapped(query, subject, 6, 6, 4, BLOSUM62, x_drop=5)
        assert result.query_start >= 4
        assert result.query_end <= len(query) - 4
        word_score = 4 * BLOSUM62.score_symbols("W", "W")
        assert result.score == word_score

    def test_score_at_least_word_score(self):
        codes = encode("ARNDCQEGHILKMFPSTVWY")
        word_score = sum(BLOSUM62.score(c, c) for c in codes[4:7])
        result = extend_ungapped(codes, codes, 4, 4, 3, BLOSUM62)
        assert result.score >= word_score

    def test_length_property(self):
        ext = UngappedExtension(10, 2, 8, 4, 10)
        assert ext.length == 6


class TestGappedExtension:
    def test_gapped_at_least_ungapped(self):
        query = Sequence("q", "ARNDCQEGHILKMFPSTVWY" * 2)
        subject = Sequence("s", "ARNDCQEGHILKMFPSTVWY" * 2)
        seed = extend_ungapped(query.codes, subject.codes, 10, 10, 3, BLOSUM62)
        gapped = extend_gapped(query, subject, seed, BLOSUM62, PAPER_GAPS)
        assert gapped >= seed.score

    def test_gapped_bounded_by_full_sw(self):
        query = Sequence("q", "ARNDCQEGHILKMFPSTVWYACDEFGHIK")
        subject = Sequence("s", "ARNDCQEGHWWWILKMFPSTVWYACDEF")
        seed = extend_ungapped(query.codes, subject.codes, 0, 0, 3, BLOSUM62)
        gapped = extend_gapped(query, subject, seed, BLOSUM62, PAPER_GAPS)
        assert gapped <= sw_score(query, subject)

    def test_gapped_recovers_gapped_alignment(self):
        # An insertion splits the match; only the gapped stage spans it.
        left = "ARNDCQEGHILKMFPSTVWY"
        right = "ACDEFGHIKLMNPQRSTVWY"
        query = Sequence("q", left + right)
        subject = Sequence("s", left + "W" + right)
        seed = extend_ungapped(query.codes, subject.codes, 2, 2, 3, BLOSUM62)
        gapped = extend_gapped(query, subject, seed, BLOSUM62, PAPER_GAPS)
        assert gapped > seed.score
        assert gapped == sw_score(query, subject)
