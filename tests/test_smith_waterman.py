"""Unit and property tests for Smith-Waterman implementations."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.smith_waterman import smith_waterman, sw_score, sw_score_swat
from repro.align.types import GapPenalties
from repro.bio.alphabet import PROTEIN
from repro.bio.matrices import BLOSUM50, BLOSUM62
from repro.bio.synthetic import MutationModel, random_protein

proteins = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=0, max_size=48)


class TestKnownAlignments:
    def test_identical_sequences(self):
        text = "ACDEFGHIKLMNPQRSTVWY"
        expected = sum(BLOSUM62.score_symbols(c, c) for c in text)
        assert sw_score(text, text) == expected

    def test_empty_inputs(self):
        assert sw_score("", "ACD") == 0
        assert sw_score("ACD", "") == 0
        assert sw_score_swat("", "") == 0

    def test_no_similarity_scores_zero_floor(self):
        # Local alignment never goes negative.
        assert sw_score("W", "P") == 0

    def test_paper_intro_example(self):
        result = smith_waterman("CSTTPGGG", "CSDTNGLAWGG")
        assert result.score == sw_score("CSTTPGGG", "CSDTNGLAWGG")
        assert result.identities >= 3

    def test_gap_penalty_applied(self):
        # One residue inserted: alignment must pay open+extend once.
        a = "ACDEFGHIKLMNPQRSTVWY"
        b = a[:10] + "W" + a[10:]
        perfect = sw_score(a, a)
        with_gap = sw_score(a, b)
        assert with_gap <= perfect
        assert with_gap >= perfect - 11

    def test_matrix_parameter_respected(self):
        a = random_protein(60, random.Random(0))
        b = random_protein(60, random.Random(1))
        s62 = sw_score(a, b, matrix=BLOSUM62)
        s50 = sw_score(a, b, matrix=BLOSUM50)
        # Different matrices generally give different scores.
        assert isinstance(s62, int) and isinstance(s50, int)


class TestTraceback:
    def test_alignment_strings_rebuild_score(self):
        rng = random.Random(2)
        base = random_protein(80, rng)
        other = MutationModel(substitution_rate=0.2).mutate(base, rng)
        result = smith_waterman(base, other)
        # Recompute the score from the aligned strings.
        gaps = GapPenalties()
        score = 0
        column = 0
        aligned = list(zip(result.aligned_query, result.aligned_subject))
        while column < len(aligned):
            a, b = aligned[column]
            if a == "-" or b == "-":
                gap_char = 0 if a == "-" else 1
                length = 0
                while column < len(aligned) and aligned[column][gap_char] == "-":
                    length += 1
                    column += 1
                score -= gaps.cost(length)
            else:
                score += BLOSUM62.score_symbols(a, b)
                column += 1
        assert score == result.score

    def test_alignment_coordinates_consistent(self):
        rng = random.Random(3)
        base = random_protein(60, rng)
        other = MutationModel().mutate(base, rng)
        result = smith_waterman(base, other)
        query_residues = sum(1 for c in result.aligned_query if c != "-")
        subject_residues = sum(1 for c in result.aligned_subject if c != "-")
        assert result.query_end - result.query_start == query_residues
        assert result.subject_end - result.subject_start == subject_residues

    def test_aligned_strings_match_source(self):
        result = smith_waterman("CSTTPGGG", "CSDTNGLAWGG")
        assert result.aligned_query.replace("-", "") == (
            "CSTTPGGG"[result.query_start:result.query_end]
        )
        assert result.aligned_subject.replace("-", "") == (
            "CSDTNGLAWGG"[result.subject_start:result.subject_end]
        )


@settings(max_examples=60, deadline=None)
@given(a=proteins, b=proteins)
def test_swat_equals_reference(a, b):
    assert sw_score_swat(a, b) == sw_score(a, b)


@settings(max_examples=40, deadline=None)
@given(a=proteins, b=proteins)
def test_traceback_score_equals_reference(a, b):
    assert smith_waterman(a, b).score == sw_score(a, b)


@settings(max_examples=40, deadline=None)
@given(a=proteins, b=proteins)
def test_score_symmetric(a, b):
    assert sw_score(a, b) == sw_score(b, a)


@settings(max_examples=40, deadline=None)
@given(a=proteins, b=proteins)
def test_score_non_negative_and_bounded(a, b):
    score = sw_score(a, b)
    assert score >= 0
    bound = BLOSUM62.max_score() * min(len(a), len(b))
    assert score <= bound


@settings(max_examples=30, deadline=None)
@given(a=proteins)
def test_self_alignment_scores_full_diagonal(a):
    expected = sum(BLOSUM62.score(c, c) for c in PROTEIN.encode(a))
    assert sw_score(a, a) == expected


@settings(max_examples=30, deadline=None)
@given(a=proteins, b=proteins)
def test_concatenation_never_reduces_score(a, b):
    # Adding context cannot reduce the best local score.
    assert sw_score(a, b + "WWW") >= sw_score(a, b)
