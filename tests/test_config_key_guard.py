"""Guard: the structural config key must cover every configuration knob.

A field added to any configuration dataclass but forgotten in
``runtime.keys.config_key`` would silently alias cache entries (two
different machines sharing one cached result).  The mutation tables and
both guard predicates now live in :mod:`repro.verify.guards`, shared
with ``repro lint-code`` (REP003); this module is the thin tier-1
caller that turns each gap into a named assertion failure.
"""

from __future__ import annotations

import pytest

from repro.verify.guards import (
    GUARDED_CONFIGS,
    NESTED_CONFIGS,
    config_key_blind_spots,
    config_mutation_gaps,
)
from repro.verify.repolint import config_key_coverage


def test_every_config_field_has_a_mutation():
    assert config_mutation_gaps() == {}, (
        "a config dataclass and its mutation table disagree; decide "
        "whether the new/removed knob addresses the cache, then update "
        "repro.verify.guards and runtime.keys.config_key together"
    )


def test_every_mutation_changes_the_key():
    assert config_key_blind_spots() == [], (
        "these knobs are not part of config_key: different "
        "configurations would alias one cache entry"
    )


def test_static_coverage_agrees_with_dynamic_guards():
    """REP003's AST pass must see the same world as the dynamic guards."""
    assert config_key_coverage() == {}


def test_guard_tables_cover_all_config_dataclasses():
    names = {cls.__name__ for cls in GUARDED_CONFIGS} | {
        cls.__name__ for cls in NESTED_CONFIGS
    }
    assert names == {
        "ProcessorConfig",
        "MemoryConfig",
        "BranchPredictorConfig",
        "CacheConfig",
        "TlbConfig",
    }


def test_blind_spot_reporting_names_the_field():
    """A key that ignores a knob is reported as ``Class.field``."""
    from dataclasses import replace

    from repro.verify import guards

    broken = dict(GUARDED_CONFIGS)
    broken[guards.ProcessorConfig] = (
        {"fetch_width": lambda c: replace(c, fetch_width=c.fetch_width)},
        lambda mutate: mutate(guards.BASE),
    )
    with pytest.MonkeyPatch.context() as patcher:
        patcher.setattr(guards, "GUARDED_CONFIGS", broken)
        patcher.setattr(guards, "NESTED_CONFIGS", {})
        assert guards.config_key_blind_spots() == [
            "ProcessorConfig.fetch_width"
        ]
