"""Guard: the structural config key must cover every configuration knob.

The persistent result cache addresses simulation results by
``analysis.context._config_key``.  A field added to any configuration
dataclass but forgotten in the key would silently alias cache entries
(two different machines sharing one cached result).  These tests
enumerate ``dataclasses.fields`` of every config dataclass and require
(a) an explicit mutation for each field in the tables below — so adding
a knob fails the suite until the key question is answered — and (b)
that each mutation actually changes the key.
"""

import dataclasses
from dataclasses import replace

from repro.analysis.context import _config_key
from repro.isa.opcodes import FunctionalUnit
from repro.uarch.config import (
    ME1,
    PROC_4WAY,
    BranchPredictorConfig,
    CacheConfig,
    MemoryConfig,
    ProcessorConfig,
    TlbConfig,
)

BASE = PROC_4WAY.with_memory(ME1)


def bump_units(config):
    units = dict(config.units)
    units[FunctionalUnit.FX] += 1
    return replace(config, units=units)


#: field name -> mutation producing a valid, structurally different config.
PROCESSOR_MUTATIONS = {
    "name": lambda c: replace(c, name=c.name + "-x"),
    "fetch_width": lambda c: replace(c, fetch_width=c.fetch_width + 1),
    "dispatch_width": lambda c: replace(c, dispatch_width=c.dispatch_width + 1),
    "retire_width": lambda c: replace(c, retire_width=c.retire_width + 1),
    "inflight": lambda c: replace(c, inflight=c.inflight + 1),
    "gpr": lambda c: replace(c, gpr=c.gpr + 1),
    "vpr": lambda c: replace(c, vpr=c.vpr + 1),
    "fpr": lambda c: replace(c, fpr=c.fpr + 1),
    "units": bump_units,
    "issue_queue_size": lambda c: replace(
        c, issue_queue_size=c.issue_queue_size + 1
    ),
    "ibuffer_size": lambda c: replace(c, ibuffer_size=c.ibuffer_size + 1),
    "retire_queue": lambda c: replace(c, retire_queue=c.retire_queue + 1),
    "dcache_read_ports": lambda c: replace(
        c, dcache_read_ports=c.dcache_read_ports + 1
    ),
    "dcache_write_ports": lambda c: replace(
        c, dcache_write_ports=c.dcache_write_ports + 1
    ),
    "max_outstanding_misses": lambda c: replace(
        c, max_outstanding_misses=c.max_outstanding_misses + 1
    ),
    "store_queue_size": lambda c: replace(
        c, store_queue_size=c.store_queue_size + 1
    ),
    "memory": lambda c: c.with_memory(
        replace(c.memory, memory_latency=c.memory.memory_latency + 1)
    ),
    "branch": lambda c: c.with_branch(
        replace(c.branch, mispredict_recovery=c.branch.mispredict_recovery + 1)
    ),
    "wide_load_extra_latency": lambda c: replace(
        c, wide_load_extra_latency=c.wide_load_extra_latency + 1
    ),
}

MEMORY_MUTATIONS = {
    "name": lambda m: replace(m, name=m.name + "-x"),
    "il1": lambda m: replace(
        m, il1=replace(m.il1, latency=m.il1.latency + 1)
    ),
    "dl1": lambda m: replace(
        m, dl1=replace(m.dl1, latency=m.dl1.latency + 1)
    ),
    "l2": lambda m: replace(m, l2=replace(m.l2, latency=m.l2.latency + 1)),
    "memory_latency": lambda m: replace(
        m, memory_latency=m.memory_latency + 1
    ),
    "itlb": lambda m: replace(
        m, itlb=replace(m.itlb, miss_penalty=m.itlb.miss_penalty + 1)
    ),
    "dtlb": lambda m: replace(
        m, dtlb=replace(m.dtlb, miss_penalty=m.dtlb.miss_penalty + 1)
    ),
    "sequential_prefetch": lambda m: replace(
        m, sequential_prefetch=not m.sequential_prefetch
    ),
}

CACHE_MUTATIONS = {
    "size_bytes": lambda c: replace(c, size_bytes=c.size_bytes * 2),
    "associativity": lambda c: replace(
        c, associativity=c.associativity * 2
    ),
    "line_bytes": lambda c: replace(c, line_bytes=c.line_bytes // 2),
    "latency": lambda c: replace(c, latency=c.latency + 1),
}

TLB_MUTATIONS = {
    "entries": lambda t: replace(t, entries=t.entries * 2),
    "associativity": lambda t: replace(t, associativity=t.associativity * 2),
    "page_bytes": lambda t: replace(t, page_bytes=t.page_bytes * 2),
    "miss_penalty": lambda t: replace(t, miss_penalty=t.miss_penalty + 1),
}

BRANCH_MUTATIONS = {
    "kind": lambda b: replace(b, kind="gshare"),
    "table_entries": lambda b: replace(b, table_entries=b.table_entries * 2),
    "btb_entries": lambda b: replace(b, btb_entries=b.btb_entries * 2),
    "btb_associativity": lambda b: replace(
        b, btb_associativity=b.btb_associativity * 2
    ),
    "btb_miss_penalty": lambda b: replace(
        b, btb_miss_penalty=b.btb_miss_penalty + 1
    ),
    "max_predicted_branches": lambda b: replace(
        b, max_predicted_branches=b.max_predicted_branches + 1
    ),
    "mispredict_recovery": lambda b: replace(
        b, mispredict_recovery=b.mispredict_recovery + 1
    ),
}


def field_names(dataclass_type) -> set:
    return {field.name for field in dataclasses.fields(dataclass_type)}


class TestProcessorCoverage:
    def test_every_field_has_a_mutation(self):
        assert field_names(ProcessorConfig) == set(PROCESSOR_MUTATIONS), (
            "ProcessorConfig grew a field; add it to _config_key (or "
            "justify its exclusion) and to PROCESSOR_MUTATIONS"
        )

    def test_every_mutation_changes_the_key(self):
        for name, mutate in PROCESSOR_MUTATIONS.items():
            changed = mutate(BASE)
            assert _config_key(changed) != _config_key(BASE), (
                f"ProcessorConfig.{name} is not part of _config_key: "
                f"different configurations would alias one cache entry"
            )


class TestMemoryCoverage:
    def test_every_field_has_a_mutation(self):
        assert field_names(MemoryConfig) == set(MEMORY_MUTATIONS)

    def test_every_mutation_changes_the_key(self):
        for name, mutate in MEMORY_MUTATIONS.items():
            changed = BASE.with_memory(mutate(BASE.memory))
            assert _config_key(changed) != _config_key(BASE), (
                f"MemoryConfig.{name} is not part of _config_key"
            )


class TestCacheCoverage:
    def test_every_field_has_a_mutation(self):
        assert field_names(CacheConfig) == set(CACHE_MUTATIONS)

    def test_every_mutation_changes_the_key(self):
        for level in ("il1", "dl1", "l2"):
            for name, mutate in CACHE_MUTATIONS.items():
                memory = replace(
                    BASE.memory, **{level: mutate(getattr(BASE.memory, level))}
                )
                changed = BASE.with_memory(memory)
                assert _config_key(changed) != _config_key(BASE), (
                    f"CacheConfig.{name} (via {level}) is not part of "
                    f"_config_key"
                )


class TestTlbCoverage:
    def test_every_field_has_a_mutation(self):
        assert field_names(TlbConfig) == set(TLB_MUTATIONS)

    def test_every_mutation_changes_the_key(self):
        for side in ("itlb", "dtlb"):
            for name, mutate in TLB_MUTATIONS.items():
                memory = replace(
                    BASE.memory, **{side: mutate(getattr(BASE.memory, side))}
                )
                changed = BASE.with_memory(memory)
                assert _config_key(changed) != _config_key(BASE), (
                    f"TlbConfig.{name} (via {side}) is not part of "
                    f"_config_key"
                )


class TestBranchCoverage:
    def test_every_field_has_a_mutation(self):
        assert field_names(BranchPredictorConfig) == set(BRANCH_MUTATIONS)

    def test_every_mutation_changes_the_key(self):
        for name, mutate in BRANCH_MUTATIONS.items():
            changed = BASE.with_branch(mutate(BASE.branch))
            assert _config_key(changed) != _config_key(BASE), (
                f"BranchPredictorConfig.{name} is not part of _config_key"
            )
