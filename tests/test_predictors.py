"""Unit and property tests for branch direction predictors."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.branch.predictors import (
    BimodalPredictor,
    CombinedPredictor,
    GsharePredictor,
    PerfectPredictor,
    create_predictor,
)

STRATEGIES = ("bimodal", "gshare", "gp")


def train(predictor, stream):
    """Run a (pc, taken) stream; return accuracy."""
    correct = 0
    for pc, taken in stream:
        predicted = predictor.predict(pc)
        predictor.record(predicted, taken)
        predictor.update(pc, taken)
        if predicted == taken:
            correct += 1
    return correct / len(stream) if stream else 1.0


class TestBimodal:
    def test_learns_biased_branch(self):
        predictor = BimodalPredictor(256)
        stream = [(0x40, True)] * 100
        accuracy = train(predictor, stream)
        assert accuracy > 0.95

    def test_learns_always_not_taken(self):
        predictor = BimodalPredictor(256)
        accuracy = train(predictor, [(0x40, False)] * 100)
        assert accuracy > 0.9

    def test_alternating_pattern_defeats_bimodal(self):
        predictor = BimodalPredictor(256)
        stream = [(0x40, i % 2 == 0) for i in range(200)]
        accuracy = train(predictor, stream)
        assert accuracy < 0.7

    def test_size_rounds_to_power_of_two(self):
        assert BimodalPredictor(100).entries == 64

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BimodalPredictor(0)


class TestGshare:
    def test_learns_history_pattern(self):
        # Period-2 pattern: gshare's history disambiguates it.
        predictor = GsharePredictor(1024)
        stream = [(0x40, i % 2 == 0) for i in range(400)]
        accuracy = train(predictor, stream)
        assert accuracy > 0.9

    def test_learns_longer_pattern(self):
        predictor = GsharePredictor(4096)
        pattern = [True, True, False, True, False, False]
        stream = [(0x40, pattern[i % len(pattern)]) for i in range(1200)]
        accuracy = train(predictor, stream)
        assert accuracy > 0.85


class TestCombined:
    def test_beats_or_matches_components_on_mixed_load(self):
        rng = random.Random(1)
        # Two branches: one statically biased, one history-driven.
        stream = []
        for i in range(1500):
            stream.append((0x40, i % 2 == 0))
            stream.append((0x80, rng.random() < 0.9))
        combined = train(CombinedPredictor(4096), list(stream))
        bimodal = train(BimodalPredictor(4096), list(stream))
        assert combined >= bimodal - 0.02

    def test_accuracy_property(self):
        predictor = CombinedPredictor(64)
        assert predictor.accuracy == 1.0
        predictor.record(True, False)
        assert predictor.accuracy == 0.0


class TestFactory:
    @pytest.mark.parametrize("kind", STRATEGIES)
    def test_create(self, kind):
        predictor = create_predictor(kind, 128)
        predictor.update(0x10, True)
        assert predictor.predict(0x10) in (True, False)

    def test_perfect(self):
        assert isinstance(create_predictor("perfect", 1), PerfectPredictor)

    def test_unknown(self):
        with pytest.raises(ValueError):
            create_predictor("tage", 128)


@settings(max_examples=30, deadline=None)
@given(
    outcomes=st.lists(st.booleans(), min_size=1, max_size=300),
    kind=st.sampled_from(STRATEGIES),
)
def test_accuracy_bookkeeping_consistent(outcomes, kind):
    predictor = create_predictor(kind, 256)
    correct = 0
    for taken in outcomes:
        predicted = predictor.predict(0x40)
        if predictor.record(predicted, taken):
            correct += 1
        predictor.update(0x40, taken)
    assert predictor.predictions == len(outcomes)
    assert predictor.correct == correct


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_biased_stream_learned_by_all(seed):
    rng = random.Random(seed)
    stream = [(0x100, rng.random() < 0.95) for _ in range(400)]
    for kind in STRATEGIES:
        accuracy = train(create_predictor(kind, 1024), list(stream))
        assert accuracy > 0.8, kind
