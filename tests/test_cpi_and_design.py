"""Tests for the CPI-stack and design-space analysis tools."""

import pytest

from repro.analysis.cpi_stack import (
    FAMILIES,
    CpiStack,
    classify_trauma,
    cpi_stack_from_result,
    cpi_stack_report,
    cpi_stacks,
)
from repro.analysis.design_space import (
    unit_scaling_report,
    unit_scaling_study,
    with_unit_count,
)
from repro.isa.opcodes import FunctionalUnit
from repro.uarch.config import PROC_4WAY
from repro.uarch.results import BranchResult, CacheResult, SimulationResult


class TestClassification:
    def test_families(self):
        assert classify_trauma("if_pred") == "branch"
        assert classify_trauma("if_nfa") == "branch"
        assert classify_trauma("mm_dl2") == "memory"
        assert classify_trauma("rg_mem") == "memory"
        assert classify_trauma("rg_vi") == "dependence"
        assert classify_trauma("rg_fix") == "dependence"
        assert classify_trauma("ful_vi") == "resource"
        assert classify_trauma("diq_fix") == "resource"
        assert classify_trauma("rename") == "resource"
        assert classify_trauma("if_l2") == "frontend"
        assert classify_trauma("other") == "other"


class TestStackConstruction:
    def _result(self, cycles, traumas):
        return SimulationResult(
            trace_name="t", config_name="c", memory_name="m",
            instructions=1000, cycles=cycles, traumas=traumas,
            branch=BranchResult(10, 9),
            il1=CacheResult(1, 0), dl1=CacheResult(1, 0), l2=CacheResult(1, 0),
        )

    def test_slices_sum_to_cpi(self):
        result = self._result(2000, {"if_pred": 500, "mm_dl2": 300})
        stack = cpi_stack_from_result("app", result)
        assert sum(stack.slices.values()) == pytest.approx(stack.cpi)

    def test_base_is_uncharged_cycles(self):
        result = self._result(2000, {"if_pred": 500})
        stack = cpi_stack_from_result("app", result)
        assert stack.base == pytest.approx(1.5)
        assert stack.slices["branch"] == pytest.approx(0.5)

    def test_dominant_family(self):
        result = self._result(2000, {"if_pred": 100, "mm_dl2": 700})
        assert cpi_stack_from_result("app", result).dominant_family() == "memory"

    def test_all_families_present(self):
        stack = cpi_stack_from_result("app", self._result(100, {}))
        assert set(stack.slices) == set(FAMILIES)


class TestSuiteStacks:
    def test_dominant_families_match_paper(self, context):
        stacks = {s.application: s for s in cpi_stacks(context)}
        assert stacks["ssearch34"].dominant_family() == "branch"
        assert stacks["sw_vmx128"].dominant_family() == "dependence"
        assert stacks["blast"].dominant_family() in ("memory", "branch")

    def test_report_renders(self, context):
        report = cpi_stack_report(cpi_stacks(context))
        assert "ssearch34" in report
        assert "dominant stall" in report


class TestUnitScaling:
    def test_with_unit_count(self):
        config = with_unit_count(PROC_4WAY, FunctionalUnit.VI, 4)
        assert config.units[FunctionalUnit.VI] == 4
        assert PROC_4WAY.units[FunctionalUnit.VI] == 1  # original intact

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            with_unit_count(PROC_4WAY, FunctionalUnit.VI, 0)

    def test_vi_units_help_simd_not_scalar(self, context):
        result = unit_scaling_study(
            context, FunctionalUnit.VI, counts=(1, 4),
            apps=("sw_vmx128", "ssearch34"),
        )
        assert result.gain("sw_vmx128") > 0.05
        assert result.gain("ssearch34") == pytest.approx(0.0, abs=0.02)

    def test_more_units_never_hurt(self, context):
        result = unit_scaling_study(
            context, FunctionalUnit.FX, counts=(1, 3),
            apps=("blast",),
        )
        values = result.ipc["blast"]
        assert values[1] >= values[0] - 1e-9

    def test_report_renders(self, context):
        result = unit_scaling_study(
            context, FunctionalUnit.VI, counts=(1, 2),
            apps=("sw_vmx128",),
        )
        assert "VI unit count" in unit_scaling_report(result)
