"""Unit tests for synthetic database generation."""

import random

import pytest

from repro.bio.synthetic import (
    SWISSPROT_COMPOSITION,
    MutationModel,
    SyntheticDatabaseConfig,
    generate_database,
    homolog_of,
    random_length,
    random_protein,
)
from repro.bio.sequence import Sequence


class TestComposition:
    def test_frequencies_sum_to_one(self):
        assert sum(SWISSPROT_COMPOSITION.values()) == pytest.approx(1.0, abs=0.01)

    def test_twenty_standard_residues(self):
        assert len(SWISSPROT_COMPOSITION) == 20

    def test_random_protein_composition_roughly_matches(self):
        rng = random.Random(1)
        text = random_protein(50_000, rng)
        leucine = text.count("L") / len(text)
        tryptophan = text.count("W") / len(text)
        assert abs(leucine - SWISSPROT_COMPOSITION["L"]) < 0.01
        assert abs(tryptophan - SWISSPROT_COMPOSITION["W"]) < 0.01

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            random_protein(-1, random.Random(0))


class TestLengthModel:
    def test_lengths_clamped(self):
        rng = random.Random(2)
        lengths = [random_length(rng) for _ in range(500)]
        assert all(40 <= length <= 2000 for length in lengths)

    def test_mean_in_plausible_range(self):
        rng = random.Random(3)
        lengths = [random_length(rng) for _ in range(2000)]
        mean = sum(lengths) / len(lengths)
        assert 250 < mean < 480


class TestMutationModel:
    def test_zero_rates_identity(self):
        model = MutationModel(substitution_rate=0.0, indel_rate=0.0)
        assert model.mutate("ACDEFGHIKL", random.Random(4)) == "ACDEFGHIKL"

    def test_substitutions_change_residues(self):
        model = MutationModel(substitution_rate=1.0, indel_rate=0.0)
        original = random_protein(200, random.Random(5))
        mutated = model.mutate(original, random.Random(6))
        assert len(mutated) == len(original)
        differing = sum(1 for a, b in zip(original, mutated) if a != b)
        assert differing > 150  # a few collide with the same residue

    def test_indels_change_length(self):
        model = MutationModel(substitution_rate=0.0, indel_rate=0.3)
        original = random_protein(300, random.Random(7))
        mutated = model.mutate(original, random.Random(8))
        assert mutated != original

    def test_deterministic_given_seed(self):
        model = MutationModel()
        original = random_protein(100, random.Random(9))
        first = model.mutate(original, random.Random(10))
        second = model.mutate(original, random.Random(10))
        assert first == second


class TestGenerateDatabase:
    def test_deterministic(self):
        config = SyntheticDatabaseConfig(
            sequence_count=30, family_count=2, family_size=3, seed=42
        )
        first = generate_database(config)
        second = generate_database(config)
        assert [s.text for s in first] == [s.text for s in second]

    def test_sequence_count(self):
        config = SyntheticDatabaseConfig(
            sequence_count=25, family_count=3, family_size=4
        )
        assert len(generate_database(config)) == 25

    def test_families_present_and_related(self):
        config = SyntheticDatabaseConfig(
            sequence_count=20, family_count=2, family_size=4, seed=5
        )
        db = generate_database(config)
        family0 = [s for s in db if s.identifier.startswith("FAM000")]
        assert len(family0) == 4
        # Family members share detectable similarity.
        from repro.align import sw_score

        score = sw_score(family0[0], family0[1])
        background = sw_score(family0[0], db.get("RND00000"))
        assert score > background * 2

    def test_oversized_families_rejected(self):
        with pytest.raises(ValueError):
            SyntheticDatabaseConfig(
                sequence_count=5, family_count=3, family_size=3
            )


class TestHomologOf:
    def test_related_but_not_identical(self):
        base = Sequence("Q", random_protein(150, random.Random(11)))
        hom = homolog_of(base, seed=1)
        assert hom.text != base.text
        assert base.identifier in hom.identifier
