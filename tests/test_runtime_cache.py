"""Tests for the runtime's content-addressed cache and its keys."""

import pytest

from repro.isa.builder import TraceBuilder
from repro.isa.serialize import load_trace, save_trace
from repro.kernels.base import KernelRun
from repro.runtime.cache import ResultCache, result_from_dict, result_to_dict
from repro.runtime.keys import (
    code_salt,
    simulate_key,
    trace_digest,
    trace_task_key,
)
from repro.uarch.config import ME1, ME2, PROC_4WAY, PROC_8WAY
from repro.uarch.results import BranchResult, CacheResult, SimulationResult


def build_trace(name="t", extra=0):
    builder = TraceBuilder(name)
    register = builder.ialu("a")
    builder.iload("ld", 0x1000, (register,), size=8)
    builder.ctrl("br", taken=True, backward=True)
    for _ in range(extra):
        builder.ialu("pad")
    return builder.build()


def build_result(**overrides) -> SimulationResult:
    values = dict(
        trace_name="t",
        config_name="4-way",
        memory_name="me1",
        instructions=1000,
        cycles=1700,
        traumas={"if_pred": 120, "rg_fix": 88},
        branch=BranchResult(
            predictions=40, correct=36, btb_lookups=40, btb_misses=2
        ),
        il1=CacheResult(900, 10),
        dl1=CacheResult(300, 25),
        l2=CacheResult(35, 5),
        itlb=CacheResult(900, 1),
        dtlb=CacheResult(300, 2),
        queue_occupancy={"issue": {0: 100, 3: 50}, "inflight": {10: 150}},
    )
    values.update(overrides)
    return SimulationResult(**values)


class TestResultJson:
    def test_round_trip(self):
        result = build_result()
        restored = result_from_dict(result_to_dict(result))
        assert restored == result

    def test_occupancy_keys_are_ints(self):
        restored = result_from_dict(result_to_dict(build_result()))
        histogram = restored.queue_occupancy["issue"]
        assert all(isinstance(key, int) for key in histogram)
        assert histogram[0] == 100

    def test_properties_survive(self):
        restored = result_from_dict(result_to_dict(build_result()))
        assert restored.ipc == pytest.approx(1000 / 1700)
        assert restored.branch.accuracy == pytest.approx(0.9)


class TestResultCache:
    def test_result_store_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = build_result()
        cache.store_result("ab" * 16, result)
        assert cache.load_result("ab" * 16) == result

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).load_result("cd" * 16) is None

    def test_trace_store_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        trace = build_trace()
        digest = trace_digest(trace)
        path = cache.store_trace(digest, trace)
        assert path.exists()
        loaded = cache.load_trace(digest)
        assert len(loaded) == len(trace)
        assert trace_digest(loaded) == digest

    def test_kernel_run_store_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        trace = build_trace()
        digest = trace_digest(trace)
        cache.store_trace(digest, trace)
        run = KernelRun(
            kernel_name="blast",
            mix=trace.mix(),
            trace=trace,
            scores={"seq1": 42},
            truncated=True,
            subjects_processed=1,
        )
        cache.store_kernel_run("ef" * 16, run, digest)
        restored = cache.load_kernel_run("ef" * 16)
        assert restored.kernel_name == "blast"
        assert restored.mix == run.mix
        assert restored.scores == {"seq1": 42}
        assert restored.truncated is True
        assert restored.subjects_processed == 1
        assert len(restored.trace) == len(trace)

    def test_kernel_run_without_trace_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        trace = build_trace()
        run = KernelRun(
            kernel_name="blast", mix=trace.mix(), trace=trace
        )
        cache.store_kernel_run("aa" * 16, run, "99" * 16)  # trace not stored
        assert cache.load_kernel_run("aa" * 16) is None

    def test_stats_and_clean(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store_result("ab" * 16, build_result())
        trace = build_trace()
        cache.store_trace(trace_digest(trace), trace)
        stats = cache.stats()
        assert stats.results == 1
        assert stats.traces == 1
        assert stats.entries == 2
        assert stats.total_bytes > 0
        removed = cache.clean()
        assert removed.entries == 2
        assert cache.stats().entries == 0
        # The cache stays usable after a clean.
        cache.store_result("ab" * 16, build_result())
        assert cache.stats().results == 1


class TestKeys:
    def test_simulate_key_stable(self):
        trace = build_trace()
        config = PROC_4WAY.with_memory(ME1)
        assert simulate_key(trace, config) == simulate_key(trace, config)

    def test_simulate_key_varies_with_config(self):
        trace = build_trace()
        base = simulate_key(trace, PROC_4WAY.with_memory(ME1))
        assert simulate_key(trace, PROC_8WAY.with_memory(ME1)) != base
        assert simulate_key(trace, PROC_4WAY.with_memory(ME2)) != base

    def test_simulate_key_varies_with_occupancy(self):
        trace = build_trace()
        config = PROC_4WAY.with_memory(ME1)
        assert simulate_key(trace, config, True) != simulate_key(
            trace, config, False
        )

    def test_simulate_key_varies_with_trace_content(self):
        config = PROC_4WAY.with_memory(ME1)
        assert simulate_key(build_trace(), config) != simulate_key(
            build_trace(extra=1), config
        )

    def test_trace_digest_survives_round_trip(self, tmp_path):
        trace = build_trace(extra=5)
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        assert trace_digest(load_trace(path)) == trace_digest(trace)

    def test_trace_digest_depends_on_name(self):
        assert trace_digest(build_trace(name="a")) != trace_digest(
            build_trace(name="b")
        )

    def test_code_salt_stable_and_hexadecimal(self):
        salt = code_salt()
        assert salt == code_salt()
        int(salt, 16)

    def test_trace_task_key_varies(self, small_suite):
        base = trace_task_key(
            "blast", 1000, small_suite.database_config, small_suite.query
        )
        assert trace_task_key(
            "fasta34", 1000, small_suite.database_config, small_suite.query
        ) != base
        assert trace_task_key(
            "blast", 2000, small_suite.database_config, small_suite.query
        ) != base
