"""Unit tests for the FASTA pipeline stages and engine."""

import pytest

from repro.align.fasta.chaining import chain_regions
from repro.align.fasta.engine import FastaEngine, FastaOptions, fasta_search
from repro.align.fasta.ktup import (
    DiagonalRegion,
    KtupleIndex,
    find_initial_regions,
    rescore_region,
    scan_diagonal,
)
from repro.align.smith_waterman import sw_score
from repro.bio.alphabet import PROTEIN
from repro.bio.matrices import BLOSUM62
from repro.bio.synthetic import MutationModel, homolog_of


def encode(text: str):
    return PROTEIN.encode(text)


class TestKtupleIndex:
    def test_positions_recorded(self):
        index = KtupleIndex(encode("ARNAR"), ktup=2)
        ar = 0 * 20 + 1
        assert index.positions(ar) == (0, 3)

    def test_ambiguous_words_skipped(self):
        index = KtupleIndex(encode("AXA"), ktup=2)
        assert all(
            not index.positions(i) for i in range(len(index))
        )

    def test_diagonal_hits_self_scan(self):
        codes = encode("ARNDCQEGHILK")
        index = KtupleIndex(codes, ktup=2)
        hits = index.diagonal_hits(codes)
        # The main diagonal carries every position of a self-scan.
        assert 0 in hits
        assert hits[0] == list(range(len(codes) - 1))

    def test_invalid_ktup(self):
        with pytest.raises(ValueError):
            KtupleIndex(encode("ARN"), ktup=0)


class TestScanDiagonal:
    def test_single_run(self):
        runs = scan_diagonal([0, 2, 4, 6], ktup=2)
        assert len(runs) == 1
        start, end, score = runs[0]
        assert start == 0
        assert end == 8
        assert score > 0

    def test_distant_hits_split_runs(self):
        runs = scan_diagonal([0, 500], ktup=2)
        assert len(runs) == 2

    def test_empty(self):
        assert scan_diagonal([], ktup=2) == []


class TestRescoring:
    def test_rescore_uses_matrix(self):
        codes = encode("WWWWWW")
        region = DiagonalRegion(diagonal=0, subject_start=0, subject_end=6,
                                score=10)
        rescored = rescore_region(region, codes, codes, BLOSUM62)
        assert rescored.score == 6 * BLOSUM62.score_symbols("W", "W")

    def test_rescore_trims_to_best_subrun(self):
        query = encode("WWWPPP")
        subject = encode("WWWGGG")
        region = DiagonalRegion(diagonal=0, subject_start=0, subject_end=6,
                                score=10)
        rescored = rescore_region(region, query, subject, BLOSUM62)
        assert rescored.subject_start == 0
        assert rescored.subject_end == 3


class TestChaining:
    def test_empty(self):
        assert chain_regions([]) == 0

    def test_single_region(self):
        region = DiagonalRegion(0, 0, 10, 42)
        assert chain_regions([region]) == 42

    def test_compatible_regions_chain_with_penalty(self):
        first = DiagonalRegion(diagonal=0, subject_start=0, subject_end=10,
                               score=50)
        second = DiagonalRegion(diagonal=5, subject_start=20, subject_end=30,
                                score=40)
        assert chain_regions([first, second], join_penalty=20) == 70

    def test_overlapping_regions_do_not_chain(self):
        first = DiagonalRegion(diagonal=0, subject_start=0, subject_end=10,
                               score=50)
        second = DiagonalRegion(diagonal=2, subject_start=5, subject_end=15,
                                score=40)
        assert chain_regions([first, second], join_penalty=0) == 50

    def test_unprofitable_join_skipped(self):
        first = DiagonalRegion(diagonal=0, subject_start=0, subject_end=10,
                               score=50)
        second = DiagonalRegion(diagonal=5, subject_start=20, subject_end=30,
                                score=5)
        assert chain_regions([first, second], join_penalty=20) == 50


class TestFastaEngine:
    def test_stage_scores_ordered(self, query, tiny_database):
        engine = FastaEngine(query)
        for subject in tiny_database:
            stages = engine.score_subject(subject)
            assert stages.init1 <= stages.initn or stages.initn == 0

    def test_reported_prefers_opt(self):
        from repro.align.fasta.engine import FastaScores

        assert FastaScores(init1=10, initn=12, opt=30).reported == 30
        assert FastaScores(init1=10, initn=12, opt=0).reported == 12

    def test_scores_bounded_by_sw(self, query, tiny_database):
        engine = FastaEngine(query)
        for subject in tiny_database:
            stages = engine.score_subject(subject)
            assert stages.opt <= sw_score(query, subject)

    def test_finds_planted_homolog(self, query, small_database):
        homolog = homolog_of(query, seed=8,
                             mutation=MutationModel(substitution_rate=0.2))
        database = type(small_database)(
            list(small_database) + [homolog], name="plus"
        )
        result = fasta_search(query, database)
        assert result.best().subject_id == homolog.identifier

    def test_identical_sequence_recovers_near_full_score(self, query):
        engine = FastaEngine(query, FastaOptions(opt_threshold=1))
        stages = engine.score_subject(query)
        assert stages.opt >= 0.95 * sw_score(query, query)

    def test_best_count_enforced(self, query, small_database):
        result = fasta_search(
            query, small_database, FastaOptions(best_count=4)
        )
        assert len(result.hits) <= 4

    def test_region_invariants(self, query, tiny_database):
        index = KtupleIndex(query.codes)
        for subject in tiny_database:
            for region in find_initial_regions(index, subject.codes):
                assert region.subject_start <= region.subject_end
                assert region.query_end - region.query_start == region.length
