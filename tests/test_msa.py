"""Tests for the star MSA extension (paper future work)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align.msa import MultipleAlignment, star_msa
from repro.align.needleman_wunsch import nw_score
from repro.bio.sequence import Sequence
from repro.bio.synthetic import MutationModel, random_protein

proteins = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=2, max_size=25)


def family(seed, count=4, length=50, rate=0.2):
    rng = random.Random(seed)
    base = random_protein(length, rng)
    model = MutationModel(substitution_rate=rate, indel_rate=0.03)
    return [Sequence(f"S{i}", model.mutate(base, rng)) for i in range(count)]


class TestStarMsa:
    def test_rows_strip_to_inputs(self):
        sequences = family(1)
        msa = star_msa(sequences)
        for sequence, row in zip(sequences, msa.rows):
            assert row.replace("-", "") == sequence.text

    def test_equal_row_lengths(self):
        msa = star_msa(family(2))
        assert len({len(row) for row in msa.rows}) == 1

    def test_identifiers_preserved_in_order(self):
        sequences = family(3)
        msa = star_msa(sequences)
        assert msa.identifiers == tuple(s.identifier for s in sequences)

    def test_two_sequences_equal_pairwise(self):
        sequences = family(4, count=2)
        msa = star_msa(sequences)
        pair_score = nw_score(sequences[0], sequences[1])
        assert msa.sum_of_pairs_score() == pair_score

    def test_needs_two_sequences(self):
        with pytest.raises(ValueError):
            star_msa([Sequence("A", "ACD")])

    def test_related_family_aligns_well(self):
        msa = star_msa(family(5, rate=0.1))
        identities = [
            msa.column_identity(i) for i in range(msa.column_count)
        ]
        mean_identity = sum(identities) / len(identities)
        assert mean_identity > 0.6

    def test_consensus_length(self):
        msa = star_msa(family(6))
        assert len(msa.consensus()) == msa.column_count

    def test_center_has_high_similarity(self):
        sequences = family(7)
        msa = star_msa(sequences)
        assert 0 <= msa.center_index < len(sequences)


class TestMultipleAlignmentType:
    def test_unequal_rows_rejected(self):
        with pytest.raises(ValueError):
            MultipleAlignment(("a", "b"), ("AC-", "AC"), 0)

    def test_identifier_count_checked(self):
        with pytest.raises(ValueError):
            MultipleAlignment(("a",), ("AC", "AC"), 0)

    def test_column_access(self):
        msa = MultipleAlignment(("a", "b"), ("AC-", "A-D"), 0)
        assert msa.column(0) == "AA"
        assert msa.column(1) == "C-"

    def test_pretty_contains_ids(self):
        msa = MultipleAlignment(("seq1", "seq2"), ("ACD", "ACD"), 0)
        assert "seq1" in msa.pretty()


@settings(max_examples=25, deadline=None)
@given(a=proteins, b=proteins, c=proteins)
def test_msa_rows_always_strip_to_inputs(a, b, c):
    sequences = [Sequence("A", a), Sequence("B", b), Sequence("C", c)]
    msa = star_msa(sequences)
    for sequence, row in zip(sequences, msa.rows):
        assert row.replace("-", "") == sequence.text
    assert len({len(row) for row in msa.rows}) == 1


@settings(max_examples=20, deadline=None)
@given(a=proteins, b=proteins)
def test_two_sequence_msa_matches_pairwise_score(a, b):
    msa = star_msa([Sequence("A", a), Sequence("B", b)])
    assert msa.sum_of_pairs_score() == nw_score(a, b)


class TestMsaKernel:
    def test_scores_match_reference(self, tiny_database):
        from repro.kernels.msa_kernel import MsaKernel
        from repro.bio.queries import default_query

        center = default_query().subsequence(0, 80)
        run = MsaKernel().run(center, tiny_database, record=True)
        assert run.scores
        for sid, score in run.scores.items():
            assert score == nw_score(center, tiny_database.get(sid))
        run.trace.validate()

    def test_branchy_dp_character(self, tiny_database):
        from repro.kernels.msa_kernel import MsaKernel
        from repro.bio.queries import default_query

        center = default_query().subsequence(0, 80)
        run = MsaKernel().run(center, tiny_database, record=True,
                              limit=40_000)
        assert run.mix.control_fraction() > 0.12
        assert run.mix.load_fraction() > 0.15
