"""Tests for ``repro.store``: artifact store + packed databases.

Four layers:

* the packed columnar format — content round-trip, shard windows,
  read-only surface, corruption detection;
* digest compatibility — a packed snapshot of config C produces the
  same cache keys as C itself (the property that lets materialized and
  mmap replicas share every cache entry);
* byte-identity — search-shard scans over the packed database equal
  the in-memory path for all three algorithms, with and without the
  artifact store engaged;
* the artifact store — round-trip, concurrent-writer atomicity,
  corrupt-object-as-miss semantics, and the eviction policy shared
  with the result cache through :class:`ContentStore`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading

import numpy as np
import pytest

from repro.align.batch import SearchParams
from repro.bio.synthetic import SyntheticDatabaseConfig, generate_database
from repro.runtime.cache import ResultCache
from repro.runtime.keys import search_shard_key
from repro.runtime.tasks import execute_search_shard
from repro.store.artifacts import (
    ArtifactStore,
    artifact_key,
    handle_cache_stats,
    reset_handle_cache,
)
from repro.store.base import ContentStore
from repro.store.packdb import (
    PackedDatabaseError,
    PackedDatabaseRef,
    open_packed,
    pack_database,
    packed_source_key,
    reset_packed_memos,
    verify_packed,
)

DB = SyntheticDatabaseConfig(
    sequence_count=12,
    family_count=2,
    family_size=3,
    seed=7,
    mean_length=90.0,
)

ALGORITHMS = ("ssearch", "fasta", "blast")


@pytest.fixture()
def packed(tmp_path):
    database = generate_database(DB)
    path = pack_database(database, tmp_path / "db", source_config=DB)
    yield path
    reset_packed_memos()


# -- packed columnar format --------------------------------------------------


class TestPackedDatabase:
    def test_content_round_trips_exactly(self, packed):
        original = generate_database(DB)
        snapshot = open_packed(packed)
        assert snapshot.name == original.name
        assert len(snapshot) == len(original)
        assert snapshot.residue_count == original.residue_count
        for theirs, ours in zip(original, snapshot):
            assert ours.identifier == theirs.identifier
            assert ours.text == theirs.text
            assert ours.codes == theirs.codes
            assert ours.description == theirs.description
        assert snapshot.stats() == original.stats()

    def test_shard_windows_match_generated(self, packed):
        original = generate_database(DB)
        snapshot = open_packed(packed)
        assert list(snapshot.shard_bounds(3)) == list(
            original.shard_bounds(3)
        )
        for index in range(3):
            theirs = [s.identifier for s in original.shard(index, 3)]
            ours = [s.identifier for s in snapshot.shard(index, 3)]
            assert ours == theirs
        assert [s.text for s in snapshot.slice(5)] == [
            s.text for s in original.slice(5)
        ]

    def test_id_lookup_and_membership(self, packed):
        original = generate_database(DB)
        snapshot = open_packed(packed)
        identifier = original[3].identifier
        assert identifier in snapshot
        assert snapshot.get(identifier).text == original[3].text
        assert snapshot.get("no-such-id") is None

    def test_snapshots_are_read_only(self, packed):
        snapshot = open_packed(packed)
        with pytest.raises(TypeError):
            snapshot.add(generate_database(DB)[0])

    def test_pack_refuses_overwrite_unless_asked(self, tmp_path):
        database = generate_database(DB)
        target = tmp_path / "db"
        pack_database(database, target, source_config=DB)
        with pytest.raises(FileExistsError):
            pack_database(database, target, source_config=DB)
        pack_database(database, target, source_config=DB, overwrite=True)
        reset_packed_memos()
        assert verify_packed(target)["sequence_count"] == len(database)

    def test_verify_detects_column_corruption(self, packed):
        verify_packed(packed)  # clean snapshot passes
        column = packed / "residues.npy"
        blob = bytearray(column.read_bytes())
        blob[-1] ^= 0xFF
        column.write_bytes(bytes(blob))
        with pytest.raises(PackedDatabaseError, match="digest mismatch"):
            verify_packed(packed)

    def test_open_rejects_bad_header_and_version(self, tmp_path, packed):
        with pytest.raises(PackedDatabaseError, match="no readable"):
            open_packed(tmp_path / "missing")
        header_path = packed / "header.json"
        header = json.loads(header_path.read_text())
        header["format_version"] = 99
        header_path.write_text(json.dumps(header))
        reset_packed_memos()
        with pytest.raises(PackedDatabaseError, match="unsupported"):
            open_packed(packed)


# -- digest compatibility ----------------------------------------------------


class TestDigestCompatibility:
    def test_source_key_is_the_config_astuple(self, packed):
        key = packed_source_key(PackedDatabaseRef(str(packed)))
        assert key == dataclasses.astuple(DB)

    def test_search_shard_keys_identical(self, packed):
        params = SearchParams(algorithm="blast", best_count=50)
        text = generate_database(DB)[0].text[:40]
        via_config = search_shard_key(params.key(), text, DB, 0, 2)
        via_ref = search_shard_key(
            params.key(), text, PackedDatabaseRef(str(packed)), 0, 2
        )
        assert via_config == via_ref

    def test_unpinned_pack_gets_content_key(self, tmp_path):
        database = generate_database(DB)
        path = pack_database(database, tmp_path / "anon")
        key = packed_source_key(PackedDatabaseRef(str(path)))
        reset_packed_memos()
        assert key != dataclasses.astuple(DB)
        assert key[0] == "packed"


# -- byte-identity of scans --------------------------------------------------


class TestScanByteIdentity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_packed_scan_equals_in_memory(self, packed, algorithm):
        params = SearchParams(algorithm=algorithm, best_count=25)
        queries = (("q0", generate_database(DB)[0].text[:40]),)
        for shard_index in range(2):
            in_memory = execute_search_shard(
                (params.key(), queries, DB, shard_index, 2)
            )
            mapped = execute_search_shard((
                params.key(), queries,
                PackedDatabaseRef(str(packed)), shard_index, 2,
            ))
            assert json.dumps(in_memory, sort_keys=True) == json.dumps(
                mapped, sort_keys=True
            )

    def test_store_backed_blast_scan_identical(self, packed, tmp_path):
        reset_handle_cache()
        params = SearchParams(algorithm="blast", best_count=25)
        queries = (("q0", generate_database(DB)[1].text[:36]),)
        plain = execute_search_shard((params.key(), queries, DB, 0, 2))
        store_root = str(tmp_path / "store")
        for _ in range(2):  # second pass reads the persisted lookup
            backed = execute_search_shard((
                params.key(), queries,
                PackedDatabaseRef(str(packed)), 0, 2, store_root,
            ))
            assert json.dumps(plain, sort_keys=True) == json.dumps(
                backed, sort_keys=True
            )


# -- artifact store ----------------------------------------------------------


def sample_arrays() -> dict[str, np.ndarray]:
    return {
        "words": np.arange(32, dtype=np.int64),
        "weights": np.linspace(0.0, 1.0, 32),
    }


class TestArtifactStore:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = artifact_key("test", ("round-trip", 1))
        store.store_arrays(digest, sample_arrays())
        loaded = store.load_arrays(digest)
        assert set(loaded) == {"words", "weights"}
        for name, array in sample_arrays().items():
            np.testing.assert_array_equal(loaded[name], array)
        assert store.stats()["artifacts"] == 1

    def test_keys_are_code_salted(self):
        assert artifact_key("k", (1,)) != artifact_key("k", (2,))
        assert artifact_key("a", (1,)) != artifact_key("b", (1,))

    def test_missing_artifact_is_a_miss(self, tmp_path):
        reset_handle_cache()
        store = ArtifactStore(tmp_path)
        assert store.load_arrays(artifact_key("test", "absent")) is None
        assert handle_cache_stats()["misses"] == 1

    def test_garbage_object_is_a_miss_not_a_crash(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = artifact_key("test", "garbage")
        path = store.artifact_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"this is not a zip archive")
        assert store.load_arrays(digest) is None

    def test_checksum_mismatch_deletes_and_rebuilds(self, tmp_path):
        reset_handle_cache()
        store = ArtifactStore(tmp_path)
        digest = artifact_key("test", "tampered")
        store.store_arrays(digest, sample_arrays())
        path = store.artifact_path(digest)
        # A well-formed bundle whose payload no longer matches its
        # embedded checksum: decodes fine, must still load as a miss.
        tampered = sample_arrays()
        with np.load(path) as archive:
            checksum = archive["__checksum__"]
        tampered["words"] = tampered["words"] + 1
        np.savez(path.with_suffix(""), __checksum__=checksum, **tampered)
        assert store.load_arrays(digest) is None
        assert handle_cache_stats()["corrupt"] == 1
        assert not path.exists()  # bad object removed, not left to loop
        store.store_arrays(digest, sample_arrays())  # caller rebuilds
        assert store.load_arrays(digest) is not None

    def test_concurrent_writers_never_tear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = artifact_key("test", "contended")
        barrier = threading.Barrier(8)
        failures: list[Exception] = []

        def write():
            try:
                barrier.wait()
                store.store_arrays(digest, sample_arrays())
                loaded = store.load_arrays(digest)
                if loaded is not None:
                    np.testing.assert_array_equal(
                        loaded["words"], sample_arrays()["words"]
                    )
            except Exception as error:  # pragma: no cover - failure path
                failures.append(error)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        loaded = store.load_arrays(digest)
        np.testing.assert_array_equal(
            loaded["words"], sample_arrays()["words"]
        )
        leftovers = [
            path for path in store.objects.rglob("*")
            if path.is_file() and path.name.startswith(".")
        ]
        assert leftovers == []


# -- shared eviction policy --------------------------------------------------


class TestSharedEviction:
    def test_result_cache_and_artifact_store_evict_identically(
        self, tmp_path
    ):
        """Both stores inherit ContentStore.evict: oldest-mtime first."""
        cache = ResultCache(tmp_path / "cache")
        store = ArtifactStore(tmp_path / "store")
        assert isinstance(cache, ContentStore)
        assert isinstance(store, ContentStore)
        scan = {"payload": "x" * 64}
        survivors_expected = []
        for index in range(4):
            digest = f"{index:02d}" + "ab" * 15
            cache.store_search(digest, scan)
            store.store_arrays(digest, sample_arrays())
            for path in list(cache.object_files()) + list(
                store.object_files()
            ):
                if f"/{digest[:2]}/" in str(path):
                    os.utime(path, (index, index))
            if index >= 2:
                survivors_expected.append(digest)

        def survivors(owner: ContentStore) -> list[str]:
            return sorted(
                path.name.split(".")[0]
                for path in owner.object_files()
            )

        for owner in (cache, store):
            sizes = sorted(
                path.stat().st_size for path in owner.object_files()
            )
            budget = sizes[-1] + sizes[-2]  # room for exactly two
            removed = owner.evict(budget)
            assert removed.entries == 2
            assert survivors(owner) == sorted(survivors_expected)

    def test_evicted_entry_is_an_ordinary_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = artifact_key("test", "evicted")
        store.store_arrays(digest, sample_arrays())
        store.evict(0)
        assert store.load_arrays(digest) is None
        store.store_arrays(digest, sample_arrays())
        assert store.load_arrays(digest) is not None
