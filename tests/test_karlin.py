"""Unit tests for Karlin-Altschul statistics."""

import math

import pytest

from repro.align.blast.karlin import (
    InvalidScoringSystemError,
    estimate_parameters,
    expected_score,
    relative_entropy,
    solve_lambda,
)
from repro.bio.alphabet import PROTEIN
from repro.bio.matrices import BLOSUM50, BLOSUM62, PAM250, ScoringMatrix


class TestLambda:
    def test_expected_score_negative(self):
        # Required for local-alignment statistics to exist.
        assert expected_score(BLOSUM62) < 0
        assert expected_score(BLOSUM50) < 0
        assert expected_score(PAM250) < 0

    def test_lambda_positive(self):
        assert solve_lambda(BLOSUM62) > 0

    def test_blosum62_lambda_near_published(self):
        # Published ungapped lambda for BLOSUM62 is ~0.318 (natural log
        # units, Robinson frequencies); composition differences allow
        # some slack.
        lam = solve_lambda(BLOSUM62)
        assert 0.25 < lam < 0.40

    def test_lambda_solves_restriction(self):
        from repro.align.blast.karlin import _background_frequencies, _restriction_sum

        lam = solve_lambda(BLOSUM62)
        freqs = _background_frequencies(BLOSUM62)
        assert _restriction_sum(BLOSUM62, freqs, lam) == pytest.approx(1.0, abs=1e-6)

    def test_all_positive_matrix_rejected(self):
        rows = tuple(tuple(1 for _ in range(23)) for _ in range(23))
        bad = ScoringMatrix(name="allpos", alphabet=PROTEIN, rows=rows)
        with pytest.raises(InvalidScoringSystemError):
            solve_lambda(bad)

    def test_relative_entropy_positive(self):
        lam = solve_lambda(BLOSUM62)
        assert relative_entropy(BLOSUM62, lam) > 0


class TestParameters:
    def test_k_in_sane_range(self):
        params = estimate_parameters(BLOSUM62)
        assert 1e-3 <= params.k <= 0.5

    def test_bit_score_monotone_in_raw_score(self):
        params = estimate_parameters(BLOSUM62)
        assert params.bit_score(100) > params.bit_score(50)

    def test_evalue_decreases_with_score(self):
        params = estimate_parameters(BLOSUM62)
        high = params.evalue(200, 200, 100_000)
        low = params.evalue(50, 200, 100_000)
        assert high < low

    def test_evalue_scales_with_search_space(self):
        params = estimate_parameters(BLOSUM62)
        small = params.evalue(100, 200, 10_000)
        large = params.evalue(100, 200, 1_000_000)
        assert large == pytest.approx(small * 100)

    def test_evalue_formula(self):
        params = estimate_parameters(BLOSUM62)
        expected = params.k * 10 * 20 * math.exp(-params.lam * 30)
        assert params.evalue(30, 10, 20) == pytest.approx(expected)
