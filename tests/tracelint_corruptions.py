"""Shared corruption operators for the TraceLint tests.

``build_sample_trace`` emits a small but representative trace through
the real :class:`~repro.isa.builder.TraceBuilder` (every opcode class,
scalar and vector memory, sub-word accesses, loop branches).
``CORRUPTIONS`` maps a corruption-class name to ``(mutator, rule)``:
the mutator edits the trace's columns in place and the rule is the
TraceLint rule that must flag the damage.  Both ``test_tracelint`` and
``test_tracelint_fuzz`` drive the same table, so a new rule only needs
one new entry here.
"""

from __future__ import annotations

import numpy as np

from repro.isa.builder import TraceBuilder
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace
from repro.uarch.pipeline.decode import decode_trace
from repro.verify.tracelint import ADDRESS_SPACE_LIMIT


def build_sample_trace(iterations: int = 24) -> Trace:
    """A small well-formed trace covering every rule's subject matter."""
    builder = TraceBuilder("sample")
    base = builder.alloc("array", 8192)
    for i in range(iterations):
        index = builder.ialu("index")
        loaded = builder.iload(
            "load8", base + 8 * i, sources=(index,), size=8
        )
        vector = builder.vload(
            "vload", base + 16 * i, sources=(index,), size=16
        )
        summed = builder.vsimple("vadd", sources=(vector,))
        builder.vstore("vstore", base + 16 * i, sources=(summed,), size=16)
        builder.istore(
            "store8", base + 8 * i, sources=(loaded, index), size=8
        )
        builder.ctrl(
            "loop", taken=i < iterations - 1, sources=(index,), backward=True
        )
        builder.fpu("fma", sources=(loaded,))
        builder.iload("load2", base + 2 * i, sources=(), size=2)
        builder.iload("load1", base + i, sources=(), size=1)
    return builder.build()


def fresh_copy(trace: Trace) -> Trace:
    """An independent trace whose columns can be mutated freely."""
    return Trace(
        trace.name,
        columns={name: column.copy() for name, column in trace.columns.items()},
    )


def _first_of(trace: Trace, op: OpClass) -> int:
    return int(np.flatnonzero(trace.columns["ops"] == int(op))[0])


def _after(trace: Trace, op: OpClass, index: int) -> int:
    positions = np.flatnonzero(trace.columns["ops"] == int(op))
    return int(positions[positions > index][0])


def _unknown_opcode(trace: Trace) -> None:
    trace.columns["ops"][5] = len(OpClass) + 7


def _forward_dependency(trace: Trace) -> None:
    trace.columns["sources"][10, 0] = len(trace) - 1


def _destless_producer(trace: Trace) -> None:
    store = _first_of(trace, OpClass.ISTORE)
    consumer = _after(trace, OpClass.FPU, store)
    trace.columns["sources"][consumer, 0] = store


def _padding_below_minus_one(trace: Trace) -> None:
    trace.columns["sources"][4, 0] = -7


def _interior_padding(trace: Trace) -> None:
    producer = _first_of(trace, OpClass.IALU)
    trace.columns["sources"][20, 0] = -1
    trace.columns["sources"][20, 1] = producer


def _address_on_alu(trace: Trace) -> None:
    index = _first_of(trace, OpClass.IALU)
    trace.columns["addresses"][index] = 0x1000_0000


def _size_on_alu(trace: Trace) -> None:
    index = _first_of(trace, OpClass.IALU)
    trace.columns["sizes"][index] = 8


def _address_below_data_segment(trace: Trace) -> None:
    index = _first_of(trace, OpClass.ILOAD)
    trace.columns["addresses"][index] = 0x10


def _address_past_limit(trace: Trace) -> None:
    index = _first_of(trace, OpClass.ILOAD)
    trace.columns["addresses"][index] = ADDRESS_SPACE_LIMIT


def _scalar_size_illegal(trace: Trace) -> None:
    index = _first_of(trace, OpClass.ILOAD)
    trace.columns["sizes"][index] = 3


def _vector_size_illegal(trace: Trace) -> None:
    index = _first_of(trace, OpClass.VLOAD)
    trace.columns["sizes"][index] = 24


def _misaligned_subword(trace: Trace) -> None:
    sizes = trace.columns["sizes"]
    ops = trace.columns["ops"]
    index = int(np.flatnonzero((ops == int(OpClass.ILOAD)) & (sizes == 2))[0])
    trace.columns["addresses"][index] += 1


def _taken_on_alu(trace: Trace) -> None:
    index = _first_of(trace, OpClass.IALU)
    trace.columns["takens"][index] = 1


def _taken_out_of_range(trace: Trace) -> None:
    index = _first_of(trace, OpClass.CTRL)
    trace.columns["takens"][index] = 2


def _target_on_alu(trace: Trace) -> None:
    index = _first_of(trace, OpClass.IALU)
    trace.columns["targets"][index] = 0x2_0000


def _nonpositive_branch_target(trace: Trace) -> None:
    index = _first_of(trace, OpClass.CTRL)
    trace.columns["targets"][index] = 0


def _dest_on_store(trace: Trace) -> None:
    index = _first_of(trace, OpClass.ISTORE)
    trace.columns["dests"][index] = 1


def _missing_dest(trace: Trace) -> None:
    index = _first_of(trace, OpClass.IALU)
    trace.columns["dests"][index] = 0


def _dtype_drift(trace: Trace) -> None:
    trace.columns["sizes"] = trace.columns["sizes"].astype(np.int64)


def _length_mismatch(trace: Trace) -> None:
    trace.columns["pcs"] = trace.columns["pcs"][:-1]


def _missing_column(trace: Trace) -> None:
    trace.columns = {
        name: column
        for name, column in trace.columns.items()
        if name != "targets"
    }


def _stale_decode_plane(trace: Trace) -> None:
    decode_trace(trace)  # cache the plane, then invalidate it
    index = _first_of(trace, OpClass.IALU)
    trace.columns["ops"][index] = int(OpClass.VSIMPLE)


#: corruption-class name -> (mutator, rule that must flag it).
CORRUPTIONS = {
    "unknown-opcode": (_unknown_opcode, "TR001"),
    "forward-dependency": (_forward_dependency, "TR002"),
    "destless-producer": (_destless_producer, "TR002"),
    "padding-below-minus-one": (_padding_below_minus_one, "TR003"),
    "interior-padding": (_interior_padding, "TR003"),
    "address-on-alu": (_address_on_alu, "TR004"),
    "size-on-alu": (_size_on_alu, "TR004"),
    "address-below-data-segment": (_address_below_data_segment, "TR004"),
    "address-past-limit": (_address_past_limit, "TR004"),
    "scalar-size-illegal": (_scalar_size_illegal, "TR004"),
    "vector-size-illegal": (_vector_size_illegal, "TR004"),
    "misaligned-subword": (_misaligned_subword, "TR004"),
    "taken-on-alu": (_taken_on_alu, "TR005"),
    "taken-out-of-range": (_taken_out_of_range, "TR005"),
    "target-on-alu": (_target_on_alu, "TR005"),
    "nonpositive-branch-target": (_nonpositive_branch_target, "TR005"),
    "dest-on-store": (_dest_on_store, "TR006"),
    "missing-dest": (_missing_dest, "TR006"),
    "dtype-drift": (_dtype_drift, "TR007"),
    "length-mismatch": (_length_mismatch, "TR007"),
    "missing-column": (_missing_column, "TR007"),
    "stale-decode-plane": (_stale_decode_plane, "TR010"),
}
