"""Unit tests for trauma taxonomy and accounting."""

from repro.isa.opcodes import FunctionalUnit
from repro.uarch.traumas import (
    FIG2_ORDER,
    Trauma,
    TraumaAccount,
    diq_trauma,
    ful_trauma,
    rg_trauma,
)


class TestTaxonomy:
    def test_class_count_matches_figure(self):
        # The paper groups traumas into 56 classes (incl. a catch-all).
        assert len(FIG2_ORDER) == 56

    def test_table7_names_present(self):
        names = {trauma.value for trauma in Trauma}
        for expected in (
            "if_nfa", "if_pred", "if_full", "mm_dl2", "mm_dl1",
            "rg_fix", "rg_mem", "rg_vi", "rg_vper", "st_data",
        ):
            assert expected in names

    def test_unit_mappings(self):
        assert rg_trauma(FunctionalUnit.FX) == Trauma.RG_FIX
        assert rg_trauma(FunctionalUnit.LDST) == Trauma.RG_MEM
        assert rg_trauma(FunctionalUnit.VI) == Trauma.RG_VI
        assert rg_trauma(FunctionalUnit.VPER) == Trauma.RG_VPER
        assert ful_trauma(FunctionalUnit.VI) == Trauma.FUL_VI
        assert diq_trauma(FunctionalUnit.LDST) == Trauma.DIQ_MEM

    def test_every_unit_mapped(self):
        for unit in FunctionalUnit:
            assert rg_trauma(unit) in Trauma
            assert ful_trauma(unit) in Trauma
            assert diq_trauma(unit) in Trauma


class TestAccount:
    def test_charge_and_total(self):
        account = TraumaAccount()
        account.charge(Trauma.IF_PRED)
        account.charge(Trauma.IF_PRED, 4)
        account.charge(Trauma.RG_FIX, 2)
        assert account.total() == 7
        assert account.cycles[Trauma.IF_PRED] == 5

    def test_top(self):
        account = TraumaAccount()
        account.charge(Trauma.RG_VI, 10)
        account.charge(Trauma.MM_DL2, 30)
        account.charge(Trauma.IF_PRED, 20)
        top = account.top(2)
        assert top == [(Trauma.MM_DL2, 30), (Trauma.IF_PRED, 20)]

    def test_histogram_includes_zeros_in_order(self):
        account = TraumaAccount()
        account.charge(Trauma.RG_FIX, 1)
        histogram = account.as_histogram()
        assert list(histogram) == [trauma.value for trauma in FIG2_ORDER]
        assert histogram["rg_fix"] == 1
        assert histogram["st_data"] == 0
