"""Unit and property tests for global alignment."""

import random

from hypothesis import given, settings, strategies as st

from repro.align.needleman_wunsch import needleman_wunsch, nw_score
from repro.align.smith_waterman import sw_score
from repro.align.types import GapPenalties
from repro.bio.matrices import BLOSUM62
from repro.bio.synthetic import random_protein

proteins = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=40)


class TestGlobalAlignment:
    def test_identical_sequences(self):
        text = "ACDEFGHIKLMNPQ"
        expected = sum(BLOSUM62.score_symbols(c, c) for c in text)
        assert nw_score(text, text) == expected

    def test_single_insertion_costs_one_gap(self):
        a = "ACDEFGHIKL"
        b = "ACDEFWGHIKL"
        gaps = GapPenalties()
        assert nw_score(a, b) == nw_score(a, a) - gaps.cost(1)

    def test_all_gap_alignment(self):
        gaps = GapPenalties()
        assert nw_score("", "ACDE") == -gaps.cost(4)
        assert nw_score("ACDE", "") == -gaps.cost(4)

    def test_traceback_spans_both_sequences(self):
        rng = random.Random(1)
        a = random_protein(30, rng)
        b = random_protein(25, rng)
        result = needleman_wunsch(a, b)
        assert result.aligned_query.replace("-", "") == a
        assert result.aligned_subject.replace("-", "") == b


@settings(max_examples=50, deadline=None)
@given(a=proteins, b=proteins)
def test_traceback_agrees_with_score(a, b):
    assert needleman_wunsch(a, b).score == nw_score(a, b)


@settings(max_examples=40, deadline=None)
@given(a=proteins, b=proteins)
def test_global_score_symmetric(a, b):
    assert nw_score(a, b) == nw_score(b, a)


@settings(max_examples=40, deadline=None)
@given(a=proteins, b=proteins)
def test_local_dominates_global(a, b):
    # A local alignment can only drop unfavourable prefixes/suffixes.
    assert sw_score(a, b) >= nw_score(a, b)


@settings(max_examples=40, deadline=None)
@given(a=proteins, b=proteins)
def test_traceback_rebuilds_global_score(a, b):
    result = needleman_wunsch(a, b)
    gaps = GapPenalties()
    score = 0
    column = 0
    pairs = list(zip(result.aligned_query, result.aligned_subject))
    while column < len(pairs):
        qa, sb = pairs[column]
        if qa == "-" or sb == "-":
            side = 0 if qa == "-" else 1
            length = 0
            while column < len(pairs) and pairs[column][side] == "-":
                length += 1
                column += 1
            score -= gaps.cost(length)
        else:
            score += BLOSUM62.score_symbols(qa, sb)
            column += 1
    assert score == result.score
