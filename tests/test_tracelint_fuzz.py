"""Property-based hardening of TraceLint (pairs with test_kernel_engine_fuzz).

Two properties over randomized corruption:

* every operator in the corruption catalogue is flagged under its
  owning rule regardless of where in the trace it strikes, and
* *any* single-element column mutation — even one that produces another
  structurally legal trace — is caught by the content-digest rule
  (TR008), which is what the strict cache hooks rely on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.runtime.keys import compute_trace_digest
from repro.verify import lint_trace
from tracelint_corruptions import CORRUPTIONS, build_sample_trace, fresh_copy

BASE_TRACE = build_sample_trace()
BASE_DIGEST = compute_trace_digest(BASE_TRACE)

#: Single-element mutable columns and a value delta domain for each.
FLIPPABLE = {
    "ops": (0, 10),
    "pcs": (1, 1 << 20),
    "dests": (0, 1),
    "addresses": (1, 1 << 40),
    "sizes": (1, 64),
    "takens": (0, 1),
    "targets": (0, 1 << 20),
}


@settings(max_examples=60, deadline=None)
@given(name=st.sampled_from(sorted(CORRUPTIONS)))
def test_every_corruption_class_is_flagged(name):
    mutate, rule = CORRUPTIONS[name]
    corrupted = fresh_copy(BASE_TRACE)
    mutate(corrupted)
    report = lint_trace(corrupted, include_roundtrip=False)
    assert not report.ok, f"{name} went undetected"
    rules = {violation.rule for violation in report.violations}
    assert rule in rules, f"{name}: expected {rule}, got {sorted(rules)}"


@settings(max_examples=80, deadline=None)
@given(
    column=st.sampled_from(sorted(FLIPPABLE)),
    position=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    value=st.integers(min_value=0, max_value=1 << 40),
)
def test_any_column_flip_breaks_the_digest(column, position, value):
    low, high = FLIPPABLE[column]
    corrupted = fresh_copy(BASE_TRACE)
    target = corrupted.columns[column]
    index = int(position * len(target))
    new_value = low + value % (high - low + 1)
    assume(int(target[index]) != new_value)
    target[index] = new_value
    report = lint_trace(
        corrupted, expected_digest=BASE_DIGEST, include_roundtrip=False
    )
    assert not report.ok, (
        f"flipping {column}[{index}] to {new_value} went undetected"
    )


@settings(max_examples=40, deadline=None)
@given(
    row=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    slot=st.integers(min_value=0, max_value=2),
    value=st.integers(min_value=-1, max_value=500),
)
def test_any_source_flip_breaks_the_digest(row, slot, value):
    corrupted = fresh_copy(BASE_TRACE)
    sources = corrupted.columns["sources"]
    index = int(row * sources.shape[0])
    assume(int(sources[index, slot]) != value)
    sources[index, slot] = value
    report = lint_trace(
        corrupted, expected_digest=BASE_DIGEST, include_roundtrip=False
    )
    assert not report.ok


@settings(max_examples=10, deadline=None)
@given(iterations=st.integers(min_value=0, max_value=40))
def test_builder_traces_always_lint_clean(iterations):
    trace = build_sample_trace(iterations)
    report = lint_trace(
        trace, expected_digest=compute_trace_digest(trace)
    )
    assert report.ok, report.format_table()
    assert np.array_equal(
        trace.columns["ops"], BASE_TRACE.columns["ops"][: len(trace)]
    ) or iterations > 24
