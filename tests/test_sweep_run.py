"""Integration tests for resumable sweep execution and reports.

The core guarantees under test:

* **resume** — interrupting a sweep mid-grid (``max_points``) loses no
  completed work; the re-run executes exactly the missing points, and
  the final manifest and report are byte-identical to an uninterrupted
  run's;
* **cache identity** — sweep points store results under the same
  content-addressed digests the ad-hoc figure drivers use, so a warm
  ``simulate_many`` over the same grid executes nothing;
* **durability** — a worker killed mid-point (fault injection) does
  not corrupt the campaign: retries complete it and the manifest is
  whole.
"""

from __future__ import annotations

import json

import pytest

import repro.__main__ as cli
from repro.runtime.engine import ExperimentRuntime
from repro.runtime.executor import KillFirstN
from repro.sweep import (
    SweepManifest,
    expand_spec,
    parse_spec,
    render_report,
    report_data,
    run_sweep,
    sweep_status,
)

SPEC_DATA = {
    "sweep": {"name": "grid", "description": "test grid"},
    "axes": {
        "width": ["4-way", "8-way"],
        "memory": ["me1", "meinf"],
    },
    "workloads": {"names": ["ssearch34"]},
    "report": {"metrics": ["ipc", "cycles"]},
}


@pytest.fixture()
def spec():
    return parse_spec(SPEC_DATA)


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.02")


class TestResume:
    def test_interrupt_resume_executes_only_missing_points(
        self, spec, tmp_path
    ):
        with ExperimentRuntime(cache_dir=str(tmp_path / "cache")) as runtime:
            first = run_sweep(spec, runtime, max_points=1)
            assert first.summary() == {
                "sweep": "grid",
                "spec_digest": spec.digest(),
                "points": 4,
                "executed": 1,
                "resumed": 0,
                "invalidated": 0,
                "remaining": 3,
                "complete": False,
            }
            second = run_sweep(spec, runtime)
            assert len(second.executed) == 3
            assert len(second.resumed) == 1
            assert second.complete
            # The resumed point is exactly the one the first run did.
            assert second.resumed == first.executed
            third = run_sweep(spec, runtime)
            assert third.executed == []
            assert len(third.resumed) == 4
            # Across all three runs every point simulated exactly once.
            assert runtime.metrics.counts()["sweep_executions"] == 4

    def test_warm_rerun_uses_manifest_not_cache(self, spec, tmp_path):
        cache = str(tmp_path / "cache")
        with ExperimentRuntime(cache_dir=cache) as runtime:
            run_sweep(spec, runtime)
        with ExperimentRuntime(cache_dir=cache) as runtime:
            rerun = run_sweep(spec, runtime)
            assert rerun.executed == []
            counts = runtime.metrics.counts()
            assert counts["sweep_executions"] == 0
            assert counts["simulate_executions"] == 0

    def test_stale_digest_invalidates_exactly_that_point(
        self, spec, tmp_path
    ):
        cache = str(tmp_path / "cache")
        state = tmp_path / "cache" / "sweeps"
        with ExperimentRuntime(cache_dir=cache) as runtime:
            run_sweep(spec, runtime)
        manifest = SweepManifest.open(state, spec)
        victim = expand_spec(spec)[2].point_id
        manifest.points[victim]["digest"] = "0" * 16
        manifest.save()
        with ExperimentRuntime(cache_dir=cache) as runtime:
            rerun = run_sweep(spec, runtime)
            assert rerun.invalidated == [victim]
            assert rerun.executed == [victim]
            assert len(rerun.resumed) == 3

    def test_report_byte_identical_after_interrupt_resume(
        self, spec, tmp_path
    ):
        interrupted_cache = str(tmp_path / "a")
        with ExperimentRuntime(cache_dir=interrupted_cache) as runtime:
            run_sweep(spec, runtime, max_points=2)
            run_sweep(spec, runtime)
        straight_cache = str(tmp_path / "b")
        with ExperimentRuntime(cache_dir=straight_cache) as runtime:
            run_sweep(spec, runtime)
        renders = []
        manifests = []
        for cache in (interrupted_cache, straight_cache):
            state = f"{cache}/sweeps"
            renders.append(
                render_report(report_data(spec, state), "json")
            )
            manifests.append(
                SweepManifest.open(state, spec).path.read_bytes()
            )
        assert renders[0] == renders[1]
        assert manifests[0] == manifests[1]

    def test_engine_switch_resume_is_byte_identical(self, spec, tmp_path):
        """Interrupt under the lockstep engine, resume under the scalar
        one: the final manifest and report must be byte-identical to a
        pure scalar run's (and vice versa), because per-point results
        and digests are engine-independent and the recorded ``engine``
        is the one of the run that finished the grid."""
        switched_cache = str(tmp_path / "a")
        with ExperimentRuntime(cache_dir=switched_cache) as runtime:
            run_sweep(spec, runtime, max_points=1, lockstep=True)
            run_sweep(spec, runtime, lockstep=False)
        straight_cache = str(tmp_path / "b")
        with ExperimentRuntime(cache_dir=straight_cache) as runtime:
            run_sweep(spec, runtime, lockstep=False)
        renders = []
        manifests = []
        for cache in (switched_cache, straight_cache):
            state = f"{cache}/sweeps"
            renders.append(
                render_report(report_data(spec, state), "json")
            )
            manifests.append(
                SweepManifest.open(state, spec).path.read_bytes()
            )
        assert renders[0] == renders[1]
        assert manifests[0] == manifests[1]
        assert SweepManifest.open(
            f"{switched_cache}/sweeps", spec
        ).engine == "scalar"

    def test_manifest_records_lockstep_engine(self, spec, tmp_path):
        cache = str(tmp_path / "cache")
        with ExperimentRuntime(cache_dir=cache) as runtime:
            run_sweep(spec, runtime)
        manifest = SweepManifest.open(f"{cache}/sweeps", spec)
        assert manifest.engine == "lockstep"
        assert json.loads(manifest.path.read_text())["engine"] == "lockstep"


class TestCacheIdentity:
    def test_sweep_results_hit_for_the_adhoc_driver_grid(
        self, spec, tmp_path
    ):
        from repro.uarch.config import ME1, MEINF, PROC_4WAY, PROC_8WAY
        from repro.workloads.suite import WorkloadSuite

        cache = str(tmp_path / "cache")
        with ExperimentRuntime(cache_dir=cache) as runtime:
            run = run_sweep(spec, runtime)
            by_id = {
                point_id: runtime.cache
                for point_id in run.executed
            }
            assert len(by_id) == 4
        # The ad-hoc construction over the same grid: every simulation
        # must resolve from the cache the sweep populated.
        with ExperimentRuntime(cache_dir=cache) as runtime:
            suite = WorkloadSuite()
            runtime.run_workloads(suite, ("ssearch34",))
            trace = suite.trace("ssearch34")
            requests = [
                (trace, width.with_memory(memory), False)
                for width in (PROC_4WAY, PROC_8WAY)
                for memory in (ME1, MEINF)
            ]
            results = runtime.simulate_many(requests)
            counts = runtime.metrics.counts()
            assert counts["simulate_executions"] == 0
            assert counts["trace_executions"] == 0
        # And the manifest metrics match the results bit-for-bit.
        manifest = SweepManifest.open(f"{cache}/sweeps", spec)
        expected = {
            ("4-way", "me1"): results[0],
            ("4-way", "meinf"): results[1],
            ("8-way", "me1"): results[2],
            ("8-way", "meinf"): results[3],
        }
        for (width, memory), result in expected.items():
            point = f"ssearch34|width={width}|memory={memory}"
            metrics = manifest.metrics(point)
            assert metrics["ipc"] == result.ipc
            assert metrics["cycles"] == result.cycles


class TestFaultTolerance:
    def test_killed_worker_does_not_lose_the_campaign(self, spec, tmp_path):
        runtime = ExperimentRuntime(
            jobs=2,
            cache_dir=str(tmp_path / "cache"),
            fault_hook=KillFirstN(1, "sweep_batch"),
        )
        try:
            run = run_sweep(spec, runtime)
            assert run.complete
            assert len(run.executed) == 4
            assert runtime.metrics.counts()["retries"] >= 1
        finally:
            runtime.close()
        # Everything landed durably despite the mid-batch kill.
        manifest = SweepManifest.open(tmp_path / "cache" / "sweeps", spec)
        assert len(manifest.points) == 4


class TestReportExtraction:
    def test_incomplete_points_render_as_missing(self, spec, tmp_path):
        cache = str(tmp_path / "cache")
        with ExperimentRuntime(cache_dir=cache) as runtime:
            run_sweep(spec, runtime, max_points=1)
        data = report_data(spec, f"{cache}/sweeps")
        assert len(data["missing"]) == 3
        assert not data["complete"]
        text = render_report(data, "text")
        assert "incomplete: 3 of 4" in text
        assert "-" in text
        html = render_report(data, "html")
        assert "incomplete: 3 of 4" in html

    def test_point_metrics_carry_cpi_stack_and_traumas(
        self, spec, tmp_path
    ):
        cache = str(tmp_path / "cache")
        with ExperimentRuntime(cache_dir=cache) as runtime:
            run_sweep(spec, runtime)
        data = report_data(spec, f"{cache}/sweeps")
        assert data["complete"]
        for point in data["points"]:
            metrics = point["metrics"]
            assert set(metrics["cpi_stack"]) == {
                "base", "branch", "memory", "dependence",
                "resource", "frontend", "other",
            }
            assert metrics["cycles"] > 0
            assert 0.0 < metrics["ipc"]

    def test_status_without_traces(self, spec, tmp_path):
        cache = str(tmp_path / "cache")
        with ExperimentRuntime(cache_dir=cache) as runtime:
            run_sweep(spec, runtime, max_points=2)
        status = sweep_status(spec, f"{cache}/sweeps")
        assert status["recorded"] == 2
        assert status["missing"] == 2
        assert not status["complete"]


class TestSweepCli:
    SPEC_TOML = (
        '[sweep]\nname = "cli-grid"\ntrace_budget = 3000\n'
        '[axes]\nwidth = ["4-way", "8-way"]\n'
        '[workloads]\nnames = ["ssearch34"]\n'
    )

    def test_run_interrupt_resume_report_cycle(self, tmp_path, capsys):
        spec_path = tmp_path / "grid.toml"
        spec_path.write_text(self.SPEC_TOML)
        cache = str(tmp_path / "cache")

        assert cli.main([
            "sweep", "run", str(spec_path), "--cache-dir", cache,
            "--max-points", "1",
        ]) == 0
        assert "1 remaining" in capsys.readouterr().out
        assert cli.main([
            "sweep", "status", str(spec_path), "--cache-dir", cache,
        ]) == 1  # incomplete
        assert "1 missing" in capsys.readouterr().out

        summary_path = tmp_path / "summary.json"
        assert cli.main([
            "sweep", "run", str(spec_path), "--cache-dir", cache,
            "--summary-json", str(summary_path),
        ]) == 0
        summary = json.loads(summary_path.read_text())
        assert summary["executed"] == 1
        assert summary["resumed"] == 1
        assert summary["complete"]

        assert cli.main([
            "sweep", "status", str(spec_path), "--cache-dir", cache,
        ]) == 0
        capsys.readouterr()

        # Fully warm: the manifest satisfies everything.
        assert cli.main([
            "sweep", "run", str(spec_path), "--cache-dir", cache,
            "--summary-json", str(summary_path),
        ]) == 0
        warm = json.loads(summary_path.read_text())
        assert warm["executed"] == 0
        assert warm["resumed"] == 2
        capsys.readouterr()

        assert cli.main([
            "sweep", "report", str(spec_path), "--cache-dir", cache,
        ]) == 0
        assert "cli-grid" in capsys.readouterr().out
        html_path = tmp_path / "report.html"
        assert cli.main([
            "sweep", "report", str(spec_path), "--cache-dir", cache,
            "--format", "html", "--out", str(html_path),
        ]) == 0
        assert html_path.read_text().startswith("<!DOCTYPE html>")

    def test_invalid_spec_exits_2_with_violations(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.toml"
        spec_path.write_text(
            '[sweep]\nname = "bad"\n[axes]\nfrequency = [1, 2]\n'
        )
        assert cli.main(["sweep", "run", str(spec_path)]) == 2
        assert "frequency" in capsys.readouterr().err

    def test_status_without_state_dir_is_an_error(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        spec_path = tmp_path / "grid.toml"
        spec_path.write_text(self.SPEC_TOML)
        assert cli.main(["sweep", "status", str(spec_path)]) == 2
        assert "state-dir" in capsys.readouterr().err
