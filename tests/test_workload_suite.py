"""Unit tests for the workload suite layer."""

from repro.workloads.spec import TABLE1_WORKLOADS, spec_of
from repro.workloads.suite import WorkloadSuite, scale_factor


class TestSpecs:
    def test_five_workloads(self):
        assert len(TABLE1_WORKLOADS) == 5

    def test_names_match_registry(self, small_suite):
        assert tuple(s.name for s in TABLE1_WORKLOADS) == small_suite.names

    def test_blast_parameters(self):
        assert "-G 10 -E 1" in spec_of("blast").input_parameters

    def test_fasta_style_parameters(self):
        assert "-s BL62" in spec_of("ssearch34").input_parameters

    def test_unknown_raises(self):
        import pytest

        with pytest.raises(KeyError):
            spec_of("hmmer")


class TestSuite:
    def test_database_lazy_and_cached(self, small_suite):
        assert small_suite.database is small_suite.database

    def test_traces_cached(self, small_suite):
        first = small_suite.trace("blast")
        second = small_suite.trace("blast")
        assert first is second

    def test_trace_budget_respected(self, small_suite):
        for name in small_suite.names:
            trace = small_suite.trace(name)
            assert len(trace) <= small_suite.trace_budget + 1

    def test_run_scores_present(self, small_suite):
        run = small_suite.run("blast")
        assert run.subjects_processed >= 1

    def test_count_mix_smaller_slice_fewer_instructions(self, small_suite):
        small = small_suite.count_mix("blast", residues=300)
        large = small_suite.count_mix("blast", residues=1500)
        assert small.total < large.total

    def test_paired_traces_same_subjects(self, small_suite):
        traces = small_suite.paired_traces(("sw_vmx128", "sw_vmx256"))
        assert set(traces) == {"sw_vmx128", "sw_vmx256"}
        # Same database slice: the 256-bit trace must be shorter.
        assert len(traces["sw_vmx256"]) < len(traces["sw_vmx128"])

    def test_scale_factor_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5

    def test_scale_factor_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        assert scale_factor() == 1.0
