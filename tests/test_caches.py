"""Unit and property tests for the cache models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.uarch.caches import Cache, MemoryHierarchy, ServiceLevel
from repro.uarch.config import KB, CacheConfig, MemoryConfig, ME1, MEINF, _memory


def small_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig(size, assoc, line, 1))


class TestCacheBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)

    def test_same_line_hits(self):
        cache = small_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x103F)
        assert not cache.access(0x1040)

    def test_lru_eviction(self):
        # 2-way set: fill both ways, touch first, insert third.
        cache = small_cache(size=128, assoc=2, line=64)  # one set
        cache.access(0x0000)
        cache.access(0x1000)
        cache.access(0x0000)          # 0x0000 now MRU
        cache.access(0x2000)          # evicts 0x1000
        assert cache.access(0x0000)
        assert not cache.access(0x1000)

    def test_direct_mapped_conflict(self):
        cache = Cache(CacheConfig(128, 1, 64, 1))  # 2 sets
        assert not cache.access(0x0000)
        assert not cache.access(0x0080)  # same set, conflicts
        assert not cache.access(0x0000)

    def test_ideal_cache_always_hits(self):
        cache = Cache(CacheConfig(None, 1, 128, 1))
        assert cache.access(0xDEADBEEF)
        assert cache.stats.misses == 0

    def test_probe_does_not_update(self):
        cache = small_cache()
        assert not cache.probe(0x1000)
        assert cache.stats.accesses == 0
        cache.access(0x1000)
        assert cache.probe(0x1000)

    def test_stats(self):
        cache = small_cache()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(100, 3, 64, 1)  # size not multiple of line*assoc
        with pytest.raises(ValueError):
            CacheConfig(-4, 1, 64, 1)


class TestHierarchy:
    def test_l1_hit_latency(self):
        hierarchy = MemoryHierarchy(ME1)
        hierarchy.data_access(0x1000)
        access = hierarchy.data_access(0x1000)
        assert access.level == ServiceLevel.L1
        assert access.latency == ME1.dl1.latency
        assert not access.tlb_missed

    def test_memory_miss_latency(self):
        hierarchy = MemoryHierarchy(ME1)
        access = hierarchy.data_access(0x1000)
        assert access.level == ServiceLevel.MEMORY
        assert access.tlb_missed  # first touch of the page
        assert access.latency == (
            ME1.dl1.latency + ME1.l2.latency + ME1.memory_latency
            + ME1.dtlb.miss_penalty
        )

    def test_l2_serves_after_l1_eviction(self):
        hierarchy = MemoryHierarchy(ME1)
        hierarchy.data_access(0x100000)
        # Evict line from 32K 2-way DL1 by touching conflicting lines.
        for way in range(4):
            hierarchy.data_access(0x100000 + (way + 1) * 32 * KB)
        access = hierarchy.data_access(0x100000)
        assert access.level == ServiceLevel.L2
        assert access.latency == ME1.dl1.latency + ME1.l2.latency

    def test_multi_line_access_worst_level(self):
        hierarchy = MemoryHierarchy(ME1)
        hierarchy.data_access(0x1000, size=4)
        # 32-byte access spanning into an untouched line.
        access = hierarchy.data_access(0x107F, size=32)
        assert access.level == ServiceLevel.MEMORY

    def test_ideal_hierarchy(self):
        hierarchy = MemoryHierarchy(MEINF)
        access = hierarchy.data_access(0x123456)
        assert access.level == ServiceLevel.L1
        assert access.latency == MEINF.dl1.latency
        assert not access.tlb_missed  # ideal configs never TLB-miss

    def test_instruction_fetch_path(self):
        hierarchy = MemoryHierarchy(ME1)
        access = hierarchy.inst_access(0x400)
        assert access.level == ServiceLevel.MEMORY
        access = hierarchy.inst_access(0x400)
        assert access.level == ServiceLevel.L1

    def test_tlb_hits_within_page(self):
        hierarchy = MemoryHierarchy(ME1)
        hierarchy.data_access(0x4000)
        access = hierarchy.data_access(0x4F00)  # same 4K page
        assert not access.tlb_missed

    def test_prefetch_hides_next_line(self):
        from dataclasses import replace

        prefetching = replace(ME1, sequential_prefetch=True)
        hierarchy = MemoryHierarchy(prefetching)
        hierarchy.data_access(0x20000)            # miss, prefetches next
        access = hierarchy.data_access(0x20080)   # next line: now resident
        assert access.level == ServiceLevel.L1


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(
    st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300
))
def test_repeat_of_recent_access_hits(addresses):
    cache = small_cache(size=4096, assoc=4, line=64)
    for address in addresses:
        cache.access(address)
        assert cache.access(address)  # immediate re-access always hits


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(
    st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200
))
def test_miss_count_bounded_by_distinct_lines(addresses):
    # A big-enough cache has only compulsory misses.
    cache = small_cache(size=64 * KB, assoc=4, line=64)
    for address in addresses:
        cache.access(address)
    distinct = len({a >> 6 for a in addresses})
    assert cache.stats.misses == distinct


@settings(max_examples=25, deadline=None)
@given(addresses=st.lists(
    st.integers(min_value=0, max_value=1 << 18), min_size=1, max_size=200
))
def test_lru_inclusion_with_higher_associativity(addresses):
    # Same set mapping, larger associativity: LRU's stack property
    # guarantees the bigger cache never misses more.
    small = small_cache(size=512, assoc=2, line=64)    # 4 sets
    large = small_cache(size=2048, assoc=8, line=64)   # 4 sets
    for address in addresses:
        small.access(address)
        large.access(address)
    assert small.stats.misses >= large.stats.misses
