"""Unit tests for the trace builder."""

import pytest

from repro.isa.builder import (
    DATA_BASE,
    TraceBudgetExceededError,
    TraceBuilder,
)
from repro.isa.opcodes import OpClass


class TestAllocation:
    def test_regions_do_not_overlap(self):
        builder = TraceBuilder("t")
        first = builder.alloc("a", 1000)
        second = builder.alloc("b", 1000)
        assert second >= first + 1000

    def test_alignment(self):
        builder = TraceBuilder("t")
        builder.alloc("a", 130)
        second = builder.alloc("b", 10, align=128)
        assert second % 128 == 0

    def test_starts_in_data_segment(self):
        builder = TraceBuilder("t")
        assert builder.alloc("a", 8) >= DATA_BASE

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TraceBuilder("t").alloc("a", -1)


class TestSitePcs:
    def test_same_site_same_pc(self):
        builder = TraceBuilder("t")
        assert builder.pc_of("loop.body") == builder.pc_of("loop.body")

    def test_different_sites_different_pcs(self):
        builder = TraceBuilder("t")
        assert builder.pc_of("a") != builder.pc_of("b")

    def test_branch_site_pc_stable_across_emissions(self):
        builder = TraceBuilder("t")
        builder.ctrl("br", taken=True)
        builder.ctrl("br", taken=False)
        trace = builder.build()
        assert trace[0].pc == trace[1].pc
        assert trace[0].taken != trace[1].taken


class TestEmission:
    def test_indices_are_sequential(self):
        builder = TraceBuilder("t")
        first = builder.ialu("a")
        second = builder.ialu("b", (first,))
        assert (first, second) == (0, 1)

    def test_dependencies_recorded(self):
        builder = TraceBuilder("t")
        value = builder.ialu("a")
        builder.istore("st", 0x1000, (value,), size=4)
        trace = builder.build()
        assert trace[1].sources == (value,)

    def test_memory_fields(self):
        builder = TraceBuilder("t")
        builder.vload("vl", 0x2000, size=32)
        instr = builder.build()[0]
        assert instr.address == 0x2000
        assert instr.size == 32
        assert instr.op == OpClass.VLOAD

    def test_backward_branch_target(self):
        builder = TraceBuilder("t")
        builder.ctrl("fwd", taken=True)
        builder.ctrl("bwd", taken=True, backward=True)
        trace = builder.build()
        assert trace[0].target > trace[0].pc
        assert trace[1].target < trace[1].pc

    def test_counts_match_emissions(self):
        builder = TraceBuilder("t")
        builder.ialu("a")
        builder.ialu("b")
        builder.vperm("c")
        mix = builder.mix()
        assert mix.count(OpClass.IALU) == 2
        assert mix.count(OpClass.VPERM) == 1

    def test_trace_is_wellformed(self):
        builder = TraceBuilder("t")
        a = builder.ialu("a")
        b = builder.iload("l", 0x100, (a,))
        builder.ctrl("c", taken=False, sources=(b,))
        builder.build().validate()


class TestCountOnlyMode:
    def test_counts_without_instructions(self):
        builder = TraceBuilder("t", record=False)
        builder.ialu("a")
        builder.ialu("b")
        assert builder.mix().total == 2
        assert builder.instructions == []

    def test_build_rejected(self):
        builder = TraceBuilder("t", record=False)
        with pytest.raises(ValueError):
            builder.build()


class TestBudget:
    def test_limit_raises(self):
        builder = TraceBuilder("t", limit=3)
        builder.ialu("a")
        builder.ialu("b")
        builder.ialu("c")
        with pytest.raises(TraceBudgetExceededError):
            builder.ialu("d")

    def test_limit_in_count_mode(self):
        builder = TraceBuilder("t", record=False, limit=2)
        builder.ialu("a")
        builder.ialu("b")
        with pytest.raises(TraceBudgetExceededError):
            builder.ialu("c")
