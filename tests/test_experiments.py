"""Integration tests: every experiment runs and the paper's qualitative
shape holds at test scale.

These use a scaled-down suite (shared session fixture), so assertions
are about *shape* — orderings, dominant classes, direction of effects —
not absolute values.
"""

import pytest

from repro.analysis.bp_study import fig11_predictor_accuracy
from repro.analysis.breakdown import fig1_breakdown
from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.queues import fig10_queue_occupancy
from repro.analysis.stalls import fig2_stalls
from repro.analysis.sweeps import (
    fig3_fig4_memory_sweep,
    fig5_cache_size,
    fig6_associativity,
    fig7_l1_latency,
    fig8_vmx_speedup,
    fig9_branch_prediction,
)
from repro.analysis.tables import table3_trace_sizes
from repro.uarch.config import KB


class TestRegistry:
    def test_all_fourteen_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3",
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "fig11",
        }

    def test_unknown_experiment(self, context):
        with pytest.raises(KeyError):
            run_experiment("fig99", context)

    def test_static_tables_render(self, context):
        for identifier in ("table1", "table2"):
            _, report = run_experiment(identifier, context)
            assert report


class TestTable3Shape:
    def test_ordering_matches_paper(self, context):
        result = table3_trace_sizes(context, residues=800)
        assert result.ordering_matches_paper()

    def test_simd_reduction(self, context):
        result = table3_trace_sizes(context, residues=800)
        relative = result.normalized()
        # vmx128 is several times smaller than scalar; vmx256 smaller still.
        assert relative["sw_vmx128"] < 0.5
        assert relative["sw_vmx256"] < relative["sw_vmx128"]
        # Heuristics are the smallest traces.
        assert relative["blast"] < relative["fasta34"] < relative["sw_vmx256"]


class TestFig1Shape:
    def test_control_fractions(self, context):
        result = fig1_breakdown(context)
        ssearch = result.fractions("ssearch34")
        vmx = result.fractions("sw_vmx128")
        blast = result.fractions("blast")
        assert ssearch["ctrl"] > 0.18
        assert blast["ctrl"] > 0.10
        assert vmx["ctrl"] < 0.05

    def test_alu_dominates_scalar_codes(self, context):
        result = fig1_breakdown(context)
        for name in ("ssearch34", "fasta34", "blast"):
            fractions = result.fractions(name)
            assert fractions["ialu"] == max(fractions.values()), name


class TestFig2Shape:
    def test_ssearch_dominated_by_branch_misprediction(self, context):
        result = fig2_stalls(context)
        top = result.top("ssearch34", 1)[0][0]
        assert top == "if_pred"

    def test_simd_dominated_by_vector_dependencies(self, context):
        result = fig2_stalls(context)
        for name in ("sw_vmx128", "sw_vmx256"):
            top_classes = [trauma for trauma, _ in result.top(name, 3)]
            assert "rg_vi" in top_classes or "rg_vper" in top_classes, name

    def test_blast_has_large_memory_component(self, context):
        result = fig2_stalls(context)
        histogram = result.histograms["blast"]
        memory = histogram["mm_dl1"] + histogram["mm_dl2"] + histogram["rg_mem"]
        assert memory > 0.15 * result.cycles["blast"]

    def test_vmx256_memory_stalls_grow_relative(self, context):
        result = fig2_stalls(context)

        def memory_share(name):
            histogram = result.histograms[name]
            memory = (histogram["mm_dl1"] + histogram["mm_dl2"]
                      + histogram["rg_mem"])
            total = sum(histogram.values()) or 1
            return memory / total

        assert memory_share("sw_vmx256") > memory_share("sw_vmx128")


class TestFig3Fig4Shape:
    def test_simd_ipc_exceeds_scalar(self, context):
        sweep = fig3_fig4_memory_sweep(context)
        vmx = sweep.ipc[("sw_vmx128", "4-way", "me1")]
        ssearch = sweep.ipc[("ssearch34", "4-way", "me1")]
        fasta = sweep.ipc[("fasta34", "4-way", "me1")]
        assert vmx > ssearch
        assert vmx > fasta

    def test_blast_most_memory_sensitive(self, context):
        sweep = fig3_fig4_memory_sweep(context)

        def sensitivity(app):
            small = sweep.cycles[(app, "4-way", "me1")]
            ideal = sweep.cycles[(app, "4-way", "meinf")]
            return (small - ideal) / small

        assert sensitivity("blast") > 0.3  # paper: 52% slowdown
        assert sensitivity("blast") > sensitivity("fasta34")
        assert sensitivity("blast") > sensitivity("ssearch34")

    def test_width_scaling_modest(self, context):
        sweep = fig3_fig4_memory_sweep(context)
        for app in context.suite.names:
            narrow = sweep.cycles[(app, "4-way", "me1")]
            wide = sweep.cycles[(app, "16-way", "me1")]
            # Wider machines help somewhat but never linearly.
            assert wide <= narrow
            assert wide > narrow / 3

    def test_ipc_cycles_consistent(self, context):
        sweep = fig3_fig4_memory_sweep(context)
        for (app, width, memory), cycles in sweep.cycles.items():
            ipc = sweep.ipc[(app, width, memory)]
            trace_len = len(context.suite.trace(app))
            assert ipc == pytest.approx(trace_len / cycles, rel=1e-6)


class TestFig5Fig6Shape:
    def test_blast_worst_miss_rate_at_32k(self, context):
        result = fig5_cache_size(context, sizes=(4 * KB, 32 * KB, 256 * KB),
                                 with_ipc=False)
        at_32k = {name: rates[1] for name, rates in result.miss_rate.items()}
        assert at_32k["blast"] == max(at_32k.values())

    def test_miss_rates_fall_with_size(self, context):
        result = fig5_cache_size(context, sizes=(2 * KB, 16 * KB, 128 * KB),
                                 with_ipc=False)
        for name, rates in result.miss_rate.items():
            assert rates[0] >= rates[-1], name

    def test_ipc_grows_with_cache_for_blast(self, context):
        result = fig5_cache_size(context, sizes=(2 * KB, 128 * KB))
        assert result.ipc["blast"][1] > result.ipc["blast"][0]

    def test_associativity_mainly_helps_blast_misses(self, context):
        result = fig6_associativity(context, with_ipc=False)
        blast_gain = (result.miss_rate["blast"][0]
                      - result.miss_rate["blast"][-1])
        ssearch_gain = abs(result.miss_rate["ssearch34"][0]
                           - result.miss_rate["ssearch34"][-1])
        assert blast_gain >= ssearch_gain


class TestFig7Fig8Shape:
    def test_simd_most_latency_sensitive(self, context):
        result = fig7_l1_latency(context, latencies=(1, 10))
        sensitivities = {
            name: result.sensitivity(name) for name in context.suite.names
        }
        # The widest SIMD code is hit hardest.
        assert max(sensitivities, key=sensitivities.get) == "sw_vmx256"

    def test_latency_monotone(self, context):
        result = fig7_l1_latency(context, latencies=(1, 4, 8))
        for name, values in result.ipc.items():
            assert values[0] >= values[-1], name

    def test_vmx256_faster_and_handicap_shrinks_gain(self, context):
        result = fig8_vmx_speedup(context)
        for index in range(len(result.widths)):
            fast = result.speedup["sw_vmx256"][index]
            slow = result.speedup["sw_vmx256+1lat"][index]
            assert fast > 1.0
            assert slow <= fast
            assert slow > 0.95  # still competitive (paper: +5%)


class TestFig9Shape:
    def test_perfect_bp_helps_branchy_codes_most(self, context):
        result = fig9_branch_prediction(context)
        assert result.gain("ssearch34") > 0.15
        assert result.gain("fasta34") > 0.10
        assert result.gain("sw_vmx128") < 0.05

    def test_perfect_never_slower(self, context):
        result = fig9_branch_prediction(context)
        for name in context.suite.names:
            for index in range(len(result.widths)):
                assert (result.perfect[name][index]
                        >= result.real[name][index] - 1e-9)


class TestFig10Shape:
    def test_fasta_queues_lightly_occupied(self, context):
        result = fig10_queue_occupancy(context)
        fasta = result.histograms["fasta34"]
        total = sum(fasta["FIX-Q"].values())
        near_empty = sum(v for k, v in fasta["FIX-Q"].items() if k <= 2)
        # Pipeline flushes keep the queues drained a large share of the
        # time, and mean occupancy stays well under capacity.
        assert near_empty > 0.3 * total
        assert result.mean("fasta34", "FIX-Q") < 10

    def test_vmx_vector_queue_busier_than_fasta_fix_queue(self, context):
        result = fig10_queue_occupancy(context)
        assert (result.mean("sw_vmx128", "VI-Q")
                > result.mean("fasta34", "FIX-Q"))

    def test_vmx_sustains_more_inflight(self, context):
        result = fig10_queue_occupancy(context)
        assert (result.mean("sw_vmx128", "INFLIGHT")
                > result.mean("fasta34", "INFLIGHT"))


class TestFig11Shape:
    def test_strategies_converge(self, context):
        result = fig11_predictor_accuracy(
            context, sizes=(64, 1024, 16_384)
        )
        for app, strategies in result.accuracy.items():
            plateaus = [values[-1] for values in strategies.values()]
            assert max(plateaus) - min(plateaus) < 0.08, app

    def test_saturation_early(self, context):
        result = fig11_predictor_accuracy(
            context, sizes=(16, 64, 256, 1024, 4096, 16_384)
        )
        for app in result.accuracy:
            assert result.saturation_size(app, "bimodal", 0.01) <= 4096, app

    def test_simd_branches_nearly_perfectly_predicted(self, context):
        result = fig11_predictor_accuracy(context, sizes=(1024,))
        assert result.accuracy["sw_vmx128"]["gp"][0] > 0.95
