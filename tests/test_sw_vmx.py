"""Equality of vectorized Smith-Waterman with the scalar reference."""

import random

from hypothesis import given, settings, strategies as st

from repro.align.simd.sw_vmx import sw_score_vmx, sw_score_vmx128, sw_score_vmx256
from repro.align.simd.vector import VMX128, VMX256
from repro.align.smith_waterman import sw_score
from repro.align.types import GapPenalties
from repro.bio.matrices import BLOSUM50
from repro.bio.synthetic import MutationModel, random_protein

proteins = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=0, max_size=40)


class TestEdgeCases:
    def test_empty_inputs(self):
        assert sw_score_vmx128("", "ACD") == 0
        assert sw_score_vmx128("ACD", "") == 0
        assert sw_score_vmx256("", "") == 0

    def test_single_residue(self):
        assert sw_score_vmx128("W", "W") == sw_score("W", "W")

    def test_query_shorter_than_lane_count(self):
        assert sw_score_vmx128("ACD", "ACDEFG") == sw_score("ACD", "ACDEFG")
        assert sw_score_vmx256("ACD", "ACDEFG") == sw_score("ACD", "ACDEFG")

    def test_query_exactly_one_block(self):
        query = "ACDEFGHI"  # 8 residues = one vmx128 block
        subject = "ACDEFGHIKLMNP"
        assert sw_score_vmx128(query, subject) == sw_score(query, subject)

    def test_related_pair_with_gaps(self):
        rng = random.Random(9)
        base = random_protein(90, rng)
        related = MutationModel(indel_rate=0.05).mutate(base, rng)
        expected = sw_score(base, related)
        assert sw_score_vmx128(base, related) == expected
        assert sw_score_vmx256(base, related) == expected

    def test_alternative_matrix_and_gaps(self):
        rng = random.Random(10)
        a = random_protein(50, rng)
        b = random_protein(50, rng)
        gaps = GapPenalties(open=5, extend=2)
        expected = sw_score(a, b, matrix=BLOSUM50, gaps=gaps)
        assert sw_score_vmx(
            a, b, matrix=BLOSUM50, gaps=gaps, config=VMX128
        ) == expected
        assert sw_score_vmx(
            a, b, matrix=BLOSUM50, gaps=gaps, config=VMX256
        ) == expected


@settings(max_examples=40, deadline=None)
@given(a=proteins, b=proteins)
def test_vmx128_equals_scalar(a, b):
    assert sw_score_vmx128(a, b) == sw_score(a, b)


@settings(max_examples=30, deadline=None)
@given(a=proteins, b=proteins)
def test_vmx256_equals_scalar(a, b):
    assert sw_score_vmx256(a, b) == sw_score(a, b)


@settings(max_examples=20, deadline=None)
@given(
    a=proteins,
    b=proteins,
    gap_open=st.integers(min_value=1, max_value=14),
    gap_extend=st.integers(min_value=1, max_value=4),
)
def test_vmx_equals_scalar_across_penalties(a, b, gap_open, gap_extend):
    gaps = GapPenalties(open=gap_open, extend=gap_extend)
    assert sw_score_vmx128(a, b, gaps=gaps) == sw_score(a, b, gaps=gaps)
