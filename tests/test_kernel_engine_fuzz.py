"""Property-based hardening: traced kernels vs reference engines.

The central invariant — traced kernels compute the same scores as the
engines — is exercised on randomized small databases (varying lengths,
divergences, and seeds) beyond the fixed fixtures used elsewhere.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.align.blast.engine import BlastEngine, BlastOptions
from repro.align.fasta.engine import FastaEngine, FastaOptions
from repro.align.smith_waterman import sw_score
from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence
from repro.bio.synthetic import MutationModel, random_protein
from repro.kernels.blast_kernel import BlastKernel
from repro.kernels.fasta_kernel import FastaKernel
from repro.kernels.ssearch_kernel import SsearchKernel
from repro.kernels.sw_vmx_kernel import SwVmxKernel
from repro.align.simd.vector import VMX128, VMX256


def build_inputs(seed: int):
    """A query plus a 3-subject database with one planted relative."""
    rng = random.Random(seed)
    query = Sequence("query", random_protein(rng.randint(24, 90), rng))
    model = MutationModel(substitution_rate=0.3, indel_rate=0.03)
    subjects = [
        Sequence("REL", model.mutate(query.text, rng)),
        Sequence("RND1", random_protein(rng.randint(20, 150), rng)),
        Sequence("RND2", random_protein(rng.randint(20, 150), rng)),
    ]
    return query, SequenceDatabase(subjects, name=f"fuzz-{seed}")


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_ssearch_kernel_matches_sw(seed):
    query, database = build_inputs(seed)
    run = SsearchKernel().run(query, database, record=False)
    for sid, score in run.scores.items():
        assert score == sw_score(query, database.get(sid))


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_vmx_kernels_match_sw(seed):
    query, database = build_inputs(seed)
    for config in (VMX128, VMX256):
        run = SwVmxKernel(config).run(query, database, record=False)
        for sid, score in run.scores.items():
            assert score == sw_score(query, database.get(sid)), config

@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    threshold=st.sampled_from((9, 11, 13)),
)
def test_blast_kernel_matches_engine(seed, threshold):
    query, database = build_inputs(seed)
    options = BlastOptions(threshold=threshold)
    run = BlastKernel(options).run(query, database, record=False)
    engine = BlastEngine(query, options)
    for sid, score in run.scores.items():
        assert score == engine.score_subject(database.get(sid))


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    opt_threshold=st.sampled_from((12, 20, 28)),
)
def test_fasta_kernel_matches_engine(seed, opt_threshold):
    query, database = build_inputs(seed)
    options = FastaOptions(opt_threshold=opt_threshold)
    run = FastaKernel(options).run(query, database, record=False)
    engine = FastaEngine(query, options)
    for sid, score in run.scores.items():
        assert score == engine.score_subject(database.get(sid)).reported


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_truncated_traces_stay_wellformed(seed):
    query, database = build_inputs(seed)
    for kernel in (SsearchKernel(), FastaKernel(), BlastKernel()):
        run = kernel.run(query, database, record=True, limit=2500)
        run.trace.validate()
        assert run.instruction_count <= 2501
