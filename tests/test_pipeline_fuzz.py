"""Property-based fuzzing of the out-of-order core.

Random (but well-formed) traces are generated through the TraceBuilder
and pushed through several configurations; the conservation laws must
hold for every trace: everything retires, IPC never exceeds the
dispatch width, charged stall cycles never exceed total cycles, and a
strictly better machine is never slower.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.isa.builder import TraceBuilder
from repro.uarch.config import BP_PERFECT, ME1, MEINF, PROC_4WAY, PROC_8WAY
from repro.uarch.simulator import simulate


def random_trace(seed: int, length: int):
    """A random well-formed trace mixing all op classes."""
    rng = random.Random(seed)
    builder = TraceBuilder(f"fuzz-{seed}")
    region = builder.alloc("data", 1 << 16)
    live: list[int] = []

    def sources():
        count = rng.randint(0, 2)
        if not live or count == 0:
            return ()
        return tuple(rng.choice(live) for _ in range(count))

    for index in range(length):
        kind = rng.random()
        site = f"s{rng.randint(0, 30)}"
        if kind < 0.45:
            live.append(builder.ialu(site, sources()))
        elif kind < 0.60:
            address = region + rng.randrange(0, 1 << 16, 8)
            live.append(builder.iload(site, address, sources()))
        elif kind < 0.68:
            address = region + rng.randrange(0, 1 << 16, 8)
            builder.istore(site, address, sources())
        elif kind < 0.80:
            builder.ctrl(site, taken=rng.random() < 0.7, sources=sources(),
                         backward=rng.random() < 0.5)
        elif kind < 0.90:
            live.append(builder.vsimple(site, sources()))
        elif kind < 0.95:
            live.append(builder.vperm(site, sources()))
        else:
            address = region + rng.randrange(0, 1 << 16, 16)
            live.append(builder.vload(site, address, sources()))
        if len(live) > 40:
            live = live[-40:]
    return builder.build()


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_conservation_laws(seed):
    trace = random_trace(seed, 400)
    trace.validate()
    result = simulate(trace, PROC_4WAY.with_memory(ME1), max_cycles=500_000)
    assert result.instructions == len(trace)
    assert result.ipc <= PROC_4WAY.dispatch_width + 1e-9
    assert sum(result.traumas.values()) <= result.cycles
    assert result.cycles >= len(trace) / PROC_4WAY.retire_width - 1


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_ideal_memory_never_slower(seed):
    trace = random_trace(seed, 400)
    real = simulate(trace, PROC_4WAY.with_memory(ME1), max_cycles=500_000)
    ideal = simulate(trace, PROC_4WAY.with_memory(MEINF), max_cycles=500_000)
    assert ideal.cycles <= real.cycles


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_perfect_bp_never_slower(seed):
    trace = random_trace(seed, 400)
    real = simulate(trace, PROC_4WAY.with_memory(MEINF), max_cycles=500_000)
    perfect = simulate(
        trace, PROC_4WAY.with_memory(MEINF).with_branch(BP_PERFECT),
        max_cycles=500_000,
    )
    assert perfect.cycles <= real.cycles


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_determinism(seed):
    trace = random_trace(seed, 300)
    first = simulate(trace, PROC_8WAY.with_memory(ME1), max_cycles=500_000)
    second = simulate(trace, PROC_8WAY.with_memory(ME1), max_cycles=500_000)
    assert first.cycles == second.cycles
    assert first.traumas == second.traumas
