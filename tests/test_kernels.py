"""Correctness and shape tests for all five traced kernels.

The central invariant: every traced kernel computes exactly the same
scores as the corresponding reference engine, while emitting a
well-formed trace whose instruction mix has the paper's Figure 1 shape.
"""

import pytest

from repro.align.blast.engine import BlastEngine, BlastOptions
from repro.align.fasta.engine import FastaEngine, FastaOptions
from repro.align.smith_waterman import sw_score
from repro.kernels.registry import (
    SUITE_BLAST_THRESHOLD,
    SUITE_FASTA_OPT_THRESHOLD,
    WORKLOAD_NAMES,
    create_kernel,
)

ALL_KERNELS = list(WORKLOAD_NAMES)


@pytest.fixture(scope="module")
def kernel_runs(query, tiny_database):
    return {
        name: create_kernel(name).run(query, tiny_database, record=True)
        for name in ALL_KERNELS
    }


class TestScoresMatchReferences:
    def test_sw_kernels_match_reference(self, kernel_runs, query, tiny_database):
        for name in ("ssearch34", "sw_vmx128", "sw_vmx256"):
            run = kernel_runs[name]
            assert len(run.scores) == len(tiny_database)
            for sid, score in run.scores.items():
                assert score == sw_score(query, tiny_database.get(sid)), (
                    name, sid
                )

    def test_blast_kernel_matches_engine(self, kernel_runs, query, tiny_database):
        engine = BlastEngine(
            query, BlastOptions(threshold=SUITE_BLAST_THRESHOLD)
        )
        for sid, score in kernel_runs["blast"].scores.items():
            assert score == engine.score_subject(tiny_database.get(sid)), sid

    def test_fasta_kernel_matches_engine(self, kernel_runs, query, tiny_database):
        engine = FastaEngine(
            query, FastaOptions(opt_threshold=SUITE_FASTA_OPT_THRESHOLD)
        )
        for sid, score in kernel_runs["fasta34"].scores.items():
            assert score == engine.score_subject(
                tiny_database.get(sid)
            ).reported, sid


class TestTraceWellFormedness:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_traces_validate(self, kernel_runs, name):
        kernel_runs[name].trace.validate()

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_memory_ops_have_addresses(self, kernel_runs, name):
        for instruction in kernel_runs[name].trace:
            if instruction.is_memory:
                assert instruction.address > 0
                assert instruction.size > 0

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_deterministic(self, name, query, tiny_database):
        first = create_kernel(name).run(query, tiny_database, record=True)
        second = create_kernel(name).run(query, tiny_database, record=True)
        assert first.mix.counts == second.mix.counts
        assert first.scores == second.scores


class TestTruncation:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_budget_respected(self, name, query, tiny_database):
        run = create_kernel(name).run(
            query, tiny_database, record=True, limit=5000
        )
        assert run.truncated
        assert run.instruction_count <= 5001
        run.trace.validate()

    def test_untruncated_flag(self, kernel_runs):
        for run in kernel_runs.values():
            assert not run.truncated

    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_count_mode_matches_record_mode(self, name, query, tiny_database):
        recorded = create_kernel(name).run(query, tiny_database, record=True)
        counted = create_kernel(name).run(query, tiny_database, record=False)
        assert recorded.mix.counts == counted.mix.counts
        assert counted.trace is None


class TestMixShape:
    """Figure 1 shape assertions (loose bands around the paper values)."""

    def test_control_fractions(self, kernel_runs):
        fractions = {
            name: run.mix.control_fraction()
            for name, run in kernel_runs.items()
        }
        # Scalar/heuristic codes are branchy; SIMD codes are not.
        assert 0.18 <= fractions["ssearch34"] <= 0.32
        assert 0.12 <= fractions["fasta34"] <= 0.28
        assert 0.10 <= fractions["blast"] <= 0.24
        assert fractions["sw_vmx128"] <= 0.05
        assert fractions["sw_vmx256"] <= 0.05

    def test_loads_significant_everywhere(self, kernel_runs):
        for name, run in kernel_runs.items():
            assert run.mix.load_fraction() >= 0.10, name

    def test_stores_much_smaller_than_loads(self, kernel_runs):
        for name, run in kernel_runs.items():
            assert run.mix.store_fraction() < run.mix.load_fraction(), name

    def test_simd_kernels_emit_vector_work(self, kernel_runs):
        from repro.isa.opcodes import OpClass

        for name in ("sw_vmx128", "sw_vmx256"):
            mix = kernel_runs[name].mix
            vector = (
                mix.fraction(OpClass.VSIMPLE)
                + mix.fraction(OpClass.VPERM)
                + mix.fraction(OpClass.VLOAD)
            )
            assert vector > 0.5, name

    def test_scalar_kernels_emit_no_vector_work(self, kernel_runs):
        from repro.isa.opcodes import OpClass

        for name in ("ssearch34", "fasta34", "blast"):
            mix = kernel_runs[name].mix
            assert mix.count(OpClass.VSIMPLE) == 0
            assert mix.count(OpClass.VLOAD) == 0

    def test_vmx256_fewer_instructions_than_vmx128(
        self, query, tiny_database
    ):
        v128 = create_kernel("sw_vmx128").run(query, tiny_database,
                                              record=False)
        v256 = create_kernel("sw_vmx256").run(query, tiny_database,
                                              record=False)
        assert v256.mix.total < v128.mix.total
