"""Tests for the SEG-style low-complexity filter."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bio.complexity import (
    find_low_complexity,
    mask_sequence,
    masked_fraction,
    window_entropy,
)
from repro.bio.sequence import Sequence
from repro.bio.synthetic import random_protein

proteins = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=0, max_size=120)


class TestEntropy:
    def test_single_residue_run_zero_entropy(self):
        assert window_entropy("AAAAAAAA") == 0.0

    def test_two_equal_residues_one_bit(self):
        assert window_entropy("ABABABAB") == pytest.approx(1.0)

    def test_uniform_window_max_entropy(self):
        text = "ARNDCQEGHILK"  # 12 distinct residues
        assert window_entropy(text) == pytest.approx(math.log2(12))

    def test_empty(self):
        assert window_entropy("") == 0.0


class TestFinding:
    def test_homopolymer_masked(self):
        text = random_protein(40, random.Random(1)) + "Q" * 25 + \
            random_protein(40, random.Random(2))
        regions = find_low_complexity(text)
        assert regions
        merged = regions[0]
        assert merged.start <= 45
        assert merged.end >= 60

    def test_random_protein_mostly_unmasked(self):
        text = random_protein(400, random.Random(3))
        fraction = masked_fraction(Sequence("s", text))
        assert fraction < 0.1

    def test_short_sequence_no_regions(self):
        assert find_low_complexity("ACD") == []

    def test_dipeptide_repeat_masked(self):
        text = random_protein(30, random.Random(4)) + "PQ" * 15 + \
            random_protein(30, random.Random(5))
        assert find_low_complexity(text)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            find_low_complexity("ACDEF" * 10, window=1)
        with pytest.raises(ValueError):
            find_low_complexity("ACDEF" * 10, trigger=3.0, extension=2.0)

    def test_regions_sorted_and_disjoint(self):
        text = ("A" * 20 + random_protein(50, random.Random(6))
                + "S" * 20 + random_protein(50, random.Random(7)))
        regions = find_low_complexity(text)
        for first, second in zip(regions, regions[1:]):
            assert first.end < second.start


class TestMasking:
    def test_masked_positions_become_x(self):
        text = random_protein(40, random.Random(8)) + "E" * 30 + \
            random_protein(40, random.Random(9))
        sequence = Sequence("s", text)
        masked = mask_sequence(sequence)
        assert "X" in masked.text
        assert len(masked) == len(sequence)

    def test_random_sequence_mostly_untouched(self):
        sequence = Sequence("s", random_protein(100, random.Random(10)))
        masked = mask_sequence(sequence)
        # A random window can dip below the trigger by chance, but
        # never a large share of the sequence.
        assert masked.text.count("X") <= 25

    def test_masked_query_shrinks_blast_table(self):
        from repro.align.blast.engine import BlastEngine, BlastOptions

        text = random_protein(80, random.Random(11)) + "K" * 40
        raw = BlastEngine(Sequence("q", text), BlastOptions(mask_query=False))
        filtered = BlastEngine(Sequence("q", text), BlastOptions(mask_query=True))
        assert filtered.lookup.entry_count < raw.lookup.entry_count

    def test_kernel_matches_engine_with_masking(self, tiny_database):
        from repro.align.blast.engine import BlastEngine, BlastOptions
        from repro.kernels.blast_kernel import BlastKernel
        from repro.bio.queries import default_query

        text = default_query().text[:60] + "D" * 30
        query = Sequence("q", text)
        options = BlastOptions(mask_query=True, threshold=10)
        run = BlastKernel(options).run(query, tiny_database, record=True)
        engine = BlastEngine(query, options)
        for sid, score in run.scores.items():
            assert score == engine.score_subject(tiny_database.get(sid)), sid


@settings(max_examples=40, deadline=None)
@given(text=proteins)
def test_masking_preserves_length_and_unmasked_residues(text):
    sequence = Sequence("s", text)
    masked = mask_sequence(sequence)
    assert len(masked) == len(sequence)
    for original, replaced in zip(sequence.text, masked.text):
        assert replaced == original or replaced == "X"


@settings(max_examples=40, deadline=None)
@given(text=proteins)
def test_regions_within_bounds(text):
    for region in find_low_complexity(text):
        assert 0 <= region.start < region.end <= len(text)
