"""Unit tests for result containers."""

import pytest

from repro.uarch.results import BranchResult, CacheResult, SimulationResult


def make_result(**overrides):
    defaults = dict(
        trace_name="t",
        config_name="4-way",
        memory_name="me1",
        instructions=1000,
        cycles=500,
        traumas={"if_pred": 100, "rg_fix": 50, "mm_dl2": 0},
        branch=BranchResult(predictions=100, correct=90),
        il1=CacheResult(accesses=10, misses=1),
        dl1=CacheResult(accesses=300, misses=30),
        l2=CacheResult(accesses=30, misses=3),
        queue_occupancy={"FIX-Q": {0: 250, 2: 250}},
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_ipc(self):
        assert make_result().ipc == pytest.approx(2.0)

    def test_ipc_zero_cycles(self):
        assert make_result(cycles=0).ipc == 0.0

    def test_trauma_top_skips_zeros(self):
        top = make_result().trauma_top(5)
        assert top == [("if_pred", 100), ("rg_fix", 50)]

    def test_occupancy_mean(self):
        assert make_result().occupancy_mean("FIX-Q") == pytest.approx(1.0)

    def test_occupancy_mean_missing_queue(self):
        assert make_result().occupancy_mean("nope") == 0.0


class TestCacheResult:
    def test_miss_rate(self):
        assert CacheResult(accesses=100, misses=5).miss_rate == 0.05

    def test_miss_rate_no_accesses(self):
        assert CacheResult(accesses=0, misses=0).miss_rate == 0.0


class TestBranchResult:
    def test_accuracy(self):
        assert BranchResult(predictions=100, correct=90).accuracy == 0.9

    def test_accuracy_no_branches(self):
        assert BranchResult(predictions=0, correct=0).accuracy == 1.0

    def test_mispredictions(self):
        assert BranchResult(predictions=100, correct=90).mispredictions == 10
