"""Unit tests for processor/memory/branch configurations."""

import pytest

from repro.isa.opcodes import FunctionalUnit
from repro.uarch.config import (
    BP_PERFECT,
    BP_REAL,
    KB,
    MB,
    ME1,
    ME4,
    MEINF,
    MEMORY_PRESETS,
    PROC_16WAY,
    PROC_4WAY,
    PROC_8WAY,
    BranchPredictorConfig,
    CacheConfig,
    memory_with_dl1,
)


class TestTable4Presets:
    def test_widths(self):
        assert PROC_4WAY.fetch_width == 4
        assert PROC_8WAY.fetch_width == 8
        assert PROC_16WAY.fetch_width == 16

    def test_retire_widths(self):
        assert PROC_4WAY.retire_width == 6
        assert PROC_8WAY.retire_width == 12
        assert PROC_16WAY.retire_width == 20

    def test_inflight(self):
        assert PROC_4WAY.inflight == 160
        assert PROC_8WAY.inflight == 255

    def test_unit_mixes(self):
        assert PROC_4WAY.units[FunctionalUnit.FX] == 3
        assert PROC_4WAY.units[FunctionalUnit.VI] == 1
        assert PROC_8WAY.units[FunctionalUnit.LDST] == 4
        assert PROC_16WAY.units[FunctionalUnit.FX] == 10

    def test_issue_queue_sizes(self):
        assert PROC_4WAY.issue_queue_size == 20
        assert PROC_8WAY.issue_queue_size == 40
        assert PROC_16WAY.issue_queue_size == 80

    def test_dcache_ports(self):
        assert (PROC_4WAY.dcache_read_ports, PROC_4WAY.dcache_write_ports) == (2, 1)
        assert PROC_16WAY.max_outstanding_misses == 16

    def test_with_memory_copies(self):
        modified = PROC_4WAY.with_memory(MEINF)
        assert modified.memory is MEINF
        assert PROC_4WAY.memory is ME1
        assert modified.fetch_width == PROC_4WAY.fetch_width


class TestTable5Presets:
    def test_me1(self):
        assert ME1.dl1.size_bytes == 32 * KB
        assert ME1.l2.size_bytes == 1 * MB
        assert ME1.dl1.associativity == 2
        assert ME1.il1.associativity == 1
        assert ME1.l2.associativity == 8
        assert ME1.memory_latency == 300

    def test_line_sizes(self):
        for preset in MEMORY_PRESETS:
            assert preset.dl1.line_bytes == 128
            assert preset.l2.line_bytes == 128

    def test_infinite_entries(self):
        assert ME4.l2.is_ideal
        assert not ME4.dl1.is_ideal
        assert MEINF.dl1.is_ideal and MEINF.il1.is_ideal

    def test_latencies(self):
        assert ME1.dl1.latency == 1
        assert ME1.l2.latency == 12

    def test_custom_dl1(self):
        memory = memory_with_dl1(8 * KB, associativity=4, latency=3)
        assert memory.dl1.size_bytes == 8 * KB
        assert memory.dl1.associativity == 4
        assert memory.dl1.latency == 3
        assert memory.l2.size_bytes == 2 * MB


class TestTable6Preset:
    def test_real_predictor(self):
        assert BP_REAL.kind == "combined"
        assert BP_REAL.table_entries == 16 * 1024
        assert BP_REAL.btb_entries == 4 * 1024
        assert BP_REAL.btb_associativity == 4
        assert BP_REAL.btb_miss_penalty == 2
        assert BP_REAL.max_predicted_branches == 12
        assert BP_REAL.mispredict_recovery == 3

    def test_perfect(self):
        assert BP_PERFECT.kind == "perfect"

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(kind="neural")


class TestCacheConfigValidation:
    def test_valid(self):
        CacheConfig(32 * KB, 2, 128, 1)

    def test_invalid_multiple(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3, 128, 1)

    def test_ideal(self):
        assert CacheConfig(None, 1, 128, 1).is_ideal
