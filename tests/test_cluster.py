"""Tests for the ``repro.cluster`` multi-replica serving tier.

Three layers:

* pure logic — the consistent-hash ring's determinism and minimal
  remapping, affinity keys;
* router policy over *stub* replicas (in-process protocol servers with
  scripted behavior) — id rewriting, least-loaded dispatch, busy-signal
  redispatch, shed-only-when-all-saturated backpressure, failover on a
  dropped connection, ejection/rejoin, drain semantics, and telemetry
  aggregation;
* the real thing — a router over two in-process
  :class:`AlignmentService` servers proving byte-identity with the
  single-server path, and a process-level supervisor chaos run
  (SIGKILL one replica mid-load, zero failed requests, rolling
  restart, graceful drain).
"""

import asyncio
import contextlib
import json

from repro.bio.synthetic import SyntheticDatabaseConfig, generate_database
from repro.cluster.hashing import HashRing, affinity_key
from repro.cluster.replicas import (
    STATE_DRAINING,
    STATE_EJECTED,
    STATE_HEALTHY,
)
from repro.cluster.router import ClusterRouter, RouterConfig
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor
from repro.serve.protocol import shed_response
from repro.serve.scheduler import BatchPolicy
from repro.serve.server import AlignmentService, ServeConfig, serve_tcp
from repro.serve.telemetry import Telemetry, merge_snapshots

#: Same shape as test_serve's small database: fast, real hits.
SMALL_DATABASE = SyntheticDatabaseConfig(
    sequence_count=10,
    family_count=2,
    family_size=2,
    seed=91,
    mean_length=120.0,
)


def small_config(**overrides) -> ServeConfig:
    defaults = dict(
        database=SMALL_DATABASE,
        shard_count=2,
        jobs=1,
        queue_capacity=32,
        policy=BatchPolicy(max_batch=4, max_wait=0.005),
        default_timeout=30.0,
        precompute=False,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def search_payload(request_id: str, text: str, query_id: str = "q") -> dict:
    return {
        "op": "search",
        "id": request_id,
        "query_id": query_id,
        "query": text,
        "algorithm": "blast",
    }


QUERY = "ACDEFGHIKLMNPQRSTVWY"


# -- hashing ----------------------------------------------------------------


class TestHashRing:
    def test_lookup_is_deterministic(self):
        first, second = HashRing(), HashRing()
        for name in ("r0", "r1", "r2"):
            first.add(name)
            second.add(name)
        keys = [f"key-{i}" for i in range(200)]
        assert [first.lookup(k) for k in keys] == [
            second.lookup(k) for k in keys
        ]

    def test_lookup_covers_all_members(self):
        ring = HashRing()
        for name in ("r0", "r1", "r2"):
            ring.add(name)
        owners = {ring.lookup(f"key-{i}") for i in range(500)}
        assert owners == {"r0", "r1", "r2"}

    def test_removal_remaps_only_departed_keys(self):
        ring = HashRing()
        for name in ("r0", "r1", "r2"):
            ring.add(name)
        keys = [f"key-{i}" for i in range(500)]
        before = {key: ring.lookup(key) for key in keys}
        ring.remove("r1")
        for key in keys:
            after = ring.lookup(key)
            if before[key] != "r1":
                # Consistent hashing's contract: keys not owned by
                # the departed replica keep their owner (warm caches).
                assert after == before[key]
            else:
                assert after in ("r0", "r2")

    def test_add_and_remove_idempotent(self):
        ring = HashRing(vnodes=8)
        ring.add("r0")
        ring.add("r0")
        assert ring.members() == {"r0"}
        ring.remove("r0")
        ring.remove("r0")
        assert ring.lookup("anything") is None

    def test_affinity_key_tracks_scoring_knobs(self):
        base = search_payload("1", QUERY)
        assert affinity_key(base) == affinity_key(
            search_payload("2", QUERY)
        )
        assert affinity_key(base) != affinity_key(
            {**base, "gap_open": 5}
        )
        assert affinity_key(base) != affinity_key(
            {**base, "query": QUERY[:-1]}
        )


# -- stub replicas ----------------------------------------------------------


class StubReplica:
    """In-process protocol server with scripted search behavior."""

    def __init__(self, name, responder=None, queue_capacity=4):
        self.name = name
        self.responder = responder
        self.queue_capacity = queue_capacity
        self.telemetry: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        self.received: list[dict] = []
        self.server = None
        self.port = None
        self._writers: set = set()

    async def start(self, port: int = 0) -> "StubReplica":
        self.server = await asyncio.start_server(
            self._handle, "127.0.0.1", port
        )
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None

    async def kill(self) -> None:
        """Drop the listener *and* every established connection."""
        await self.stop()
        for writer in list(self._writers):
            with contextlib.suppress(ConnectionError):
                writer.close()
        self._writers.clear()

    async def _handle(self, reader, writer):
        self._writers.add(writer)
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                data = json.loads(raw)
                self.received.append(data)
                response = await self._respond(data, writer)
                if response is None:
                    continue
                writer.write((json.dumps(response) + "\n").encode())
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(ConnectionError):
                writer.close()

    async def _respond(self, data, writer):
        operation = data.get("op", "search")
        request_id = str(data.get("id", ""))
        if operation == "ping":
            return {"id": request_id, "status": "ok"}
        if operation == "status":
            return {
                "id": request_id,
                "status": "ok",
                "serve": {"queue_capacity": self.queue_capacity},
            }
        if operation == "telemetry":
            return {
                "id": request_id,
                "status": "ok",
                "telemetry": self.telemetry,
            }
        if self.responder is not None:
            return await self.responder(self, data, writer)
        return {
            "id": request_id,
            "status": "ok",
            "result": {"echo": data.get("query"), "by": self.name},
        }


def quick_router(**overrides) -> ClusterRouter:
    defaults = dict(saturation_backoff=0.01, health_timeout=0.5)
    defaults.update(overrides)
    return ClusterRouter(RouterConfig(**defaults))


async def routed(stubs, router=None):
    router = router or quick_router()
    for stub in stubs:
        await router.add_replica(stub.name, "127.0.0.1", stub.port)
    return router


# -- router policy over stubs ----------------------------------------------


class TestRouterDispatch:
    def test_ids_rewritten_on_wire_restored_to_client(self):
        async def main():
            stub = await StubReplica("a").start()
            router = await routed([stub])
            try:
                response = await router.dispatch_search(
                    search_payload("client-7", QUERY)
                )
                assert response["status"] == "ok"
                assert response["id"] == "client-7"
                assert response["replica"] == "a"
                wire = [
                    d for d in stub.received
                    if d.get("op") == "search"
                ]
                # The wire id is router-private, so concurrent clients
                # reusing ids cannot collide inside one replica link.
                assert wire[0]["id"].startswith("x")
                assert wire[0]["id"] != "client-7"
            finally:
                await router.stop()
                await stub.stop()

        asyncio.run(main())

    def test_least_loaded_wins_when_no_affinity(self):
        async def main():
            release = asyncio.Event()

            async def holding(stub, data, writer):
                await release.wait()
                return {
                    "id": data["id"], "status": "ok", "result": {}
                }

            busy = await StubReplica("a", responder=holding).start()
            idle = await StubReplica("b").start()
            router = await routed(
                [busy, idle], quick_router(affinity=False)
            )
            try:
                loop = asyncio.get_running_loop()
                held = loop.create_task(
                    router.dispatch_search(search_payload("h", QUERY))
                )
                await asyncio.sleep(0.02)
                # "a" has 1 outstanding, "b" has 0: next goes to "b".
                response = await router.dispatch_search(
                    search_payload("n", QUERY, query_id="other")
                )
                assert response["replica"] == "b"
                release.set()
                assert (await held)["status"] == "ok"
            finally:
                await router.stop()
                await busy.stop()
                await idle.stop()

        asyncio.run(main())

    def test_affinity_prefers_hash_owner(self):
        async def main():
            stubs = [
                await StubReplica(name).start() for name in ("a", "b")
            ]
            router = await routed(stubs)
            try:
                payload = search_payload("1", QUERY)
                owner = router.ring.lookup(affinity_key(payload))
                for index in range(3):
                    response = await router.dispatch_search(
                        search_payload(str(index), QUERY)
                    )
                    assert response["replica"] == owner
            finally:
                await router.stop()
                for stub in stubs:
                    await stub.stop()

        asyncio.run(main())

    def test_busy_signal_redispatches_elsewhere(self):
        async def main():
            async def shedding(stub, data, writer):
                return shed_response(str(data.get("id", "")))

            sheds = await StubReplica("a", responder=shedding).start()
            works = await StubReplica("b").start()
            router = await routed(
                [sheds, works], quick_router(affinity=False)
            )
            try:
                # Force first attempt at "a" (name tiebreak), which
                # sheds; the router must retry on "b", not the client.
                response = await router.dispatch_search(
                    search_payload("r", QUERY)
                )
                assert response["status"] == "ok"
                assert response["replica"] == "b"
                assert router.redispatches.value >= 1
                assert router.replicas["a"].shed_total == 1
            finally:
                await router.stop()
                await sheds.stop()
                await works.stop()

        asyncio.run(main())

    def test_sheds_only_when_every_replica_saturated(self):
        async def main():
            async def shedding(stub, data, writer):
                return shed_response(str(data.get("id", "")))

            stubs = [
                await StubReplica(n, responder=shedding).start()
                for n in ("a", "b")
            ]
            router = await routed(stubs)
            try:
                response = await router.dispatch_search(
                    search_payload("r", QUERY)
                )
                assert response["status"] == "shed"
                assert response["reason"] == "saturated"
                assert router.shed.value == 1
                # Both replicas were actually tried before giving up.
                tried = {
                    s.name for s in stubs
                    if any(
                        d.get("op") == "search" for d in s.received
                    )
                }
                assert tried == {"a", "b"}
            finally:
                await router.stop()
                for stub in stubs:
                    await stub.stop()

        asyncio.run(main())

    def test_door_shed_at_summed_admission_capacity(self):
        async def main():
            release = asyncio.Event()

            async def holding(stub, data, writer):
                await release.wait()
                return {
                    "id": data["id"], "status": "ok", "result": {}
                }

            stubs = [
                await StubReplica(
                    n, responder=holding, queue_capacity=1
                ).start()
                for n in ("a", "b")
            ]
            router = await routed(stubs, quick_router(affinity=False))
            try:
                assert router.total_capacity() == 2
                loop = asyncio.get_running_loop()
                held = [
                    loop.create_task(router.dispatch_search(
                        search_payload(f"h{i}", QUERY, query_id=f"q{i}")
                    ))
                    for i in range(2)
                ]
                await asyncio.sleep(0.02)
                assert router.total_outstanding() == 2
                # Cluster-wide outstanding == summed replica admission
                # capacity: backpressure propagates to the door.
                response = await router.dispatch_search(
                    search_payload("over", QUERY)
                )
                assert response["status"] == "shed"
                assert response["reason"] == "saturated"
                release.set()
                for result in await asyncio.gather(*held):
                    assert result["status"] == "ok"
            finally:
                await router.stop()
                for stub in stubs:
                    await stub.stop()

        asyncio.run(main())

    def test_failover_redispatches_in_flight_work(self):
        async def main():
            async def dying(stub, data, writer):
                await stub.kill()
                return None

            doomed = await StubReplica("a", responder=dying).start()
            backup = await StubReplica("b").start()
            router = await routed(
                [doomed, backup], quick_router(affinity=False)
            )
            try:
                # "a" wins the tiebreak, accepts the request, and dies
                # with it in flight; the client still gets an answer.
                response = await router.dispatch_search(
                    search_payload("c", QUERY)
                )
                assert response["status"] == "ok"
                assert response["replica"] == "b"
                assert router.failovers.value == 1
                assert router.replicas["a"].state == STATE_EJECTED
            finally:
                await router.stop()
                await backup.stop()

        asyncio.run(main())

    def test_draining_cluster_sheds_with_reason(self):
        async def main():
            stub = await StubReplica("a").start()
            router = await routed([stub])
            try:
                router.draining = True
                response = await router.dispatch_search(
                    search_payload("r", QUERY)
                )
                assert response["status"] == "shed"
                assert response["reason"] == "cluster draining"
            finally:
                await router.stop()
                await stub.stop()

        asyncio.run(main())

    def test_draining_replica_excluded_then_readmitted(self):
        async def main():
            stubs = [
                await StubReplica(n).start() for n in ("a", "b")
            ]
            router = await routed(stubs)
            try:
                router.set_draining("a")
                assert router.replicas["a"].state == STATE_DRAINING
                assert "a" not in router.ring.members()
                for index in range(3):
                    response = await router.dispatch_search(
                        search_payload(str(index), QUERY)
                    )
                    assert response["replica"] == "b"
                router.set_draining("a", False)
                assert router.replicas["a"].state == STATE_HEALTHY
                assert "a" in router.ring.members()
            finally:
                await router.stop()
                for stub in stubs:
                    await stub.stop()

        asyncio.run(main())


class TestRouterHealth:
    def test_ejection_after_consecutive_failures_and_rejoin(self):
        async def main():
            stub = await StubReplica("a").start()
            port = stub.port
            router = await routed(
                [stub], quick_router(health_failures=2)
            )
            try:
                await stub.kill()
                await router.check_health()
                await router.check_health()
                replica = router.replicas["a"]
                assert replica.state == STATE_EJECTED
                assert "a" not in router.ring.members()
                assert router.ejections.value >= 1
                # Replica comes back on the same address: next probe
                # round reconnects and readmits it.
                stub = await StubReplica("a").start(port)
                await router.check_health()
                assert replica.state == STATE_HEALTHY
                assert "a" in router.ring.members()
                assert router.rejoins.value == 1
                response = await router.dispatch_search(
                    search_payload("r", QUERY)
                )
                assert response["status"] == "ok"
            finally:
                await router.stop()
                await stub.stop()

        asyncio.run(main())


class TestRouterTelemetry:
    def test_aggregate_pools_histogram_samples(self):
        async def main():
            first = await StubReplica("a").start()
            second = await StubReplica("b").start()
            first.telemetry = {
                "labels": {"replica": "a"},
                "counters": {"serve.requests.admitted": 3},
                "gauges": {"serve.queue.depth": 1},
                "histograms": {
                    "serve.request.latency": {
                        "count": 2, "total": 0.3, "mean": 0.15,
                        "samples": [0.1, 0.2],
                    }
                },
            }
            second.telemetry = {
                "labels": {"replica": "b"},
                "counters": {"serve.requests.admitted": 5},
                "gauges": {"serve.queue.depth": 2},
                "histograms": {
                    "serve.request.latency": {
                        "count": 2, "total": 0.7, "mean": 0.35,
                        "samples": [0.3, 0.4],
                    }
                },
            }
            router = await routed([first, second])
            try:
                report = await router.aggregate_telemetry()
                aggregate = report["aggregate"]
                admitted = aggregate["counters"][
                    "serve.requests.admitted"
                ]
                assert admitted == 8
                assert aggregate["gauges"]["serve.queue.depth"] == 3
                latency = aggregate["histograms"][
                    "serve.request.latency"
                ]
                assert latency["count"] == 4
                assert latency["total"] == 1.0
                # Percentiles come from the *pooled* windows, not an
                # average of per-replica percentiles.
                assert latency["p50"] == 0.2
                assert latency["p99"] == 0.4
                # Per-replica views stay lean: samples are stripped.
                for view in report["replicas"].values():
                    for shaped in view["histograms"].values():
                        assert "samples" not in shaped
                assert "router" in report
            finally:
                await router.stop()
                await first.stop()
                await second.stop()

        asyncio.run(main())

    def test_merge_snapshots_round_trips_real_registries(self):
        replicas = []
        for name, observations in (
            ("r0", (0.1, 0.2)), ("r1", (0.3, 0.4)),
        ):
            registry = Telemetry(labels={"replica": name})
            registry.counter("serve.requests.admitted").increment(2)
            histogram = registry.histogram("serve.request.latency")
            for value in observations:
                histogram.observe(value)
            replicas.append(registry.snapshot(include_samples=True))
        merged = merge_snapshots(replicas)
        assert merged["counters"]["serve.requests.admitted"] == 4
        latency = merged["histograms"]["serve.request.latency"]
        assert latency["count"] == 4
        assert latency["p50"] == 0.2


class TestReplicaLabels:
    def test_prometheus_export_carries_replica_label(self):
        registry = Telemetry(labels={"replica": "r0"})
        registry.counter("serve.requests.admitted", "admitted").increment()
        exported = registry.to_prometheus()
        assert (
            'repro_serve_requests_admitted{replica="r0"} 1' in exported
        )

    def test_router_per_replica_counter_labelled(self):
        registry = Telemetry()
        registry.counter(
            "router.dispatched", labels={"replica": "r0"}
        ).increment(2)
        registry.counter(
            "router.dispatched", labels={"replica": "r1"}
        ).increment(3)
        exported = registry.to_prometheus()
        assert 'repro_router_dispatched{replica="r0"} 2' in exported
        assert 'repro_router_dispatched{replica="r1"} 3' in exported


# -- router-side response cache ---------------------------------------------


class TestRouterResponseCache:
    def test_repeat_query_answered_from_cache(self):
        async def main():
            stub = await StubReplica("a").start()
            router = await routed([stub])
            try:
                first = await router.dispatch_search(
                    search_payload("c1", QUERY)
                )
                assert first["status"] == "ok"
                assert "cached" not in first
                second = await router.dispatch_search(
                    search_payload("c2", QUERY)
                )
                assert second["cached"] is True
                assert second["id"] == "c2"
                assert second["result"] == first["result"]
                # The repeat never reached a replica.
                wire = [
                    d for d in stub.received if d.get("op") == "search"
                ]
                assert len(wire) == 1
                assert router.cache_hits.value == 1
                assert router.cache_misses.value == 1
            finally:
                await router.stop()
                await stub.stop()

        asyncio.run(main())

    def test_no_cache_flag_bypasses(self):
        async def main():
            stub = await StubReplica("a").start()
            router = await routed([stub])
            try:
                for request_id in ("n1", "n2"):
                    payload = search_payload(request_id, QUERY)
                    payload["no_cache"] = True
                    response = await router.dispatch_search(payload)
                    assert response["status"] == "ok"
                    assert "cached" not in response
                wire = [
                    d for d in stub.received if d.get("op") == "search"
                ]
                assert len(wire) == 2
                assert router.cache_hits.value == 0
                assert router.cache_misses.value == 0
            finally:
                await router.stop()
                await stub.stop()

        asyncio.run(main())

    def test_zero_size_disables_cache(self):
        async def main():
            stub = await StubReplica("a").start()
            router = await routed(
                [stub], quick_router(response_cache_size=0)
            )
            try:
                for request_id in ("z1", "z2"):
                    response = await router.dispatch_search(
                        search_payload(request_id, QUERY)
                    )
                    assert "cached" not in response
                wire = [
                    d for d in stub.received if d.get("op") == "search"
                ]
                assert len(wire) == 2
            finally:
                await router.stop()
                await stub.stop()

        asyncio.run(main())

    def test_lru_bound_evicts_oldest(self):
        async def main():
            stub = await StubReplica("a").start()
            router = await routed(
                [stub], quick_router(response_cache_size=2)
            )
            try:
                # Three distinct queries through a 2-entry cache: the
                # first key is evicted and misses again on repeat.
                for index in range(3):
                    await router.dispatch_search(search_payload(
                        f"f{index}", QUERY, query_id=f"q{index}"
                    ))
                repeat = await router.dispatch_search(
                    search_payload("r0", QUERY, query_id="q0")
                )
                assert "cached" not in repeat
                kept = await router.dispatch_search(
                    search_payload("r2", QUERY, query_id="q2")
                )
                assert kept["cached"] is True
            finally:
                await router.stop()
                await stub.stop()

        asyncio.run(main())

    def test_non_ok_responses_never_cached(self):
        async def main():
            verdicts = ["error", "ok"]

            async def flaky(stub, data, writer):
                status = verdicts.pop(0)
                response = {"id": data["id"], "status": status}
                if status == "ok":
                    response["result"] = {"fresh": True}
                else:
                    response["error"] = "transient"
                return response

            stub = await StubReplica("a", responder=flaky).start()
            router = await routed([stub])
            try:
                first = await router.dispatch_search(
                    search_payload("e1", QUERY)
                )
                assert first["status"] == "error"
                # The error was not cached: the retry reaches the
                # replica and gets the fresh (ok) answer.
                second = await router.dispatch_search(
                    search_payload("e2", QUERY)
                )
                assert second["status"] == "ok"
                assert "cached" not in second
            finally:
                await router.stop()
                await stub.stop()

        asyncio.run(main())


# -- real services behind the router ----------------------------------------


class TestRouterOverRealServices:
    def test_results_byte_identical_to_single_server(self):
        async def main():
            sequences = generate_database(SMALL_DATABASE)
            queries = [
                (f"q{i}", sequences[i % len(sequences)].text[:48])
                for i in range(4)
            ]
            async with AlignmentService(small_config()) as single:
                async with AlignmentService(
                    small_config(replica="r0")
                ) as first, AlignmentService(
                    small_config(replica="r1")
                ) as second:
                    servers = [
                        await serve_tcp(first, "127.0.0.1", 0),
                        await serve_tcp(second, "127.0.0.1", 0),
                    ]
                    router = quick_router()
                    for index, server in enumerate(servers):
                        port = server.sockets[0].getsockname()[1]
                        await router.add_replica(
                            f"r{index}", "127.0.0.1", port
                        )
                    try:
                        for query_id, text in queries:
                            payload = search_payload(
                                query_id, text, query_id=query_id
                            )
                            direct = await single.handle_line(
                                json.dumps(payload)
                            )
                            routed_response = (
                                await router.dispatch_search(payload)
                            )
                            assert routed_response["status"] == "ok"
                            assert json.dumps(
                                routed_response["result"],
                                sort_keys=True,
                            ) == json.dumps(
                                direct["result"], sort_keys=True
                            )
                    finally:
                        await router.stop()
                        for server in servers:
                            server.close()
                            await server.wait_closed()

        asyncio.run(main())

    def test_packed_replica_byte_identical_through_router(self, tmp_path):
        """A routed mmap-backed replica answers byte-for-byte like a
        direct materialized server, for all three algorithms."""
        from repro.store.packdb import pack_database, reset_packed_memos

        async def main():
            sequences = generate_database(SMALL_DATABASE)
            packed = pack_database(
                sequences, tmp_path / "db", source_config=SMALL_DATABASE
            )
            async with AlignmentService(small_config()) as materialized:
                async with AlignmentService(small_config(
                    replica="pk",
                    database=None,
                    database_path=str(packed),
                )) as mapped:
                    server = await serve_tcp(mapped, "127.0.0.1", 0)
                    router = quick_router()
                    port = server.sockets[0].getsockname()[1]
                    await router.add_replica("pk", "127.0.0.1", port)
                    try:
                        query = sequences[1].text[:48]
                        for algorithm in ("ssearch", "fasta", "blast"):
                            payload = search_payload(
                                f"{algorithm}-1", query,
                                query_id=f"{algorithm}-q",
                            )
                            payload["algorithm"] = algorithm
                            direct = await materialized.handle_line(
                                json.dumps(payload)
                            )
                            routed_response = (
                                await router.dispatch_search(payload)
                            )
                            assert routed_response["status"] == "ok"
                            assert json.dumps(
                                routed_response["result"],
                                sort_keys=True,
                            ) == json.dumps(
                                direct["result"], sort_keys=True
                            )
                    finally:
                        await router.stop()
                        server.close()
                        await server.wait_closed()

        try:
            asyncio.run(main())
        finally:
            reset_packed_memos()


# -- supervisor: real replica processes --------------------------------------


class TestSupervisorChaos:
    """Process-level acceptance: kill, self-heal, restart, drain."""

    SERVE_ARGS = (
        "--jobs", "1", "--shards", "2", "--db-sequences", "10",
        "--queue-capacity", "32", "--no-precompute", "--db-seed", "91",
    )

    def test_kill_restart_drain_zero_failed_requests(self):
        async def main():
            supervisor = ClusterSupervisor(ClusterConfig(
                replicas=2,
                serve_args=self.SERVE_ARGS,
                drain_grace=15.0,
            ))
            await supervisor.start()
            router = supervisor.router
            try:
                async def one(index: int) -> dict:
                    return await router.dispatch_search(search_payload(
                        f"c{index}", QUERY, query_id=f"q{index % 3}"
                    ))

                loop = asyncio.get_running_loop()
                tasks = [
                    loop.create_task(one(index)) for index in range(24)
                ]
                await asyncio.sleep(0.05)
                # Chaos: SIGKILL one replica with requests in flight.
                await supervisor.kill("r0")
                responses = await asyncio.gather(*tasks)
                statuses = [r["status"] for r in responses]
                assert statuses == ["ok"] * len(responses), statuses
                # Identical (query, query_id) pairs produce identical
                # results regardless of which replica answered.
                baseline = json.dumps(
                    responses[0]["result"], sort_keys=True
                )
                for response in responses:
                    if int(response["id"][1:]) % 3 == 0:
                        assert json.dumps(
                            response["result"], sort_keys=True
                        ) == baseline

                # The watcher respawns r0 and the health loop rejoins
                # it — the cluster self-heals to full strength.
                for _ in range(600):
                    if (
                        supervisor.specs["r0"].restarts == 1
                        and router.replicas["r0"].state
                        == STATE_HEALTHY
                    ):
                        break
                    await asyncio.sleep(0.1)
                assert supervisor.specs["r0"].restarts == 1
                assert router.replicas["r0"].state == STATE_HEALTHY

                # Rolling restart under live traffic: zero failures.
                traffic: list[dict] = []
                stop_traffic = asyncio.Event()

                async def pump():
                    index = 0
                    while not stop_traffic.is_set():
                        traffic.append(await router.dispatch_search(
                            search_payload(
                                f"t{index}", QUERY,
                                query_id=f"q{index % 3}",
                            )
                        ))
                        index += 1
                        await asyncio.sleep(0.05)

                pump_task = loop.create_task(pump())
                restart = await router.handle_admin(
                    {"op": "admin", "action": "restart", "id": "rr"}
                )
                stop_traffic.set()
                await pump_task
                assert restart["status"] == "ok"
                assert restart["restarted"] == ["r0", "r1"]
                assert traffic, "no traffic flowed during restart"
                assert all(
                    r["status"] == "ok" for r in traffic
                ), [r["status"] for r in traffic]

                # Graceful drain shuts the whole topology down.
                drained = await supervisor.drain()
                assert drained["drained"] is True
                assert supervisor.shutdown.is_set()
                response = await router.dispatch_search(
                    search_payload("late", QUERY)
                )
                assert response["status"] == "shed"
                assert response["reason"] == "cluster draining"
            finally:
                await supervisor.stop()

        asyncio.run(main())
