"""Unit tests for the SSEARCH database-search driver."""

from repro.align.smith_waterman import sw_score
from repro.align.simd.sw_vmx import sw_score_vmx128
from repro.align.ssearch import SsearchOptions, format_report, search


class TestSearchDriver:
    def test_scores_match_pairwise(self, query, tiny_database):
        result = search(query, tiny_database)
        for hit in result.hits:
            subject = tiny_database.get(hit.subject_id)
            assert hit.score == sw_score(query, subject)

    def test_all_sequences_scored(self, query, tiny_database):
        result = search(query, tiny_database)
        assert result.sequences_searched == len(tiny_database)
        assert len(result.hits) == len(tiny_database)

    def test_hits_sorted_descending(self, query, tiny_database):
        result = search(query, tiny_database)
        scores = [hit.score for hit in result.hits]
        assert scores == sorted(scores, reverse=True)

    def test_ties_broken_by_database_order(self, query, tiny_database):
        result = search(query, tiny_database)
        for first, second in zip(result.hits, result.hits[1:]):
            if first.score == second.score:
                assert first.subject_index < second.subject_index

    def test_best_count_limits_report(self, query, tiny_database):
        result = search(query, tiny_database, SsearchOptions(best_count=2))
        assert len(result.hits) == 2

    def test_residues_searched(self, query, tiny_database):
        result = search(query, tiny_database)
        assert result.residues_searched == tiny_database.residue_count

    def test_vector_scorer_gives_same_ranking(self, short_query, tiny_database):
        scalar = search(short_query, tiny_database)
        vector = search(short_query, tiny_database, scorer=sw_score_vmx128)
        assert [h.subject_id for h in scalar.hits] == [
            h.subject_id for h in vector.hits
        ]
        assert [h.score for h in scalar.hits] == [h.score for h in vector.hits]


class TestReport:
    def test_report_mentions_query_and_db(self, query, tiny_database):
        result = search(query, tiny_database)
        report = format_report(result)
        assert result.query_id in report
        assert tiny_database.name in report

    def test_histogram_toggle(self, query, tiny_database):
        result = search(query, tiny_database)
        with_hist = format_report(result, SsearchOptions(show_histogram=True))
        without = format_report(result, SsearchOptions(show_histogram=False))
        assert "histogram" in with_hist
        assert "histogram" not in without
