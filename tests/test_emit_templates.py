"""Scalar vs templated emission equivalence, plus stamp-oracle fuzzing.

The block-templated fast path (``TraceBuilder.stamp``) promises
*byte-identical* traces to per-call scalar emission.  This module holds
that promise to account two ways:

* every golden kernel (plus blastn) is run under both ``emit_mode``
  settings and the content digests, instruction counts, scores, and
  truncation behaviour must match exactly;
* randomized templates are stamped through the vectorized
  ``stamp_columns`` path and through the per-instruction interpreter
  (``_stamp_interpreted``, the documented oracle), and the resulting
  traces must be digest-identical.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bio.alphabet import DNA
from repro.bio.database import SequenceDatabase
from repro.bio.sequence import Sequence
from repro.bio.synthetic import random_dna
from repro.isa.builder import EMIT_MODES, TraceBuilder, emission_mode
from repro.isa.emit import (
    INTERPRET_BELOW,
    Carry,
    EmitTemplate,
    Reg,
    Sel,
    Slot,
    SlotSpec,
)
from repro.isa.opcodes import OpClass
from repro.kernels.blastn_kernel import BlastnKernel
from repro.kernels.registry import WORKLOAD_NAMES, create_kernel
from repro.runtime.keys import compute_trace_digest
from repro.verify.tracelint import lint_trace

GOLDEN = list(WORKLOAD_NAMES)

DATA_BASE = 0x1000_0000


@pytest.fixture(scope="module")
def mode_runs(query, tiny_database):
    """Every golden kernel, untruncated, in both emission modes."""
    return {
        name: {
            mode: create_kernel(name).run(
                query, tiny_database, emit_mode=mode
            )
            for mode in EMIT_MODES
        }
        for name in GOLDEN
    }


@pytest.fixture(scope="module")
def dna_workload():
    rng = random.Random(8)
    query_text = random_dna(80, rng)
    subjects = []
    for index in range(8):
        text = random_dna(300, rng)
        if index % 3 == 0:
            text = text[:80] + query_text[10:60] + text[130:]
        subjects.append(Sequence(f"S{index}", text, alphabet=DNA))
    return (
        Sequence("q", query_text, alphabet=DNA),
        SequenceDatabase(subjects, alphabet=DNA, name="dna-db"),
    )


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", GOLDEN)
    def test_digests_byte_identical(self, mode_runs, name):
        runs = mode_runs[name]
        digests = {
            mode: compute_trace_digest(run.trace)
            for mode, run in runs.items()
        }
        assert digests["templated"] == digests["scalar"]

    @pytest.mark.parametrize("name", GOLDEN)
    def test_counts_and_scores_identical(self, mode_runs, name):
        templated, scalar = (
            mode_runs[name]["templated"], mode_runs[name]["scalar"]
        )
        assert templated.mix.counts == scalar.mix.counts
        assert templated.instruction_count == scalar.instruction_count
        assert templated.scores == scalar.scores
        assert templated.truncated == scalar.truncated

    def test_blastn_digests_byte_identical(self, dna_workload):
        query, database = dna_workload
        runs = {
            mode: BlastnKernel().run(query, database, emit_mode=mode)
            for mode in EMIT_MODES
        }
        assert compute_trace_digest(runs["templated"].trace) == \
            compute_trace_digest(runs["scalar"].trace)
        assert runs["templated"].scores == runs["scalar"].scores

    @pytest.mark.parametrize("name", ["ssearch34", "blast"])
    def test_budget_truncation_identical(self, query, tiny_database, name):
        runs = {
            mode: create_kernel(name).run(
                query, tiny_database, limit=1500, emit_mode=mode
            )
            for mode in EMIT_MODES
        }
        assert runs["templated"].truncated and runs["scalar"].truncated
        assert compute_trace_digest(runs["templated"].trace) == \
            compute_trace_digest(runs["scalar"].trace)
        # The over-budget instruction is counted but not materialized.
        assert runs["templated"].instruction_count == 1501
        assert len(runs["templated"].trace) == 1500

    @pytest.mark.parametrize("name", GOLDEN)
    def test_count_only_mode_identical(self, mode_runs, query,
                                       tiny_database, name):
        counted = create_kernel(name).run(
            query, tiny_database, record=False, emit_mode="templated"
        )
        assert counted.mix.counts == mode_runs[name]["scalar"].mix.counts

    def test_templated_traces_pass_lint(self, mode_runs):
        trace = mode_runs["ssearch34"]["templated"].trace
        assert trace.stamped_regions
        report = lint_trace(trace, include_roundtrip=False)
        assert report.ok, report.render() if hasattr(report, "render") \
            else report

    def test_scalar_traces_carry_no_regions(self, mode_runs):
        assert mode_runs["ssearch34"]["scalar"].trace.stamped_regions == ()


class TestEmissionModeSelection:
    def test_env_var_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_EMIT", "scalar")
        assert emission_mode() == "scalar"
        assert not TraceBuilder("t").use_templates
        monkeypatch.setenv("REPRO_EMIT", "templated")
        assert emission_mode() == "templated"
        assert TraceBuilder("t").use_templates

    def test_default_is_templated(self, monkeypatch):
        monkeypatch.delenv("REPRO_EMIT", raising=False)
        assert emission_mode() == "templated"

    def test_invalid_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EMIT", "fancy")
        with pytest.raises(ValueError):
            emission_mode()
        monkeypatch.delenv("REPRO_EMIT", raising=False)
        with pytest.raises(ValueError):
            TraceBuilder("t", emit_mode="fancy")

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EMIT", "scalar")
        assert TraceBuilder("t", emit_mode="templated").use_templates


# ----------------------------------------------------------------------
# Randomized template fuzzing: vectorized stamp vs interpreter oracle
# ----------------------------------------------------------------------

_ALU_OPS = (OpClass.IALU, OpClass.VSIMPLE)
_MEM_OPS = (OpClass.ILOAD, OpClass.ISTORE)


@st.composite
def stamp_cases(draw):
    """A random valid (template, n, operands) triple."""
    n = draw(st.integers(min_value=INTERPRET_BELOW, max_value=20))
    n_slots = draw(st.integers(min_value=2, max_value=5))
    operands: dict = {}

    def bool_array(prefix: str) -> str:
        name = f"{prefix}{len(operands)}"
        operands[name] = draw(
            st.lists(st.booleans(), min_size=n, max_size=n)
        )
        return name

    def int_array(prefix: str, low: int, high: int) -> str:
        name = f"{prefix}{len(operands)}"
        operands[name] = draw(
            st.lists(st.integers(low, high), min_size=n, max_size=n)
        )
        return name

    def scalar_reg() -> str:
        name = f"r{len(operands)}"
        operands[name] = draw(st.integers(0, 4096))
        return name

    specs = [SlotSpec(OpClass.IALU, "fz.anchor")]
    ungated_dest = [0]
    gated_dest: list[int] = []

    for position in range(1, n_slots):
        kind = draw(st.sampled_from(("alu", "alu", "mem", "ctrl")))
        gate = None
        if draw(st.booleans()):
            gate = bool_array("g")

        sources = []
        for _ in range(draw(st.integers(0, 2))):
            pick = draw(st.sampled_from(
                ("reg", "slot", "carry") + (("sel",) if gated_dest else ())
            ))
            if pick == "reg":
                sources.append(Reg(
                    int_array("v", 0, 4096) if draw(st.booleans())
                    else scalar_reg()
                ))
            elif pick == "slot":
                sources.append(Slot(draw(st.sampled_from(ungated_dest))))
            elif pick == "sel":
                sources.append(Sel(
                    draw(st.sampled_from(gated_dest)),
                    draw(st.sampled_from(ungated_dest)),
                ))
            else:
                target = draw(st.sampled_from(ungated_dest + gated_dest))
                sources.append(Carry(
                    target,
                    init=Reg(scalar_reg()),
                    lag=draw(st.integers(1, 2)),
                ))

        if kind == "mem":
            op = draw(st.sampled_from(_MEM_OPS))
            size = draw(st.sampled_from((1, 4, 8)))
            if draw(st.booleans()):
                spec = SlotSpec(
                    op, f"fz.s{position}", sources=tuple(sources),
                    gate=gate, size=size,
                    addr=int_array("a", DATA_BASE, DATA_BASE + (1 << 16)),
                )
            else:
                spec = SlotSpec(
                    op, f"fz.s{position}", sources=tuple(sources),
                    gate=gate, size=size, base=scalar_reg(),
                    scale=draw(st.sampled_from((0, 1, 8))),
                    offset=DATA_BASE + draw(st.integers(0, 64)),
                )
        elif kind == "ctrl":
            spec = SlotSpec(
                OpClass.CTRL, f"fz.s{position}", sources=tuple(sources),
                gate=gate,
                taken=(
                    bool_array("t") if draw(st.booleans())
                    else draw(st.booleans())
                ),
                backward=draw(st.booleans()),
            )
        else:
            spec = SlotSpec(
                draw(st.sampled_from(_ALU_OPS)), f"fz.s{position}",
                sources=tuple(sources), gate=gate,
            )
        specs.append(spec)
        if spec.has_dest:
            (gated_dest if gate else ungated_dest).append(position)

    return EmitTemplate("fz.block", specs), n, operands


class TestStampOracle:
    @settings(max_examples=40, deadline=None)
    @given(stamp_cases())
    def test_vectorized_matches_interpreter(self, case):
        template, n, operands = case
        vec = TraceBuilder("fuzz", record=True)
        vec_result = vec.stamp(template, n, operands)
        vec_trace = vec.build()

        oracle = TraceBuilder("fuzz", record=True)
        oracle_result = oracle._stamp_interpreted(template, n, operands)
        oracle_trace = oracle.build()

        assert compute_trace_digest(vec_trace) == \
            compute_trace_digest(oracle_trace)
        assert vec.counts == oracle.counts
        assert vec.total == oracle.total
        assert vec_result._last == oracle_result._last

        counted = TraceBuilder("fuzz", record=False)
        counted.stamp(template, n, operands)
        assert counted.counts == vec.counts
        assert counted.total == vec.total

    @settings(max_examples=20, deadline=None)
    @given(stamp_cases())
    def test_stamped_regions_satisfy_tr011(self, case):
        template, n, operands = case
        builder = TraceBuilder("fuzz", record=True)
        builder.stamp(template, n, operands)
        trace = builder.build()
        assert len(trace.stamped_regions) == 1
        report = lint_trace(
            trace, builder_invariants=False, include_roundtrip=False
        )
        tr011 = next(c for c in report.checks if c.rule == "TR011")
        assert not tr011.violations
