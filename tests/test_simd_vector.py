"""Unit and property tests for the Altivec-style vector emulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align.simd.vector import (
    INT16_MAX,
    INT16_MIN,
    VMX128,
    VMX256,
    VectorConfig,
    VectorUnit,
)

lane_values = st.integers(min_value=INT16_MIN, max_value=INT16_MAX)


class TestVectorConfig:
    def test_lane_counts(self):
        assert VMX128.lanes == 8
        assert VMX256.lanes == 16

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            VectorConfig(width_bits=100)

    def test_too_narrow_rejected(self):
        with pytest.raises(ValueError):
            VectorConfig(width_bits=16)

    def test_non_16bit_lanes_rejected(self):
        with pytest.raises(ValueError):
            VectorConfig(width_bits=128, element_bits=8)


class TestBasicOps:
    def setup_method(self):
        self.unit = VectorUnit(VMX128)

    def test_splat(self):
        register = self.unit.splat(7)
        assert register.tolist() == [7] * 8

    def test_splat_saturates(self):
        assert self.unit.splat(100_000).tolist() == [INT16_MAX] * 8
        assert self.unit.splat(-100_000).tolist() == [INT16_MIN] * 8

    def test_zero(self):
        assert self.unit.zero().tolist() == [0] * 8

    def test_load_checks_length(self):
        with pytest.raises(ValueError):
            self.unit.load([1, 2, 3])

    def test_adds_saturates_positive(self):
        a = self.unit.splat(INT16_MAX)
        b = self.unit.splat(10)
        assert self.unit.adds(a, b).tolist() == [INT16_MAX] * 8

    def test_subs_saturates_negative(self):
        a = self.unit.splat(INT16_MIN)
        b = self.unit.splat(10)
        assert self.unit.subs(a, b).tolist() == [INT16_MIN] * 8

    def test_vmax(self):
        a = self.unit.load([1, -2, 3, -4, 5, -6, 7, -8])
        b = self.unit.zero()
        assert self.unit.vmax(a, b).tolist() == [1, 0, 3, 0, 5, 0, 7, 0]

    def test_shift_down(self):
        a = self.unit.load([1, 2, 3, 4, 5, 6, 7, 8])
        shifted = self.unit.shift_down(a, carry_in=99)
        assert shifted.tolist() == [99, 1, 2, 3, 4, 5, 6, 7]

    def test_extract(self):
        a = self.unit.load([10, 20, 30, 40, 50, 60, 70, 80])
        assert self.unit.extract(a, 0) == 10
        assert self.unit.extract(a, 7) == 80
        with pytest.raises(ValueError):
            self.unit.extract(a, 8)

    def test_horizontal_max(self):
        a = self.unit.load([3, 9, -5, 0, 2, 9, 1, -1])
        assert self.unit.horizontal_max(a) == 9

    def test_shape_mismatch_rejected(self):
        other = VectorUnit(VMX256)
        with pytest.raises(ValueError):
            self.unit.adds(self.unit.zero(), other.zero())

    def test_gather_scores_marks_invalid_lanes(self):
        rows = [[5] * 23 for _ in range(23)]
        out = self.unit.gather_scores(rows, [0, -1, 1, 2, -1, 3, 4, 5],
                                      [0, 0, -1, 1, 1, 2, 3, 4])
        assert out[0] == 5
        assert out[1] == INT16_MIN
        assert out[2] == INT16_MIN
        assert out[5] == 5


@settings(max_examples=60, deadline=None)
@given(values=st.lists(lane_values, min_size=8, max_size=8),
       others=st.lists(lane_values, min_size=8, max_size=8))
def test_adds_matches_clamped_integer_add(values, others):
    unit = VectorUnit(VMX128)
    result = unit.adds(unit.load(values), unit.load(others))
    for lane in range(8):
        expected = max(INT16_MIN, min(INT16_MAX, values[lane] + others[lane]))
        assert int(result[lane]) == expected


@settings(max_examples=60, deadline=None)
@given(values=st.lists(lane_values, min_size=8, max_size=8),
       others=st.lists(lane_values, min_size=8, max_size=8))
def test_subs_matches_clamped_integer_sub(values, others):
    unit = VectorUnit(VMX128)
    result = unit.subs(unit.load(values), unit.load(others))
    for lane in range(8):
        expected = max(INT16_MIN, min(INT16_MAX, values[lane] - others[lane]))
        assert int(result[lane]) == expected


@settings(max_examples=40, deadline=None)
@given(values=st.lists(lane_values, min_size=16, max_size=16),
       carry=lane_values)
def test_shift_preserves_all_but_last(values, carry):
    unit = VectorUnit(VMX256)
    shifted = unit.shift_down(unit.load(values), carry)
    assert int(shifted[0]) == carry
    assert shifted[1:].tolist() == values[:-1]


@settings(max_examples=40, deadline=None)
@given(values=st.lists(lane_values, min_size=8, max_size=8))
def test_operations_return_fresh_arrays(values):
    unit = VectorUnit(VMX128)
    register = unit.load(values)
    result = unit.vmax(register, unit.zero())
    result[0] = 123
    assert register.tolist() == values  # input unchanged


def test_numpy_dtype_is_int16():
    unit = VectorUnit(VMX128)
    assert unit.zero().dtype == np.int16
    assert unit.adds(unit.zero(), unit.zero()).dtype == np.int16
