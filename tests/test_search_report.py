"""Tests for search-result output formats."""

from repro.align.report import (
    TABULAR_COLUMNS,
    format_alignments,
    format_hit_list,
    format_tabular,
)
from repro.align.ssearch import search
from repro.align.blast.engine import blast_search


class TestTabular:
    def test_header_and_rows(self, query, tiny_database):
        result = search(query, tiny_database)
        text = format_tabular(result, top=3)
        lines = text.splitlines()
        assert lines[0] == "#" + "\t".join(TABULAR_COLUMNS)
        assert len(lines) == 4
        first = lines[1].split("\t")
        assert first[0] == result.query_id
        assert first[1] == result.best().subject_id

    def test_infinite_evalue_blank(self, query, tiny_database):
        result = search(query, tiny_database)  # ssearch sets no E-values
        text = format_tabular(result, top=1)
        assert text.splitlines()[1].split("\t")[4] == ""

    def test_blast_evalues_present(self, query, tiny_database):
        result = blast_search(query, tiny_database)
        if result.hits:
            row = format_tabular(result, top=1).splitlines()[1].split("\t")
            assert row[4] != ""


class TestHitList:
    def test_contains_metadata_and_ranks(self, query, tiny_database):
        result = search(query, tiny_database)
        text = format_hit_list(result, top=4)
        assert result.query_id in text
        assert tiny_database.name in text
        assert "   1  " in text

    def test_top_limits_rows(self, query, tiny_database):
        result = search(query, tiny_database)
        body = format_hit_list(result, top=2).splitlines()[3:]
        assert len(body) == 2


class TestAlignments:
    def test_alignments_rendered_with_scores(self, query, tiny_database):
        result = search(query, tiny_database)
        text = format_alignments(query, tiny_database, result, top=2)
        best = result.best()
        assert f">{best.subject_id}" in text
        assert f"s-w score={best.score}" in text
        # The rendered alignment's score line matches the hit score.
        assert f"score={best.score}" in text
